"""Chaos tests: the CRDT zoo under fuzzed adversarial schedules.

Eventual consistency promises convergence under *every* delivery
schedule; the fuzzer supplies nastier ones than i.i.d. latencies (flapping
partitions, long one-way silences, bursts).  Each op-based CRDT must end
every fuzzed run with all replicas agreeing — that is the definition of
its correctness, independent of what state it converges to.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adt import _canonical
from repro.crdt import SET_CRDTS, GCounterReplica, PNCounterReplica
from repro.crdt.state_based import GSetLattice, StateBasedReplica, gossip_round
from repro.sim import Cluster
from repro.sim.fuzz import AdversaryFuzzer
from repro.specs import counter as C
from repro.specs import set_spec as S


def set_script(n_ops: int, n_procs: int, seed: int, *, insert_only=False):
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n_ops):
        pid = int(rng.integers(n_procs))
        v = int(rng.integers(4))
        if insert_only or rng.random() < 0.6:
            ops.append((pid, S.insert(v)))
        else:
            ops.append((pid, S.delete(v)))
    return ops


def agreed(cluster) -> bool:
    states = {_canonical(s) for s in cluster.states().values()}
    return len(states) == 1


@pytest.mark.parametrize("name", sorted(SET_CRDTS))
@given(seed=st.integers(0, 50_000))
@settings(max_examples=10, deadline=None)
def test_set_crdts_converge_under_chaos(name, seed):
    cls = SET_CRDTS[name]
    c = Cluster(3, lambda p, n: cls(p, n), seed=seed)
    fz = AdversaryFuzzer(c, seed=seed)
    ops = set_script(25, 3, seed, insert_only=(name == "G-Set"))
    fz.run_workload(ops, queries_per_op=0.0)
    assert agreed(c), (name, fz.report.summary())


@given(seed=st.integers(0, 50_000))
@settings(max_examples=10, deadline=None)
def test_counters_converge_under_chaos(seed):
    for cls in (GCounterReplica, PNCounterReplica):
        c = Cluster(3, lambda p, n: cls(p, n), seed=seed)
        fz = AdversaryFuzzer(c, seed=seed)
        rng = np.random.default_rng(seed)
        ops = []
        for _ in range(20):
            pid = int(rng.integers(3))
            if cls is GCounterReplica:
                ops.append((pid, C.inc(int(rng.integers(1, 4)))))
            else:
                k = int(rng.integers(1, 4))
                ops.append((pid, C.inc(k) if rng.random() < 0.5 else C.dec(k)))
        fz.run_workload(ops, queries_per_op=0.0)
        assert agreed(c), (cls.__name__, fz.report.summary())


@given(seed=st.integers(0, 50_000))
@settings(max_examples=10, deadline=None)
def test_state_based_converges_under_chaos_with_final_gossip(seed):
    c = Cluster(3, lambda p, n: StateBasedReplica(p, n, GSetLattice()), seed=seed)
    fz = AdversaryFuzzer(c, seed=seed)
    ops = set_script(20, 3, seed, insert_only=True)
    rng = np.random.default_rng(seed + 1)
    for pid, op in ops:
        fz.step()
        if pid in c.crashed:
            continue
        c.update(pid, op)
        if rng.random() < 0.3:
            gossip_round(c)
    c.heal()
    # Two terminal rounds: the first spreads states, the second covers
    # payloads that were gossiped before the last updates landed.
    gossip_round(c)
    c.run()
    gossip_round(c)
    c.run()
    assert agreed(c), fz.report.summary()


@given(seed=st.integers(0, 50_000))
@settings(max_examples=8, deadline=None)
def test_crashed_crdt_replicas_do_not_block_survivors(seed):
    cls = SET_CRDTS["OR-Set"]
    c = Cluster(4, lambda p, n: cls(p, n), seed=seed)
    fz = AdversaryFuzzer(c, seed=seed, crash_budget=2)
    fz.run_workload(set_script(25, 4, seed), queries_per_op=0.2)
    assert agreed(c)
    for pid in c.alive():
        c.query(pid, "read")  # still serving
