"""Tests for state-based CRDTs: lattice laws, gossip convergence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adt import Update
from repro.crdt.state_based import (
    GSetLattice,
    LWWMapLattice,
    PNCounterLattice,
    StateBasedReplica,
    TwoPhaseSetLattice,
    gossip_round,
)
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import counter as C
from repro.specs import set_spec as S


def sb_cluster(lattice_cls, n=3, **kw):
    return Cluster(
        n, lambda pid, total: StateBasedReplica(pid, total, lattice_cls()), **kw
    )


# ---------------------------------------------------------------------------
# Lattice laws (hypothesis): join is ACI and updates are inflationary.
# ---------------------------------------------------------------------------

gset_states = st.frozensets(st.integers(0, 5), max_size=4)
twop_states = st.tuples(gset_states, gset_states)
pn_states = st.tuples(
    st.tuples(*[st.integers(0, 5)] * 3), st.tuples(*[st.integers(0, 5)] * 3)
)


class TestLatticeLaws:
    @given(gset_states, gset_states, gset_states)
    @settings(max_examples=50, deadline=None)
    def test_gset_join_aci(self, a, b, c):
        lat = GSetLattice()
        assert lat.merge(a, b) == lat.merge(b, a)
        assert lat.merge(a, lat.merge(b, c)) == lat.merge(lat.merge(a, b), c)
        assert lat.merge(a, a) == a

    @given(twop_states, twop_states, twop_states)
    @settings(max_examples=50, deadline=None)
    def test_2p_join_aci(self, a, b, c):
        lat = TwoPhaseSetLattice()
        assert lat.merge(a, b) == lat.merge(b, a)
        assert lat.merge(a, lat.merge(b, c)) == lat.merge(lat.merge(a, b), c)
        assert lat.merge(a, a) == a

    @given(pn_states, pn_states, pn_states)
    @settings(max_examples=50, deadline=None)
    def test_pn_join_aci(self, a, b, c):
        lat = PNCounterLattice()
        assert lat.merge(a, b) == lat.merge(b, a)
        assert lat.merge(a, lat.merge(b, c)) == lat.merge(lat.merge(a, b), c)
        assert lat.merge(a, a) == a

    @given(gset_states, st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_gset_update_inflationary(self, state, v):
        lat = GSetLattice()
        new = lat.update(state, 0, S.insert(v))
        assert lat.leq(state, new)

    @given(pn_states, st.integers(1, 4), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_pn_update_inflationary(self, state, k, inc):
        lat = PNCounterLattice()
        op = C.inc(k) if inc else C.dec(k)
        new = lat.update(state, 1, op)
        assert lat.leq(state, new)

    def test_lww_map_merge_keeps_latest(self):
        lat = LWWMapLattice()
        a = lat.update(lat.bottom(2), 0, Update("put", ("k", "old", (1, 0))))
        b = lat.update(lat.bottom(2), 1, Update("put", ("k", "new", (2, 1))))
        assert lat.value(lat.merge(a, b)) == {"k": "new"}
        assert lat.merge(a, b) == lat.merge(b, a)

    def test_lww_map_tombstone(self):
        lat = LWWMapLattice()
        a = lat.update(lat.bottom(2), 0, Update("put", ("k", "v", (1, 0))))
        a = lat.update(a, 0, Update("remove", ("k", (2, 0))))
        assert lat.value(a) == {}


class TestReplication:
    def test_updates_send_nothing(self):
        c = sb_cluster(GSetLattice)
        c.update(0, S.insert(1))
        assert c.network.sent_count == 0
        assert c.query(0, "read") == frozenset({1})
        assert c.query(1, "read") == frozenset()

    def test_gossip_round_spreads_state(self):
        c = sb_cluster(GSetLattice)
        c.update(0, S.insert(1))
        c.update(1, S.insert(2))
        sent = gossip_round(c)
        assert sent == 3 * 2
        c.run()
        assert all(
            c.query(pid, "read") == frozenset({1, 2}) for pid in range(3)
        )

    def test_gossip_is_idempotent(self):
        c = sb_cluster(GSetLattice)
        c.update(0, S.insert(1))
        for _ in range(3):
            gossip_round(c)
            c.run()
        assert c.query(2, "read") == frozenset({1})
        assert c.replicas[2].noop_merges > 0  # redundant gossip detected

    def test_gossip_skips_crashed(self):
        c = sb_cluster(GSetLattice)
        c.update(0, S.insert(1))
        c.crash(0)
        assert gossip_round(c) == 2 * 2
        c.run()
        # p0's update dies with it (it never gossiped) — survivors agree.
        assert c.query(1, "read") == c.query(2, "read") == frozenset()

    def test_2p_set_via_gossip(self):
        c = sb_cluster(TwoPhaseSetLattice, n=2)
        c.update(0, S.insert("x"))
        c.update(1, S.delete("x"))
        gossip_round(c)
        c.run()
        assert c.query(0, "read") == c.query(1, "read") == frozenset()

    def test_pn_counter_via_gossip(self):
        c = sb_cluster(PNCounterLattice, n=3)
        c.update(0, C.inc(5))
        c.update(1, C.dec(2))
        c.update(2, C.inc(1))
        gossip_round(c)
        c.run()
        assert all(c.query(pid, "read") == 4 for pid in range(3))

    def test_lww_map_replica_stamping(self):
        lat = LWWMapLattice()
        c = Cluster(2, lambda p, n: StateBasedReplica(p, n, lat))
        r0 = c.replicas[0]
        c.update(0, Update("put", ("k", "v0", r0.stamp())))
        r1 = c.replicas[1]
        c.update(1, Update("put", ("k", "v1", r1.stamp())))
        gossip_round(c)
        c.run()
        assert c.query(0, "read") == c.query(1, "read")

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_convergence_under_reordered_duplicated_gossip(self, seed):
        """Joins are ACI: gossip needs no ordering or dedup guarantees."""
        c = sb_cluster(GSetLattice, n=3,
                       latency=ExponentialLatency(10.0), seed=seed)
        import numpy as np

        rng = np.random.default_rng(seed)
        for i in range(20):
            c.update(int(rng.integers(3)), S.insert(int(rng.integers(6))))
            if rng.random() < 0.4:
                gossip_round(c)
        gossip_round(c)
        c.run()
        gossip_round(c)  # second round covers gossip sent pre-update
        c.run()
        states = {c.query(pid, "read") for pid in range(3)}
        assert len(states) == 1

    def test_unknown_query_rejected(self):
        c = sb_cluster(GSetLattice)
        with pytest.raises(ValueError):
            c.query(0, "size")

    def test_gset_lattice_rejects_delete(self):
        c = sb_cluster(GSetLattice)
        with pytest.raises(ValueError):
            c.update(0, S.delete(1))
