"""Behavioural tests for the Section VI set CRDTs.

Each type's documented conflict policy is pinned down on the concurrent
insert/delete scenarios the paper's case study revolves around.
"""

from __future__ import annotations

import pytest

from repro.crdt import (
    CSetReplica,
    GSetReplica,
    LWWSetReplica,
    ORSetReplica,
    PNSetReplica,
    SET_CRDTS,
    TwoPhaseSetReplica,
)
from repro.sim import Cluster
from repro.specs import set_spec as S


def make(cls, n=2, **kw):
    return Cluster(n, lambda pid, total: cls(pid, total), **kw)


def isolated_fig_1b(cluster):
    """Fig. 1b as a run: both processes update before hearing each other."""
    cluster.partition([[0], [1]])
    cluster.update(0, S.insert(1))
    cluster.update(0, S.delete(2))
    cluster.update(1, S.insert(2))
    cluster.update(1, S.delete(1))
    cluster.heal()
    cluster.run()


class TestGSet:
    def test_union_semantics(self):
        c = make(GSetReplica)
        c.update(0, S.insert("a"))
        c.update(1, S.insert("b"))
        c.run()
        assert c.query(0, "read") == frozenset({"a", "b"})

    def test_delete_rejected(self):
        c = make(GSetReplica)
        with pytest.raises(ValueError):
            c.update(0, S.delete("a"))

    def test_contains(self):
        c = make(GSetReplica)
        c.update(0, S.insert("a"))
        assert c.query(0, "contains", ("a",)) is True
        assert c.query(0, "contains", ("b",)) is False


class TestTwoPhaseSet:
    def test_insert_then_delete(self):
        c = make(TwoPhaseSetReplica)
        c.update(0, S.insert(1))
        c.update(0, S.delete(1))
        assert c.query(0, "read") == frozenset()

    def test_delete_is_forever(self):
        # The documented wart: re-insertion after deletion is impossible.
        c = make(TwoPhaseSetReplica)
        c.update(0, S.insert(1))
        c.update(0, S.delete(1))
        c.update(0, S.insert(1))
        c.run()
        assert c.query(0, "read") == frozenset()
        assert c.query(1, "read") == frozenset()

    def test_concurrent_insert_delete_delete_wins(self):
        c = make(TwoPhaseSetReplica)
        isolated_fig_1b(c)
        # Tombstones for both 1 and 2: everything dead.
        assert c.query(0, "read") == frozenset()
        assert c.query(1, "read") == frozenset()


class TestPNSet:
    def test_double_insert_needs_double_delete(self):
        c = make(PNSetReplica)
        c.partition([[0], [1]])
        c.update(0, S.insert(1))
        c.update(1, S.insert(1))
        c.heal()
        c.run()
        c.update(0, S.delete(1))
        c.run()
        assert c.query(1, "read") == frozenset({1})  # count 2 - 1 = 1: still in!
        c.update(1, S.delete(1))
        c.run()
        assert c.query(0, "read") == frozenset()

    def test_negative_counter_swallows_insert(self):
        c = make(PNSetReplica)
        c.update(0, S.delete(1))  # counter -1
        c.update(0, S.insert(1))  # back to 0: still absent
        assert c.query(0, "read") == frozenset()

    def test_converges(self):
        c = make(PNSetReplica)
        isolated_fig_1b(c)
        assert c.query(0, "read") == c.query(1, "read")


class TestCSet:
    def test_local_noop_suppression(self):
        c = make(CSetReplica)
        c.update(0, S.delete(1))  # locally absent: suppressed, not sent
        assert c.replicas[0].suppressed == 1
        assert c.network.sent_count == 0

    def test_no_negative_counters_locally(self):
        c = make(CSetReplica)
        c.update(0, S.delete(1))
        c.update(0, S.insert(1))
        assert c.query(0, "read") == frozenset({1})  # unlike the PN-Set

    def test_asymmetric_delta_anomaly(self):
        # The C-Set's documented flaw: concurrent conditional decisions
        # commit asymmetric deltas; counters can exceed 1 and a single
        # delete no longer empties the set anywhere.
        c = make(CSetReplica)
        c.partition([[0], [1]])
        c.update(0, S.insert(1))  # both see 1 absent -> both send +1
        c.update(1, S.insert(1))
        c.heal()
        c.run()
        assert c.replicas[0].counts[1] == 2  # the anomaly
        c.update(0, S.delete(1))  # one -1: element survives
        c.run()
        assert c.query(1, "read") == frozenset({1})


class TestORSet:
    def test_observed_remove_only_kills_observed_tags(self):
        c = make(ORSetReplica)
        c.partition([[0], [1]])
        c.update(0, S.insert(1))  # tag t0, unseen by p1
        c.update(1, S.insert(1))  # tag t1
        c.update(1, S.delete(1))  # observes only t1
        c.heal()
        c.run()
        # t0 survives: insert wins.
        assert c.query(0, "read") == frozenset({1})
        assert c.query(1, "read") == frozenset({1})

    def test_delete_after_sync_removes(self):
        c = make(ORSetReplica)
        c.update(0, S.insert(1))
        c.run()
        c.update(1, S.delete(1))  # observed t0
        c.run()
        assert c.query(0, "read") == frozenset()

    def test_fig_1b_scenario_converges_to_both(self):
        # The paper: "the insertions will win and the OR-set will converge
        # to {1, 2}" — a state NO update linearization reaches.
        c = make(ORSetReplica)
        isolated_fig_1b(c)
        assert c.query(0, "read") == frozenset({1, 2})
        assert c.query(1, "read") == frozenset({1, 2})

    def test_reinsertion_after_delete_works(self):
        c = make(ORSetReplica)
        c.update(0, S.insert(1))
        c.run()
        c.update(1, S.delete(1))
        c.run()
        c.update(0, S.insert(1))
        c.run()
        assert c.query(1, "read") == frozenset({1})

    def test_tombstones_accumulate(self):
        c = make(ORSetReplica)
        for _ in range(5):
            c.update(0, S.insert(1))
            c.update(0, S.delete(1))
        c.run()
        assert c.replicas[1].tombstone_count == 5

    def test_late_insert_of_tombstoned_tag_stays_dead(self):
        # Delete message can overtake its insert on a reordering network;
        # the tombstone must still win when the insert finally lands.
        from repro.sim.network import ExponentialLatency

        c = Cluster(3, lambda pid, n: ORSetReplica(pid, n),
                    latency=ExponentialLatency(10.0), seed=1)
        c.update(0, S.insert(1))
        c.update(0, S.delete(1))
        c.run()
        for pid in range(3):
            assert c.query(pid, "read") == frozenset()


class TestLWWSet:
    def test_later_stamp_wins(self):
        c = make(LWWSetReplica)
        c.update(0, S.insert(1))
        c.run()
        c.update(1, S.delete(1))  # higher clock after delivery
        c.run()
        assert c.query(0, "read") == frozenset()

    def test_concurrent_ops_resolved_by_stamp(self):
        c = make(LWWSetReplica)
        isolated_fig_1b(c)
        # Stamps: I(1)@(1,0), D(2)@(2,0), I(2)@(1,1), D(1)@(2,1).
        # Per element 1: I(1,0) vs D(2,1) -> delete wins.
        # Per element 2: D(2,0) vs I(1,1) -> delete wins.
        assert c.query(0, "read") == frozenset()
        assert c.query(1, "read") == frozenset()

    def test_bias_validated(self):
        with pytest.raises(ValueError):
            LWWSetReplica(0, 2, bias="random")

    def test_tie_resolved_by_bias(self):
        r = LWWSetReplica(0, 2, bias="insert")
        r._store("x", (1, 0), True)
        r._store("x", (1, 0), False)  # same stamp, conflicting flag
        assert r.value() == frozenset({"x"})
        r2 = LWWSetReplica(0, 2, bias="delete")
        r2._store("x", (1, 0), True)
        r2._store("x", (1, 0), False)
        assert r2.value() == frozenset()


class TestAllConverge:
    @pytest.mark.parametrize("name", [n for n in SET_CRDTS if n != "G-Set"])
    def test_insert_delete_mix_converges(self, name):
        from repro.sim.network import ExponentialLatency
        from repro.sim.workload import conflict_heavy_set_workload, run_workload

        cls = SET_CRDTS[name]
        c = Cluster(3, lambda pid, n: cls(pid, n),
                    latency=ExponentialLatency(3.0), seed=17)
        wl = [w for w in conflict_heavy_set_workload(3, 60, seed=17) if w.is_update]
        run_workload(c, wl)
        states = {c.replicas[pid].value() for pid in range(3)}
        assert len(states) == 1, f"{name} diverged: {states}"
