"""Tests for the counter and register CRDTs."""

from __future__ import annotations

import pytest

from repro.crdt import (
    GCounterReplica,
    LWWRegisterReplica,
    MVRegisterReplica,
    PNCounterReplica,
)
from repro.core.memory import MemoryReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import counter as C
from repro.specs import register as R


class TestGCounter:
    def test_sums_components(self):
        c = Cluster(3, lambda pid, n: GCounterReplica(pid, n))
        c.update(0, C.inc(2))
        c.update(1, C.inc(3))
        c.run()
        assert all(c.query(pid, "read") == 5 for pid in range(3))

    def test_rejects_dec(self):
        c = Cluster(2, lambda pid, n: GCounterReplica(pid, n))
        with pytest.raises(ValueError):
            c.update(0, C.dec(1))

    def test_rejects_negative_inc(self):
        c = Cluster(2, lambda pid, n: GCounterReplica(pid, n))
        with pytest.raises(ValueError, match="only grows"):
            c.update(0, C.inc(-3))

    def test_sign(self):
        c = Cluster(1, lambda pid, n: GCounterReplica(pid, n))
        assert c.query(0, "sign") == 0
        c.update(0, C.inc(1))
        assert c.query(0, "sign") == 1


class TestPNCounter:
    def test_inc_dec_converge(self):
        c = Cluster(3, lambda pid, n: PNCounterReplica(pid, n),
                    latency=ExponentialLatency(2.0), seed=9)
        c.update(0, C.inc(10))
        c.update(1, C.dec(4))
        c.update(2, C.dec(1))
        c.run()
        assert all(c.query(pid, "read") == 5 for pid in range(3))

    def test_sign_negative(self):
        c = Cluster(1, lambda pid, n: PNCounterReplica(pid, n))
        c.update(0, C.dec(2))
        assert c.query(0, "sign") == -1

    def test_commutativity_under_any_order(self):
        # Same ops, adversarial reordering: same result (it's a CRDT).
        for seed in (1, 2, 3):
            c = Cluster(2, lambda pid, n: PNCounterReplica(pid, n),
                        latency=ExponentialLatency(10.0), seed=seed)
            for i in range(10):
                c.update(i % 2, C.inc(i) if i % 3 else C.dec(i))
            c.run()
            assert c.query(0, "read") == c.query(1, "read")


class TestLWWRegister:
    def test_last_write_wins(self):
        c = Cluster(2, lambda pid, n: LWWRegisterReplica(pid, n))
        c.update(0, R.write("a"))
        c.run()
        c.update(1, R.write("b"))
        c.run()
        assert c.query(0, "read") == "b"

    def test_initial_value(self):
        c = Cluster(2, lambda pid, n: LWWRegisterReplica(pid, n, initial="-"))
        assert c.query(0, "read") == "-"

    def test_agrees_with_algorithm_2_single_register(self):
        # The CRDT framing and Algorithm 2 restricted to one register are
        # the same algorithm; check them op for op on one schedule.
        lww = Cluster(2, lambda pid, n: LWWRegisterReplica(pid, n),
                      latency=ExponentialLatency(5.0), seed=31)
        mem = Cluster(2, lambda pid, n: MemoryReplica(pid, n),
                      latency=ExponentialLatency(5.0), seed=31)
        script = [(0, "u"), (1, "v"), (0, "w"), (1, "x")]
        for pid, val in script:
            lww.update(pid, R.write(val))
            mem.update(pid, R.mem_write("r", val))
        lww.run()
        mem.run()
        for pid in range(2):
            assert lww.query(pid, "read") == mem.query(pid, "read", ("r",))


class TestMVRegister:
    def test_sequential_writes_single_value(self):
        c = Cluster(2, lambda pid, n: MVRegisterReplica(pid, n))
        c.update(0, R.write("a"))
        c.run()
        c.update(1, R.write("b"))
        c.run()
        assert c.query(0, "read") == frozenset({"b"})

    def test_concurrent_writes_keep_both(self):
        c = Cluster(2, lambda pid, n: MVRegisterReplica(pid, n))
        c.partition([[0], [1]])
        c.update(0, R.write("a"))
        c.update(1, R.write("b"))
        c.heal()
        c.run()
        assert c.query(0, "read") == frozenset({"a", "b"})
        assert c.replicas[0].concurrency_degree == 2

    def test_initial_read(self):
        c = Cluster(2, lambda pid, n: MVRegisterReplica(pid, n, initial="i"))
        assert c.query(0, "read") == frozenset({"i"})

    def test_dominating_write_collapses_frontier(self):
        c = Cluster(2, lambda pid, n: MVRegisterReplica(pid, n))
        c.partition([[0], [1]])
        c.update(0, R.write("a"))
        c.update(1, R.write("b"))
        c.heal()
        c.run()
        c.update(0, R.write("winner"))  # causally after both
        c.run()
        assert c.query(1, "read") == frozenset({"winner"})
        assert c.replicas[1].concurrency_degree == 1

    def test_duplicate_stamp_ignored(self):
        r = MVRegisterReplica(0, 2)
        from repro.util.clocks import VectorClock

        r._store(VectorClock([1, 0]), "x")
        r._store(VectorClock([1, 0]), "x")
        assert r.concurrency_degree == 1
