"""Tests for the shared op-based CRDT machinery."""

from __future__ import annotations

import pytest

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica, tag_sort_key
from repro.crdt import GSetReplica


class TestOpBasedReplica:
    def test_stamp_advances_and_records_meta(self):
        r = GSetReplica(1, 3)
        r.on_update(Update("insert", ("x",)))
        meta = r.witness_meta()
        assert meta["timestamp"] == (1, 1)
        # Meta is consumed once.
        assert r.witness_meta() == {}

    def test_merge_raises_clock(self):
        r = GSetReplica(0, 2)
        r.on_message(1, (10, 1, "y"))
        r.on_update(Update("insert", ("x",)))
        assert r.witness_meta()["timestamp"][0] == 11

    def test_unknown_query_rejected(self):
        r = GSetReplica(0, 2)
        with pytest.raises(ValueError, match="unknown set query"):
            r.on_query("size")

    def test_expect_guards_update_names(self):
        r = GSetReplica(0, 2)
        with pytest.raises(ValueError, match="unsupported update"):
            r.on_update(Update("merge", ()))

    def test_value_is_abstract(self):
        r = OpBasedReplica(0, 1)
        with pytest.raises(NotImplementedError):
            r.value()

    def test_local_state_delegates_to_value(self):
        r = GSetReplica(0, 1)
        r.on_update(Update("insert", ("a",)))
        assert r.local_state() == frozenset({"a"})


def test_tag_sort_key_is_identity_on_pairs():
    assert tag_sort_key((3, 1)) == (3, 1)
    tags = [(2, 0), (1, 1), (1, 0)]
    assert sorted(tags, key=tag_sort_key) == [(1, 0), (1, 1), (2, 0)]
