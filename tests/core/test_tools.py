"""Tests for the history DSL and the classification CLI."""

from __future__ import annotations

import pytest

from repro.core.criteria import classify
from repro.paper import FIG1_BUILDERS, FIG1_EXPECTED, fig_2
from repro.specs import SetSpec
from repro.tools.dsl import DSLError, format_history, parse_set_history
from repro.tools.__main__ import main as cli_main

SPEC = SetSpec()

FIG_1B = """
# the paper's Fig. 1b
p0: I(1) D(2) R{1,2}^w
p1: I(2) D(1) R{1,2}^w
"""


class TestParser:
    def test_fig_1b_round_trip_classification(self):
        h = parse_set_history(FIG_1B)
        results = classify(h, SPEC)
        got = {k: bool(v) for k, v in results.items()
               if k in FIG1_EXPECTED["1b"]}
        assert got == FIG1_EXPECTED["1b"]

    def test_values_int_or_string(self):
        h = parse_set_history("p0: I(1) I(apple) R{1,apple}")
        labels = [e.label for e in h.events]
        assert labels[0].args == (1,)
        assert labels[1].args == ("apple",)
        assert labels[2].output == frozenset({1, "apple"})

    def test_empty_read(self):
        h = parse_set_history("p0: R{}")
        assert h.events[0].label.output == frozenset()

    def test_contains_syntax(self):
        h = parse_set_history("p0: C(3)+ C(4)-")
        assert h.events[0].label.output is True
        assert h.events[1].label.output is False

    def test_omega_flag(self):
        h = parse_set_history("p0: I(1) R{1}^w")
        assert [e.omega for e in h.events] == [False, True]

    def test_unicode_omega(self):
        h = parse_set_history("p0: R{}^ω")
        assert h.events[0].omega

    def test_comments_and_blank_lines(self):
        h = parse_set_history("\n# header\np0: I(1)  # trailing\n\n")
        assert len(h) == 1

    def test_omega_mid_line_rejected(self):
        with pytest.raises(DSLError, match="maximal"):
            parse_set_history("p0: R{}^w I(1)")

    def test_bad_syntax_rejected(self):
        with pytest.raises(DSLError, match="cannot parse"):
            parse_set_history("p0: insert(1)")

    def test_bad_line_rejected(self):
        with pytest.raises(DSLError, match="expected"):
            parse_set_history("process zero: I(1)")

    def test_duplicate_process_rejected(self):
        with pytest.raises(DSLError, match="twice"):
            parse_set_history("p0: I(1)\np0: I(2)")

    def test_missing_process_rejected(self):
        with pytest.raises(DSLError, match="missing"):
            parse_set_history("p2: I(1)")

    def test_empty_input_rejected(self):
        with pytest.raises(DSLError, match="no processes"):
            parse_set_history("# nothing\n")


class TestFormatter:
    @pytest.mark.parametrize("name", list(FIG1_BUILDERS))
    def test_round_trips_the_figures(self, name):
        h = FIG1_BUILDERS[name]()
        text = format_history(h)
        h2 = parse_set_history(text)
        assert [e.label for e in h2.events] == [e.label for e in h.events]
        assert [e.omega for e in h2.events] == [e.omega for e in h.events]

    def test_round_trips_fig2(self):
        text = format_history(fig_2())
        assert classify(parse_set_history(text), SPEC, criteria=("PC", "EC"))


class TestCLI:
    def test_demo_fig1d(self, capsys):
        code = cli_main(["--demo", "fig1d"])
        out = capsys.readouterr().out
        assert code == 1  # PC fails on 1d
        assert "SUC : holds" in out
        assert "PC  : FAILS" in out

    def test_demo_with_criteria_subset(self, capsys):
        code = cli_main(["--demo", "fig2", "--criteria", "PC"])
        assert code == 0
        assert "PC  : holds" in capsys.readouterr().out

    def test_file_input(self, tmp_path, capsys):
        f = tmp_path / "h.txt"
        f.write_text("p0: I(1) R{1}^w\n")
        code = cli_main([str(f)])
        assert code == 0
        out = capsys.readouterr().out
        assert "UC  : holds" in out

    def test_parse_error_exit_code(self, tmp_path, capsys):
        f = tmp_path / "bad.txt"
        f.write_text("junk\n")
        assert cli_main([str(f)]) == 2
        assert "parse error" in capsys.readouterr().err
