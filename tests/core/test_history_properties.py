"""Property tests for the history model's algebraic laws."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.history import History
from repro.core.linearization import (
    count_linearizations,
    is_linearization,
    linearizations,
)
from repro.specs import set_spec as S
from repro.util import ordering


@st.composite
def histories(draw):
    n_proc = draw(st.integers(1, 3))
    processes = []
    for _ in range(n_proc):
        length = draw(st.integers(0, 3))
        ops = []
        for i in range(length):
            kind = draw(st.integers(0, 2))
            v = draw(st.integers(1, 3))
            if kind == 0:
                ops.append(S.insert(v))
            elif kind == 1:
                ops.append(S.delete(v))
            else:
                q = S.read(frozenset({v}))
                omega = i == length - 1 and draw(st.booleans())
                ops.append((q, omega) if omega else q)
        processes.append(ops)
    return History.from_processes(processes)


class TestProjectionLaws:
    @given(histories())
    @settings(max_examples=80, deadline=None)
    def test_restrict_to_all_is_identity(self, h):
        sub = h.restrict(h.events)
        assert set(sub.events) == set(h.events)
        assert sub.program_order_closure == h.program_order_closure

    @given(histories())
    @settings(max_examples=80, deadline=None)
    def test_restrict_is_monotone(self, h):
        updates = h.updates
        sub = h.restrict(updates)
        for a in sub.events:
            for b in sub.events:
                if sub.precedes(a, b):
                    assert h.precedes(a, b)

    @given(histories(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_restrict_composes(self, h, data):
        if not h.events:
            return
        keep1 = data.draw(st.sets(st.sampled_from(list(h.events))))
        # ω-maximality: keep all ω events' (non-)successors trivially —
        # restriction can never violate maximality (it removes edges).
        keep2 = data.draw(st.sets(st.sampled_from(list(keep1))) if keep1 else st.just(set()))
        one = h.restrict(keep1).restrict(keep2)
        direct = h.restrict(keep2)
        assert set(one.events) == set(direct.events)
        assert one.program_order_closure == direct.program_order_closure

    @given(histories())
    @settings(max_examples=60, deadline=None)
    def test_without_partitions_events(self, h):
        queries = set(h.queries)
        sub = h.without(queries)
        assert set(sub.events) == set(h.events) - queries


class TestChainLaws:
    @given(histories())
    @settings(max_examples=80, deadline=None)
    def test_chains_partition_events_for_process_histories(self, h):
        chains = h.maximal_chains()
        seen = [e for chain in chains for e in chain]
        assert sorted(e.eid for e in seen) == sorted(e.eid for e in h.events)

    @given(histories())
    @settings(max_examples=80, deadline=None)
    def test_chains_match_process_events(self, h):
        chains = {tuple(e.eid for e in c) for c in h.maximal_chains()}
        expected = {
            tuple(e.eid for e in h.process_events(pid)) for pid in h.pids
        }
        assert chains == expected


class TestLinearizationLaws:
    @given(histories())
    @settings(max_examples=50, deadline=None)
    def test_every_enumerated_linearization_validates(self, h):
        for i, seq in enumerate(linearizations(h)):
            assert is_linearization(h, seq)
            if i > 50:
                break

    @given(histories())
    @settings(max_examples=50, deadline=None)
    def test_count_matches_product_of_binomials(self, h):
        # For independent chains, #linearizations = multinomial coefficient.
        import math

        lengths = [len(h.process_events(pid)) for pid in h.pids]
        expected = math.factorial(sum(lengths))
        for length in lengths:
            expected //= math.factorial(length)
        assert count_linearizations(h) == expected

    @given(histories())
    @settings(max_examples=50, deadline=None)
    def test_reversed_chain_is_not_a_linearization(self, h):
        for pid in h.pids:
            chain = h.process_events(pid)
            if len(chain) >= 2:
                others = [e for e in h.events if e.pid != pid]
                candidate = tuple(reversed(chain)) + tuple(others)
                assert not is_linearization(h, candidate)
                return
