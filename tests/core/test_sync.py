"""Tests for the anti-entropy v2 protocol: digests, paging, state transfer.

Covers the wire codec in :mod:`repro.core.sync`, the replica-side
behaviour in :class:`~repro.core.universal.UniversalReplica` /
:class:`~repro.core.checkpoint.GarbageCollectedReplica`, and the three
divergence bugs this protocol fixes (snapshot losing the compacted
prefix, the unbounded known set, and silently-incomplete sync responses
for sub-floor gaps).
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import GarbageCollectedReplica, StabilityViolation
from repro.core.sync import (
    SYNC_REQ,
    StateHandoff,
    StateTransferRequired,
    SyncDigest,
    SyncProtocolError,
    coalesce,
    pages,
    parse_sync_request,
)
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def gc_cluster(n=3, gc_interval=10_000, **kw):
    """A FIFO cluster of GC replicas; GC is triggered manually."""
    kw.setdefault("fifo", True)
    return Cluster(
        n,
        lambda pid, total: GarbageCollectedReplica(
            pid, total, SPEC, gc_interval=gc_interval, **kw.pop("replica_kw", {})
        ),
        **kw,
    )


def gossip(c: Cluster, pids=None) -> None:
    """One update + heartbeat round, fully delivered."""
    for pid in pids if pids is not None else range(c.n):
        c.update(pid, S.insert(pid))
    c.run()
    for pid in pids if pids is not None else range(c.n):
        c.network.broadcast(pid, c.replicas[pid].heartbeat(), c.now)
    c.run()


class TestCoalesce:
    def test_empty(self):
        assert coalesce([]) == ()

    def test_single_run(self):
        assert coalesce([3, 1, 2]) == ((1, 3),)

    def test_gaps_split_runs(self):
        assert coalesce([1, 2, 5, 7, 8, 9]) == ((1, 2), (5, 5), (7, 9))

    def test_duplicates_collapse(self):
        assert coalesce([4, 4, 5]) == ((4, 5),)


class TestSyncDigest:
    def test_from_uids_keeps_only_above_floor(self):
        d = SyncDigest.from_uids(
            {(1, 0), (2, 0), (7, 0), (3, 1)}, 2, floors=(2, 0)
        )
        assert d.intervals == (((7, 7),), ((3, 3),))

    def test_covers_floor_and_runs(self):
        d = SyncDigest(floors=(4, 0), intervals=(((7, 9),), ()))
        assert d.covers(3, 0) and d.covers(4, 0)
        assert not d.covers(5, 0)
        assert d.covers(8, 0)
        assert not d.covers(10, 0)
        assert not d.covers(1, 1)

    def test_coverage_floor_extended_by_adjacent_runs(self):
        d = SyncDigest(floors=(4, 0), intervals=(((5, 6), (8, 9)), ()))
        # 5..6 touches the floor and extends it; 8..9 is past a gap at 7.
        assert d.coverage_floor(0) == 6
        assert d.coverage_floor(1) == 0

    def test_exceptions_enumerate_every_run_point(self):
        d = SyncDigest(floors=(0, 0), intervals=(((2, 4),), ((9, 9),)))
        assert set(d.exceptions()) == {(2, 0), (3, 0), (4, 0), (9, 1)}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SyncProtocolError):
            SyncDigest(floors=(0,), intervals=((), ()))

    def test_request_payload_round_trip(self):
        d = SyncDigest.from_uids(
            {(5, 0), (6, 0), (9, 1)}, 2, floors=(4, 2), accepts_state=True
        )
        requester, parsed = parse_sync_request(d.request_payload(1))
        assert requester == 1
        assert parsed == d

    def test_v1_known_set_still_parses(self):
        known = frozenset({(1, 0), (2, 1), (3, 1)})
        requester, d = parse_sync_request((SYNC_REQ, 0, known))
        assert requester == 0
        assert d.floors == (0, 0)
        assert not d.accepts_state
        assert all(d.covers(cl, j) for cl, j in known)
        assert not d.covers(4, 1)

    def test_malformed_request_rejected(self):
        with pytest.raises(SyncProtocolError):
            parse_sync_request(("something-else", 0, frozenset()))
        with pytest.raises(SyncProtocolError):
            parse_sync_request((SYNC_REQ, 0))


class TestPages:
    def test_splits_into_bounded_batches(self):
        batches = list(pages(list(range(10)), 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [x for b in batches for x in b] == list(range(10))

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            list(pages([1], 0))


class TestStateHandoff:
    def test_round_trip(self):
        h = StateHandoff(
            base=frozenset({1}), clock_floor=7, frontier=(7, 2), heard=(7, 8, 7)
        )
        sender, parsed = StateHandoff.parse(h.payload(2))
        assert sender == 2
        assert parsed == h

    def test_malformed_rejected(self):
        with pytest.raises(SyncProtocolError):
            StateHandoff.parse(("sync-state", 0, "not-a-dict"))


class TestPagedSync:
    def test_crash_repair_ships_bounded_pages(self):
        c = Cluster(
            3,
            lambda p, n: UniversalReplica(p, n, SPEC, sync_page_size=4),
            fifo=True,
        )
        c.crash(2)
        for i in range(10):
            c.update(0, S.insert(i))
        c.run()
        c.recover(2)
        c.run()
        assert c.query(2, "read") == c.query(0, "read")
        shipped = c.metrics.total("repro_sync_updates_shipped_total")
        pages_sent = c.metrics.total("repro_sync_pages_sent_total")
        assert shipped >= 10
        # Every page below the bound: 10+ entries need at least ceil(10/4).
        assert pages_sent >= 3

    def test_redundant_sync_entries_counted_not_reapplied(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SPEC), fifo=True)
        c.update(0, S.insert(1))
        c.run()
        # Both replicas know everything; a sync round ships nothing new,
        # but hand-deliver a duplicate page to exercise the skip path.
        r1 = c.replicas[1]
        entry = c.replicas[0].updates[0]
        r1.on_message(0, ("sync-resp", (entry,)))
        assert c.metrics.total("repro_sync_redundant_updates_total") == 1
        assert len(r1.updates) == 1

    def test_sync_request_metrics_counted(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SPEC))
        c.replicas[0].sync_request()
        assert c.metrics.total("repro_sync_requests_total") == 1
        assert c.metrics.total("repro_sync_request_bits_total") > 0


class TestGCDigest:
    def test_floors_come_from_heard(self):
        c = gc_cluster()
        for _ in range(3):
            gossip(c)
        r0 = c.replicas[0]
        d = r0._sync_digest()
        assert d.accepts_state
        assert d.floors == tuple(r0.heard)
        assert all(f > 0 for f in d.floors)

    def test_known_pruned_below_floor(self):
        # Satellite regression: before v2 the known set (dedup structure)
        # grew O(total updates) forever, making GC's bound cosmetic.
        c = gc_cluster()
        for _ in range(5):
            gossip(c)
        r0 = c.replicas[0]
        before = r0.known_ids_tracked
        r0.collect_garbage()
        assert r0.gc_clock_floor > 0
        assert r0.known_ids_tracked < before
        assert all(uid[0] > r0.gc_clock_floor for uid in r0._known)

    def test_covers_uid_implicit_below_floor(self):
        c = gc_cluster()
        for _ in range(3):
            gossip(c)
        r0 = c.replicas[0]
        r0.collect_garbage()
        assert r0._covers_uid(1, 1)  # folded, pruned, still covered
        assert not r0._covers_uid(r0.clock.value + 10, 1)


class TestStateTransfer:
    def _collected_cluster(self):
        c = gc_cluster()
        for _ in range(4):
            gossip(c)
        for r in c.replicas:
            r.collect_garbage()
        assert all(r.gc_clock_floor > 0 for r in c.replicas)
        return c

    def test_sub_floor_gap_without_consent_is_detected(self):
        # Satellite regression: v1 answered a requester missing sub-floor
        # updates with whatever was still in the live log — an incomplete
        # response and silent divergence.  The gap must now be *detected*.
        c = self._collected_cluster()
        r0 = c.replicas[0]
        v1_request = (SYNC_REQ, 1, frozenset())  # claims nothing, v1 dialect
        with pytest.raises(StateTransferRequired):
            r0.on_message(1, v1_request)

    def test_consenting_requester_gets_state(self):
        c = self._collected_cluster()
        r0 = c.replicas[0]
        empty = SyncDigest.from_uids((), c.n, accepts_state=True)
        r0.on_message(1, empty.request_payload(1))
        sent = [payload for dst, payload in r0.outbox if dst == 1]
        assert any(p[0] == "sync-state" for p in sent)
        assert c.metrics.total("repro_sync_state_transfers_total") == 1

    def test_install_gc_state_adopts_floor(self):
        c = self._collected_cluster()
        r0, r1 = c.replicas[0], c.replicas[1]
        handoff = StateHandoff(**r0.durable_gc_state())
        fresh = GarbageCollectedReplica(1, c.n, SPEC)
        assert fresh.install_gc_state(
            base=handoff.base, clock_floor=handoff.clock_floor,
            frontier=handoff.frontier,
        )
        assert fresh.gc_clock_floor == r0.gc_clock_floor
        assert fresh.clock.value >= handoff.clock_floor
        assert all(h >= handoff.clock_floor for h in fresh.heard)
        assert fresh.local_state() == r0._base

    def test_install_refuses_lower_floor(self):
        c = self._collected_cluster()
        r0 = c.replicas[0]
        floor = r0.gc_clock_floor
        assert not r0.install_gc_state(base=frozenset(), clock_floor=floor)
        assert r0.gc_clock_floor == floor
        assert r0._base != frozenset() or not r0.updates

    def test_covered_sync_entries_are_benign_duplicates(self):
        # A page may re-ship entries at or below the requester's floor
        # (the responder saw an older digest); they must be counted as
        # redundant, not raise StabilityViolation.
        c = self._collected_cluster()
        r0 = c.replicas[0]
        stale_entry = (1, 1, S.insert(1))
        r0._ingest_synced(1, stale_entry)
        assert c.metrics.total("repro_sync_redundant_updates_total") >= 1

    def test_direct_update_below_floor_still_violates(self):
        c = self._collected_cluster()
        r0 = c.replicas[0]
        with pytest.raises(StabilityViolation):
            r0.on_message(1, (1, 1, S.insert(1)))


class TestRecoveryRegression:
    def test_gc_crash_recover_converges(self):
        # Satellite regression: replica_snapshot lost _base/_gc_frontier/
        # heard, so GC past an update + crash + recover silently rewound
        # the collected prefix and the cluster diverged.
        c = gc_cluster()
        for _ in range(4):
            gossip(c)
        for r in c.replicas:
            r.collect_garbage()
        assert c.replicas[2].gc_clock_floor > 0
        assert c.replicas[2].collected > 0
        c.crash(2)
        c.recover(2)  # complete snapshot: pure codec round-trip
        c.run()
        c.anti_entropy()
        states = set(map(repr, c.states().values()))
        assert len(states) == 1
        # The recovered replica kept its compacted prefix.
        assert c.replicas[2].gc_clock_floor > 0

    def test_snapshot_round_trips_gc_state(self):
        from repro.sim.persist import replica_snapshot, restore_replica

        c = gc_cluster()
        for _ in range(4):
            gossip(c)
        r2 = c.replicas[2]
        r2.collect_garbage()
        snap = replica_snapshot(r2)
        fresh = GarbageCollectedReplica(2, c.n, SPEC)
        restore_replica(fresh, snap)
        assert fresh.gc_clock_floor == r2.gc_clock_floor
        assert fresh._base == r2._base
        assert fresh._gc_frontier == r2._gc_frontier
        assert list(fresh.heard) == list(r2.heard)
        assert fresh.local_state() == r2.local_state()

    def test_gc_snapshot_needs_gc_capable_target(self):
        from repro.sim.persist import replica_snapshot, restore_replica

        c = gc_cluster()
        for _ in range(4):
            gossip(c)
        r2 = c.replicas[2]
        r2.collect_garbage()
        snap = replica_snapshot(r2)
        with pytest.raises(ValueError, match="compacted"):
            restore_replica(UniversalReplica(2, c.n, SPEC), snap)

    def test_truncated_restore_freezes_own_heard(self):
        from repro.sim.persist import replica_snapshot, restore_replica

        c = gc_cluster()
        for _ in range(2):
            gossip(c)
        for r in c.replicas:
            r.collect_garbage()
        for _ in range(2):
            gossip(c)  # live entries above the floor, lost below
        r2 = c.replicas[2]
        pre_crash_clock = r2.clock.value
        snap = replica_snapshot(r2, fsync_point=0)
        fresh = GarbageCollectedReplica(2, c.n, SPEC)
        restore_replica(fresh, snap)
        # The stored heard vector over-claims; the rewound one must not,
        # and the own column is frozen (the replica may have lost its own
        # updates) until a state transfer certifies a covering floor.
        assert fresh.heard[2] < pre_crash_clock
        assert fresh._own_suspect_below == pre_crash_clock
        frozen = fresh.heard[2]
        fresh.heartbeat()
        assert fresh.heard[2] == frozen
        fresh.install_gc_state(
            base=frozenset(), clock_floor=pre_crash_clock
        )
        assert fresh._own_suspect_below == 0

    def test_complete_restore_trusts_stored_heard(self):
        from repro.sim.persist import replica_snapshot, restore_replica

        c = gc_cluster()
        for _ in range(3):
            gossip(c)
        r2 = c.replicas[2]
        snap = replica_snapshot(r2)  # complete: no truncation
        fresh = GarbageCollectedReplica(2, c.n, SPEC)
        restore_replica(fresh, snap)
        assert list(fresh.heard) == list(r2.heard)
        assert fresh._own_suspect_below == 0
