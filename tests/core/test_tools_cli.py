"""Tests for the simulate/figures CLI subcommands (classify is covered in
``test_tools.py``)."""

from __future__ import annotations

import pytest

from repro.tools.__main__ import main as cli_main


class TestSimulate:
    def test_set_universal(self, capsys):
        code = cli_main(["simulate", "--spec", "set", "--ops", "40", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "update-consistent convergence: PASS" in out
        assert "messages:" in out

    def test_counter_commutative_strategy(self, capsys):
        code = cli_main([
            "simulate", "--spec", "counter", "--strategy", "commutative",
            "--ops", "30",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # The commutative fast path records no witness: the CLI falls back
        # to plain agreement.
        assert "replicas agree: True" in out

    def test_fuzzed_run_reports_adversary(self, capsys):
        code = cli_main([
            "simulate", "--spec", "set", "--ops", "30", "--fuzz",
            "--crash", "1", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary:" in out

    def test_memory_spec(self, capsys):
        code = cli_main(["simulate", "--spec", "memory", "--ops", "30"])
        assert code == 0
        assert "converged state" in capsys.readouterr().out

    def test_log_spec(self, capsys):
        code = cli_main(["simulate", "--spec", "log", "--ops", "20", "--n", "2"])
        assert code == 0

    def test_determinism(self, capsys):
        cli_main(["simulate", "--spec", "set", "--ops", "40", "--seed", "9"])
        first = capsys.readouterr().out
        cli_main(["simulate", "--spec", "set", "--ops", "40", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestFigures:
    def test_prints_matrix(self, capsys):
        assert cli_main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "1a" in out
        # The caption, as text.
        assert "yes | no  | no  | no  | no" in out


class TestDispatch:
    def test_default_command_is_classify(self, capsys):
        code = cli_main(["--demo", "fig1c"])
        assert code == 1  # SUC/PC fail on 1c
        assert "UC  : holds" in capsys.readouterr().out

    def test_classify_without_input_errors(self, capsys):
        assert cli_main(["classify"]) == 2
        assert "history file" in capsys.readouterr().err
