"""Tests for the commutative fast path (Section VII-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.commutative import CommutativeReplica
from repro.core.criteria.witness import verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import counter_workload, run_workload
from repro.specs import CounterSpec, GSetSpec, MaxRegisterSpec, SetSpec
from repro.specs import counter as C
from repro.specs import gset as G
from repro.specs import max_register as M


class TestConstruction:
    def test_refuses_non_commutative_specs(self):
        with pytest.raises(ValueError, match="do not commute"):
            CommutativeReplica(0, 2, SetSpec())

    def test_accepts_commutative_specs(self):
        for spec in (CounterSpec(), GSetSpec(), MaxRegisterSpec()):
            CommutativeReplica(0, 2, spec)


class TestBehaviour:
    def test_counter_converges(self):
        c = Cluster(3, lambda pid, n: CommutativeReplica(pid, n, CounterSpec()),
                    latency=ExponentialLatency(5.0), seed=4)
        c.update(0, C.inc(5))
        c.update(1, C.dec(2))
        c.update(2, C.inc(1))
        c.run()
        assert all(c.query(pid, "read") == 4 for pid in range(3))

    def test_gset_converges(self):
        c = Cluster(2, lambda pid, n: CommutativeReplica(pid, n, GSetSpec()))
        c.update(0, G.insert("a"))
        c.update(1, G.insert("b"))
        c.run()
        assert c.query(0, "read") == frozenset({"a", "b"})

    def test_max_register_converges(self):
        c = Cluster(2, lambda pid, n: CommutativeReplica(pid, n, MaxRegisterSpec()))
        c.update(0, M.write_max(5))
        c.update(1, M.write_max(9))
        c.run()
        assert c.query(0, "read") == 9

    def test_no_log_kept(self):
        r = CommutativeReplica(0, 2, CounterSpec())
        assert not hasattr(r, "updates")

    def test_applied_counter(self):
        c = Cluster(2, lambda pid, n: CommutativeReplica(pid, n, CounterSpec()))
        c.update(0, C.inc(1))
        c.run()
        assert c.replicas[1].applied == 1


class TestEquivalenceAndWitness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_equivalent_to_universal_construction(self, seed):
        """Section VII-C's claim: for commutative objects, apply-on-receipt
        equals the full timestamp-ordered replay, op for op."""
        wl = counter_workload(3, 40, seed=seed)
        spec = CounterSpec()
        naive = Cluster(3, lambda pid, n: UniversalReplica(pid, n, spec),
                        latency=ExponentialLatency(4.0), seed=seed)
        fast = Cluster(3, lambda pid, n: CommutativeReplica(pid, n, spec),
                       latency=ExponentialLatency(4.0), seed=seed)
        assert run_workload(naive, wl) == run_workload(fast, wl)

    def test_witness_tracking_produces_valid_suc_witness(self):
        spec = CounterSpec()
        c = Cluster(
            2,
            lambda pid, n: CommutativeReplica(pid, n, spec, track_witness=True),
            latency=ExponentialLatency(3.0), seed=6,
        )
        c.update(0, C.inc(1))
        c.query(1, "read")
        c.update(1, C.dec(2))
        c.run()
        c.query(0, "read")
        c.query(1, "read")
        h = c.trace.to_history()
        res = verify_suc_witness(h, spec, c.trace.suc_witness(h))
        assert res, res.reason
