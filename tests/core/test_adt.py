"""Unit tests for the UQ-ADT formalism (Definition 1)."""

from __future__ import annotations

import pytest

from repro.core.adt import Query, UQADT, Update, _canonical
from repro.specs import CounterSpec, SetSpec
from repro.specs import counter as C
from repro.specs import set_spec as S


class TestOperations:
    def test_update_equality_is_structural(self):
        assert S.insert(1) == Update("insert", (1,))
        assert S.insert(1) != S.insert(2)
        assert S.insert(1) != S.delete(1)

    def test_update_is_hashable(self):
        assert len({S.insert(1), S.insert(1), S.delete(1)}) == 2

    def test_query_carries_input_and_output(self):
        q = S.read({1, 2})
        assert q.name == "read"
        assert q.output == frozenset({1, 2})
        assert q.input_part == ("read", ())

    def test_query_str_shows_qi_qo(self):
        assert "/" in str(S.contains(3, True))

    def test_update_str(self):
        assert str(S.insert(1)) == "insert(1)"


class TestReplayAndRecognition:
    def test_replay_applies_updates_in_order(self, set_spec):
        state = set_spec.replay([S.insert(1), S.insert(2), S.delete(1)])
        assert state == frozenset({2})

    def test_replay_ignores_queries(self, set_spec):
        state = set_spec.replay([S.insert(1), S.read({99}), S.insert(2)])
        assert state == frozenset({1, 2})

    def test_replay_from_explicit_state(self, set_spec):
        state = set_spec.replay([S.delete(1)], state=frozenset({1, 2}))
        assert state == frozenset({2})

    def test_replay_from_none_state_is_possible(self, register_spec):
        # None is a legal register state; the sentinel must not eat it.
        assert register_spec.replay([], state=None) is None

    def test_recognizes_valid_word(self, set_spec):
        word = [S.insert(1), S.read({1}), S.delete(1), S.read(set())]
        assert set_spec.recognizes(word)

    def test_rejects_wrong_query_output(self, set_spec):
        assert not set_spec.recognizes([S.insert(1), S.read(set())])

    def test_empty_word_recognized(self, set_spec):
        assert set_spec.recognizes([])

    def test_first_violation_index(self, set_spec):
        word = [S.insert(1), S.read({1}), S.read({2}), S.read({3})]
        assert set_spec.first_violation(word) == 2

    def test_first_violation_none_when_valid(self, set_spec):
        assert set_spec.first_violation([S.insert(1), S.read({1})]) is None

    def test_recognizes_rejects_non_operation(self, set_spec):
        with pytest.raises(TypeError):
            set_spec.recognizes(["not an op"])

    def test_counter_language(self, counter_spec):
        word = [C.inc(2), C.read(2), C.dec(5), C.read(-3)]
        assert counter_spec.recognizes(word)


class TestSolveStateDefault:
    def test_empty_constraints_give_initial(self):
        class Trivial(UQADT):
            def initial_state(self):
                return 42

            def apply(self, state, update):
                return state

            def observe(self, state, name, args=()):
                return state

        assert Trivial().solve_state([]) == 42

    def test_initial_satisfying_constraints_found(self):
        class Trivial(UQADT):
            def initial_state(self):
                return 0

            def apply(self, state, update):
                return state

            def observe(self, state, name, args=()):
                return state

        assert Trivial().solve_state([Query("read", (), 0)]) == 0
        assert Trivial().solve_state([Query("read", (), 1)]) is None


class TestCanonical:
    def test_sets_become_frozensets(self):
        assert _canonical({1, 2}) == frozenset({1, 2})

    def test_dicts_become_sorted_tuples(self):
        assert _canonical({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_nested_structures(self):
        assert _canonical([{1}, {2}]) == (frozenset({1}), frozenset({2}))

    def test_states_equal_across_representations(self, set_spec):
        assert set_spec.states_equal({1, 2}, frozenset({2, 1}))

    def test_unapply_default_raises(self, set_spec):
        with pytest.raises(NotImplementedError):
            set_spec.unapply(frozenset(), S.insert(1))
