"""Unit tests for linearizations and L(O) membership (Definition 3)."""

from __future__ import annotations

import pytest

from repro.core.history import History
from repro.core.linearization import (
    OmegaUpdateError,
    count_linearizations,
    is_linearization,
    labels,
    linearizations,
    sequential_membership,
    update_linearization_states,
)
from repro.paper import fig_1b
from repro.specs import set_spec as S


class TestEnumeration:
    def test_single_process_single_linearization(self):
        h = History.from_processes([[S.insert(1), S.insert(2)]])
        assert count_linearizations(h) == 1

    def test_two_independent_events_two_orders(self):
        h = History.from_processes([[S.insert(1)], [S.insert(2)]])
        seqs = list(linearizations(h))
        assert len(seqs) == 2

    def test_is_linearization(self):
        h = History.from_processes([[S.insert(1), S.insert(2)]])
        e0, e1 = h.events
        assert is_linearization(h, (e0, e1))
        assert not is_linearization(h, (e1, e0))

    def test_labels_projection(self):
        h = History.from_processes([[S.insert(1)]])
        assert labels(h.events) == (S.insert(1),)


class TestMembership:
    def test_valid_history_is_member(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({1})]])
        assert sequential_membership(h, set_spec)

    def test_wrong_read_not_member(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({2})]])
        assert not sequential_membership(h, set_spec)

    def test_membership_searches_interleavings(self, set_spec):
        # p1's read can only be explained by placing it before p0's insert.
        h = History.from_processes([[S.insert(1)], [S.read(set())]])
        assert sequential_membership(h, set_spec)

    def test_omega_query_constrains_final_state(self, set_spec):
        h = History.from_processes([[S.insert(1), (S.read({1}), True)]])
        assert sequential_membership(h, set_spec)
        h2 = History.from_processes([[S.insert(1), (S.read(set()), True)]])
        assert not sequential_membership(h2, set_spec)

    def test_two_omega_queries_must_share_state(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), (S.read({1}), True)], [(S.read(set()), True)]]
        )
        assert not sequential_membership(h, set_spec)

    def test_witness_returned(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({1})]])
        ok, lin = sequential_membership(h, set_spec, return_witness=True)
        assert ok
        assert [e.label for e in lin] == [S.insert(1), S.read({1})]

    def test_no_witness_on_failure(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({2})]])
        ok, lin = sequential_membership(h, set_spec, return_witness=True)
        assert not ok and lin is None

    def test_omega_update_raises(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)]])
        with pytest.raises(OmegaUpdateError):
            sequential_membership(h, set_spec)

    def test_empty_history_is_member(self, set_spec):
        assert sequential_membership(History([]), set_spec)


class TestUpdateLinearizationStates:
    def test_fig_1b_reaches_three_states(self, set_spec):
        # The paper enumerates them: ∅, {1} and {2} — never {1, 2}.
        states = update_linearization_states(fig_1b(), set_spec)
        assert states == {frozenset(), frozenset({1}), frozenset({2})}

    def test_single_process_single_state(self, set_spec):
        h = History.from_processes([[S.insert(1), S.delete(1)]])
        assert update_linearization_states(h, set_spec) == {frozenset()}

    def test_commuting_updates_single_state(self, set_spec):
        h = History.from_processes([[S.insert(1)], [S.insert(2)]])
        assert update_linearization_states(h, set_spec) == {frozenset({1, 2})}

    def test_omega_update_raises(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)]])
        with pytest.raises(OmegaUpdateError):
            update_linearization_states(h, set_spec)
