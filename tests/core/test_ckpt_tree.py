"""Unit tests for the dyadic checkpoint store behind incremental replay."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.ckpt_tree import CheckpointTree


def filled(n: int, every: int = 1) -> CheckpointTree:
    t = CheckpointTree("s0")
    for i in range(every, n + 1, every):
        t.record(i, f"s{i}")
    return t


class TestRecord:
    def test_base_always_present(self):
        t = CheckpointTree("s0")
        assert t.indices() == [0]
        assert t.base_state == "s0"
        assert t.tip_index == 0

    def test_records_ascending(self):
        t = filled(4)
        assert t.tip_index == 4
        assert t.indices()[0] == 0
        assert t.indices() == sorted(t.indices())

    def test_stale_record_ignored(self):
        t = filled(8)
        t.record(8, "dupe")
        t.record(3, "stale")
        assert t.tip_index == 8
        assert dict(iter(t))[8] == "s8"

    def test_retention_is_logarithmic(self):
        # 100k recorded positions must retain O(log n) checkpoints.
        t = filled(100_000)
        assert len(t) <= 2 * math.log2(100_000) + 8

    def test_denser_near_the_tip(self):
        t = filled(10_000)
        idx = t.indices()
        gaps = [b - a for a, b in zip(idx, idx[1:])]
        # Gaps shrink (weakly) toward the tip: the last gap is the smallest,
        # the first the largest.
        assert gaps[-1] == min(gaps)
        assert gaps[0] == max(gaps)

    def test_thinning_invariant(self):
        # At the fixpoint no interior entry is droppable: merging its two
        # gaps would always exceed the distance from there to the tip.
        t = filled(5_000, every=7)
        idx = t.indices()
        tip = idx[-1]
        for i in range(1, len(idx) - 1):
            assert idx[i + 1] - idx[i - 1] > tip - idx[i + 1]


class TestRollback:
    def test_rollback_returns_deepest_survivor(self):
        t = filled(100)
        index, state = t.rollback(57)
        assert index <= 57
        assert state == f"s{index}"
        assert t.tip_index == index

    def test_rollback_to_base(self):
        t = filled(100)
        index, state = t.rollback(0)
        assert (index, state) == (0, "s0")
        assert t.indices() == [0]

    def test_rollback_on_checkpoint_boundary_keeps_it(self):
        # A hit exactly *on* a retained index must survive: the checkpoint
        # is the fold of updates strictly before it, so an insert at that
        # position invalidates nothing at or below.
        t = filled(100)
        boundary = t.indices()[-2]
        index, _ = t.rollback(boundary)
        assert index == boundary

    def test_best_at_or_below_does_not_invalidate(self):
        t = filled(100)
        before = t.indices()
        index, state = t.best_at_or_below(57)
        assert index <= 57 and state == f"s{index}"
        assert t.indices() == before

    def test_repeated_rollbacks_never_lose_the_base(self):
        t = filled(200)
        for pos in (150, 90, 40, 7, 0):
            index, state = t.rollback(pos)
            assert index <= pos
            assert t.indices()[0] == 0
        assert t.base_state == "s0"


class TestGCIntegration:
    def test_shift_left_renumbers(self):
        t = CheckpointTree("base")
        for i in (10, 20, 30, 40):
            t.record(i, f"s{i}")
        kept = [i for i in t.indices() if i > 25]
        t.shift_left(25, "folded")
        assert t.indices() == [0] + [i - 25 for i in kept]
        assert t.base_state == "folded"

    def test_shift_left_drops_subsumed_checkpoints(self):
        t = CheckpointTree("base")
        t.record(10, "s10")
        t.record(20, "s20")
        t.shift_left(20, "folded")  # cut lands exactly on a checkpoint
        assert t.indices() == [0]
        assert t.base_state == "folded"

    def test_shift_left_zero_is_noop(self):
        t = filled(50)
        before = t.indices()
        t.shift_left(0, "ignored")
        assert t.indices() == before
        assert t.base_state == "s0"

    def test_reset(self):
        t = filled(50)
        t.reset("transferred")
        assert t.indices() == [0]
        assert t.base_state == "transferred"
        assert t.tip_index == 0


@given(
    st.lists(st.integers(1, 500), min_size=1, max_size=60),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_random_record_rollback_interleaving(increments, data):
    """Whatever the interleaving, the survivor returned by rollback is the
    deepest retained checkpoint at or below the hit, indices stay strictly
    ascending, and the base never disappears."""
    t = CheckpointTree(0)
    tip = 0
    for step, inc in enumerate(increments):
        tip += inc
        t.record(tip, tip)  # state mirrors index for easy checking
        if step % 3 == 2:
            pos = data.draw(st.integers(0, tip), label="rollback pos")
            index, state = t.rollback(pos)
            assert index == state <= pos
            tip = index
        idx = t.indices()
        assert idx[0] == 0
        assert all(a < b for a, b in zip(idx, idx[1:]))
        assert all(i == s for i, s in t)
