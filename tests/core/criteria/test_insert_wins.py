"""Tests for the Insert-wins concurrent specification (Definition 10) and
its relation to SUC (Proposition 3)."""

from __future__ import annotations

from repro.core.criteria import SUC
from repro.core.criteria.insert_wins import InsertWinsSEC
from repro.core.history import History
from repro.specs import set_spec as S

IW = InsertWinsSEC()


class TestInsertWins:
    def test_fig_1b_is_insert_wins(self, h_fig_1b, set_spec):
        # The OR-set's behaviour on Fig. 1b: concurrent I/D pairs, inserts
        # win, converged state {1,2}.  Not UC — but valid insert-wins SEC.
        assert IW.check(h_fig_1b, set_spec)

    def test_fig_1a_is_not_insert_wins(self, h_fig_1a, set_spec):
        # Still fails the plain SEC pigeonhole (Def. 10 strengthens SEC).
        assert not IW.check(h_fig_1a, set_spec)

    def test_delete_after_insert_same_process_wins(self, set_spec):
        # Program order makes the delete causally after the insert: the
        # insert IS vis-before the delete, so the element must be absent.
        present = History.from_processes(
            [[S.insert(1), S.delete(1), (S.read({1}), True)]]
        )
        absent = History.from_processes(
            [[S.insert(1), S.delete(1), (S.read(set()), True)]]
        )
        assert not IW.check(present, set_spec)
        assert IW.check(absent, set_spec)

    def test_concurrent_insert_survives_delete(self, set_spec):
        # Delete on p1 concurrent with insert on p0: insert may win.
        h = History.from_processes(
            [[S.insert(1), (S.read({1}), True)], [S.delete(1), (S.read({1}), True)]]
        )
        assert IW.check(h, set_spec)

    def test_element_never_inserted_cannot_appear(self, set_spec):
        h = History.from_processes([[(S.read({7}), True)]])
        assert not IW.check(h, set_spec)

    def test_plain_read_of_inserted_element(self, set_spec):
        h = History.from_processes([[S.insert(1), (S.read({1}), True)]])
        assert IW.check(h, set_spec)

    def test_insert_visible_but_reported_absent_fails(self, set_spec):
        # ω-read sees the only insert with no delete anywhere: must be {1}.
        h = History.from_processes([[S.insert(1)], [(S.read(set()), True)]])
        assert not IW.check(h, set_spec)


class TestProposition3:
    """SUC for the set ⇒ SEC for the Insert-wins set (on the paper's own
    figures and on crafted corner cases; randomized version in the lattice
    property tests)."""

    def test_on_fig_1d(self, h_fig_1d, set_spec):
        assert SUC.check(h_fig_1d, set_spec)
        assert IW.check(h_fig_1d, set_spec)

    def test_on_concurrent_insert_delete(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), (S.read({1}), True)], [S.delete(1), (S.read({1}), True)]]
        )
        assert SUC.check(h, set_spec)
        assert IW.check(h, set_spec)

    def test_on_delete_winning_arbitration(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), (S.read(set()), True)], [S.delete(1), (S.read(set()), True)]]
        )
        assert SUC.check(h, set_spec)
        assert IW.check(h, set_spec)

    def test_on_stale_then_converged_reads(self, set_spec):
        h = History.from_processes(
            [[S.insert(1)], [S.read(set()), (S.read({1}), True)]]
        )
        assert SUC.check(h, set_spec)
        assert IW.check(h, set_spec)
