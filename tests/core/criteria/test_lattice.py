"""The criterion lattice (Proposition 2): implications hold on the paper's
figures, on crafted incomparability witnesses, and on randomized histories
(hypothesis).  This is the strongest correctness evidence for the exact
checkers: six independent implementations must never contradict the
proved implication structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.criteria import SUC, UC
from repro.core.criteria.insert_wins import InsertWinsSEC
from repro.core.criteria.lattice import CRITERIA, check_implications, classify
from repro.core.history import History
from repro.paper import FIG1_BUILDERS, fig_2
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
IW = InsertWinsSEC()


class TestImplicationsOnFigures:
    @pytest.mark.parametrize("name", list(FIG1_BUILDERS))
    def test_fig1_no_violations(self, name):
        results = classify(FIG1_BUILDERS[name](), SPEC)
        assert check_implications(results) == []

    def test_fig2_no_violations(self):
        results = classify(fig_2(), SPEC, criteria=("EC", "SEC", "UC", "PC"))
        assert check_implications(results) == []


class TestIncomparabilities:
    def test_sec_not_uc(self, h_fig_1b):
        results = classify(h_fig_1b, SPEC, criteria=("SEC", "UC"))
        assert results["SEC"].holds and not results["UC"].holds

    def test_uc_not_sec(self):
        # One process: I(1) then two contradicting reads, the last ω and
        # correct.  UC discards the garbage finite read; SEC cannot (all
        # its queries see {I(1)} yet return different values).
        h = History.from_processes(
            [[S.insert(1), S.read({2}), (S.read({1}), True)]]
        )
        results = classify(h, SPEC, criteria=("SEC", "UC"))
        assert results["UC"].holds and not results["SEC"].holds

    def test_pc_not_ec(self, h_fig_2):
        results = classify(h_fig_2, SPEC, criteria=("PC", "EC"))
        assert results["PC"].holds and not results["EC"].holds

    def test_ec_not_pc(self, h_fig_1a):
        results = classify(h_fig_1a, SPEC, criteria=("PC", "EC"))
        assert results["EC"].holds and not results["PC"].holds

    def test_suc_not_pc(self, h_fig_1d):
        results = classify(h_fig_1d, SPEC, criteria=("SUC", "PC"))
        assert results["SUC"].holds and not results["PC"].holds

    def test_set_specific_criteria_registered(self, h_fig_1b):
        results = classify(h_fig_1b, SPEC, criteria=("IW", "CC", "UC"))
        assert results["IW"].holds  # the OR-set behaviour is Def.-10 legal
        assert results["CC"].holds
        assert not results["UC"].holds


# ---------------------------------------------------------------------------
# Randomized histories
# ---------------------------------------------------------------------------

_VALUES = (1, 2)
_SUBSETS = [frozenset(), frozenset({1}), frozenset({2}), frozenset({1, 2})]


@st.composite
def small_set_histories(draw):
    """Histories of ≤ 5 events over ≤ 2 processes on support {1, 2},
    with the last event of each process possibly ω (queries only)."""
    n_proc = draw(st.integers(1, 2))
    processes = []
    total = 0
    for _ in range(n_proc):
        length = draw(st.integers(0, 3 if n_proc == 2 else 4))
        ops = []
        for i in range(length):
            total += 1
            kind = draw(st.sampled_from(["ins", "del", "read"]))
            if kind == "ins":
                ops.append(S.insert(draw(st.sampled_from(_VALUES))))
            elif kind == "del":
                ops.append(S.delete(draw(st.sampled_from(_VALUES))))
            else:
                q = S.read(draw(st.sampled_from(_SUBSETS)))
                omega = i == length - 1 and draw(st.booleans())
                ops.append((q, omega) if omega else q)
        processes.append(ops)
    return History.from_processes(processes)


class TestRandomizedLattice:
    @given(small_set_histories())
    @settings(max_examples=120, deadline=None)
    def test_proposition_2_implications(self, history):
        results = classify(history, SPEC)
        violated = check_implications(results)
        assert violated == [], f"{history.pretty()}\nviolated: {violated}"

    @given(small_set_histories())
    @settings(max_examples=60, deadline=None)
    def test_proposition_3_suc_implies_insert_wins(self, history):
        if SUC.check(history, SPEC):
            assert IW.check(history, SPEC), history.pretty()

    @given(small_set_histories())
    @settings(max_examples=60, deadline=None)
    def test_suc_implies_cache_consistency(self, history):
        """The arbitration's per-element projections are sequential: an
        SUC set is also cache consistent (the [Goodman 1991] sense) —
        consistent with the paper placing the OR-set at CC and the
        universal construction above it."""
        from repro.core.criteria.cache import CacheConsistency

        if SUC.check(history, SPEC):
            assert CacheConsistency().check(history, SPEC), history.pretty()

    def test_insert_wins_does_not_imply_cache_consistency(self):
        """Genuine finding (found by the randomized predecessor of this
        test): the paper's closing Section VI remark — the OR-set 'can be
        seen as a cache consistent set' — does *not* lift to an
        implication IW-SEC ⇒ CC over arbitrary histories.  Definition 10
        visibility carries no session constraint, so here each process
        reads the *other* process's program-order-later insert(2); cache
        consistency cannot hold, because any per-element sequential order
        must start with a read that returns 2 before any insert(2).  Real
        OR-set executions escape this: their visibility is causal (a read
        only sees delivered operations), and causal IW histories stayed
        CC in 600+ random trials.  This pins the minimal counterexample."""
        from repro.core.criteria.cache import CacheConsistency

        h = History.from_processes(
            [
                [S.read({2}), S.insert(2)],
                [S.insert(1), S.read({1, 2}), S.insert(2)],
            ]
        )
        assert IW.check(h, SPEC)
        assert not CacheConsistency().check(h, SPEC)

    @given(small_set_histories())
    @settings(max_examples=60, deadline=None)
    def test_sc_implies_everything_checked(self, history):
        results = classify(history, SPEC, criteria=("EC", "SEC", "UC", "SUC", "PC", "SC"))
        if results["SC"].holds:
            for weaker in ("EC", "SEC", "UC", "SUC", "PC"):
                assert results[weaker].holds, (history.pretty(), weaker)

    @given(small_set_histories())
    @settings(max_examples=60, deadline=None)
    def test_uc_witness_state_is_update_linearization_state(self, history):
        from repro.core.linearization import update_linearization_states

        res = UC.check(history, SPEC)
        if res.holds and res.witness is not None:
            states = update_linearization_states(history, SPEC)
            assert SPEC.canonical(res.witness["state"]) in states
