"""Tests for the Wing–Gong linearizability checker."""

from __future__ import annotations

import pytest

from repro.core.criteria.realtime import (
    TimedOperation,
    check_linearizable,
    from_trace,
    trace_linearizable,
)
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import FixedLatency
from repro.specs import RegisterSpec, SetSpec
from repro.specs import register as R
from repro.specs import set_spec as S

SET = SetSpec()
REG = RegisterSpec()


def op(label, invoked, responded, uid, pid=None):
    return TimedOperation(label, invoked, responded, pid, uid)


class TestTimedOperation:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            op(S.insert(1), 5.0, 1.0, 0)

    def test_precedence(self):
        a = op(S.insert(1), 0.0, 1.0, 0)
        b = op(S.read({1}), 2.0, 3.0, 1)
        c = op(S.read(set()), 0.5, 2.5, 2)  # overlaps both
        assert a.precedes(b)
        assert not a.precedes(c)
        assert not c.precedes(b)


class TestChecker:
    def test_sequential_valid(self):
        ops = [
            op(S.insert(1), 0, 1, 0),
            op(S.read({1}), 2, 3, 1),
        ]
        res = check_linearizable(ops, SET)
        assert res
        assert [o.uid for o in res.witness["linearization"]] == [0, 1]

    def test_sequential_stale_read_fails(self):
        ops = [
            op(S.insert(1), 0, 1, 0),
            op(S.read(set()), 2, 3, 1),  # strictly after, but stale
        ]
        assert not check_linearizable(ops, SET)

    def test_overlapping_stale_read_allowed(self):
        ops = [
            op(S.insert(1), 0, 10, 0),
            op(S.read(set()), 2, 3, 1),  # overlaps the insert: may precede
        ]
        assert check_linearizable(ops, SET)

    def test_register_new_old_new_inversion_fails(self):
        # The classic non-linearizable (even non-sequentially-consistent)
        # read inversion: new then old, strictly ordered.
        ops = [
            op(R.write("old"), 0, 1, 0),
            op(R.write("new"), 2, 3, 1),
            op(R.read("new"), 4, 5, 2),
            op(R.read("old"), 6, 7, 3),
        ]
        assert not check_linearizable(ops, REG)

    def test_concurrent_writes_any_winner(self):
        ops = [
            op(R.write("a"), 0, 5, 0),
            op(R.write("b"), 0, 5, 1),
            op(R.read("a"), 6, 7, 2),
        ]
        assert check_linearizable(ops, REG)
        ops[2] = op(R.read("b"), 6, 7, 2)
        assert check_linearizable(ops, REG)

    def test_empty_history(self):
        assert check_linearizable([], SET)

    def test_duplicate_uids_rejected(self):
        ops = [op(S.insert(1), 0, 1, 7), op(S.insert(2), 2, 3, 7)]
        with pytest.raises(ValueError, match="uid"):
            check_linearizable(ops, SET)

    def test_witness_respects_real_time(self):
        ops = [
            op(S.insert(1), 0, 1, 0),
            op(S.delete(1), 2, 3, 1),
            op(S.read(set()), 4, 5, 2),
        ]
        res = check_linearizable(ops, SET)
        lin = res.witness["linearization"]
        for i, a in enumerate(lin):
            for b in lin[i + 1:]:
                assert not b.precedes(a)


class TestTraceConversion:
    def test_from_trace_instantaneous(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SET))
        c.update(0, S.insert(1))
        ops = from_trace(c.trace)
        assert len(ops) == 1
        assert ops[0].invoked == ops[0].responded

    def test_duration_widens(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SET))
        c.update(0, S.insert(1))
        ops = from_trace(c.trace, duration=2.0)
        assert ops[0].responded == ops[0].invoked + 2.0

    def test_negative_duration_rejected(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SET))
        with pytest.raises(ValueError):
            from_trace(c.trace, duration=-1.0)


class TestTheGap:
    """Update consistency is weaker than linearizability — visible on
    real traces (the library's point, quantified)."""

    def test_stale_uc_run_not_linearizable(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SET),
                    latency=FixedLatency(10.0))
        c.update(0, S.insert(1))
        c.advance(1.0)
        c.query(1, "read")  # ∅ — strictly after the insert in real time
        c.run()
        res = trace_linearizable(c.trace, SET)
        assert not res  # linearizability rejects the stale read…

    def test_same_run_is_update_consistent(self):
        from repro.analysis import update_consistent_convergence

        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SET),
                    latency=FixedLatency(10.0))
        c.update(0, S.insert(1))
        c.advance(1.0)
        c.query(1, "read")
        c.run()
        ok, _, _ = update_consistent_convergence(c, SET)
        assert ok  # …update consistency is fine with it

    def test_widening_intervals_restores_linearizability(self):
        # If the client-visible operation spans the message delay, the
        # stale read overlaps the insert and may linearize before it.
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SET),
                    latency=FixedLatency(10.0))
        c.update(0, S.insert(1))
        c.advance(1.0)
        c.query(1, "read")
        c.run()
        assert not trace_linearizable(c.trace, SET, duration=0.5)
        assert trace_linearizable(c.trace, SET, duration=2.0)

    def test_quiescent_reads_are_linearizable(self):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SET),
                    latency=FixedLatency(1.0))
        c.update(0, S.insert(1))
        c.run()
        for pid in range(3):
            c.query(pid, "read")
        assert trace_linearizable(c.trace, SET)
