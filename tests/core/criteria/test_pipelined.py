"""Tests for pipelined consistency (Def. 7) and pipelined convergence."""

from __future__ import annotations

import pytest

from repro.core.criteria import EC, PC
from repro.core.criteria.pipelined import PipelinedConvergence
from repro.core.history import History
from repro.specs import set_spec as S


class TestPipelinedConsistency:
    def test_fig_2_is_pc(self, h_fig_2, set_spec):
        res = PC.check(h_fig_2, set_spec)
        assert res
        # One linearization per maximal chain (the paper's w1 and w2).
        assert len(res.witness["chain_linearizations"]) == 2

    def test_fig_2_chain_witnesses_are_recognized(self, h_fig_2, set_spec):
        res = PC.check(h_fig_2, set_spec)
        for chain, lin in res.witness["chain_linearizations"].items():
            sub = h_fig_2.restrict(set(h_fig_2.updates) | set(chain))
            omega_queries = [e.label for e in sub.omega_events if e.is_query]
            finite = [e.label for e in lin]
            assert set_spec.recognizes(finite)
            final = set_spec.replay(finite)
            assert all(set_spec.satisfies(final, q) for q in omega_queries)

    def test_fig_1d_is_not_pc(self, h_fig_1d, set_spec):
        # p1 reads {2} but I(1) ↦ I(2): no placement of R/{2} works.
        res = PC.check(h_fig_1d, set_spec)
        assert not res
        assert "process 1" in res.reason

    def test_fig_1a_is_not_pc(self, h_fig_1a, set_spec):
        assert not PC.check(h_fig_1a, set_spec)

    def test_single_process_pc_iff_sequentially_valid(self, set_spec):
        ok = History.from_processes([[S.insert(1), S.read({1})]])
        bad = History.from_processes([[S.insert(1), S.read(set())]])
        assert PC.check(ok, set_spec)
        assert not PC.check(bad, set_spec)

    def test_processes_may_order_concurrent_updates_differently(self, set_spec):
        # p0 sees its insert before p1's delete; p1 the other way round.
        h = History.from_processes(
            [
                [S.insert(1), S.read({1})],
                [S.delete(1), S.read(set()), S.read({1})],
            ]
        )
        assert PC.check(h, set_spec)

    def test_empty_history_is_pc(self, set_spec):
        assert PC.check(History([]), set_spec)

    def test_updates_only_history_is_pc(self, set_spec):
        h = History.from_processes([[S.insert(1)], [S.delete(1)]])
        assert PC.check(h, set_spec)

    def test_omega_updates_unsupported(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)], [S.read(set())]])
        with pytest.raises(NotImplementedError):
            PC.check(h, set_spec)

    def test_own_updates_cannot_be_reordered(self, set_spec):
        # A process must respect its *own* program order.
        h = History.from_processes([[S.insert(1), S.delete(1), S.read({1})]])
        assert not PC.check(h, set_spec)


class TestPipelinedConvergence:
    def test_fig_2_pc_but_not_convergent(self, h_fig_2, set_spec):
        res = PipelinedConvergence().check(h_fig_2, set_spec)
        assert not res
        assert "EC fails" in res.reason

    def test_fig_1a_ec_but_not_pc(self, h_fig_1a, set_spec):
        res = PipelinedConvergence().check(h_fig_1a, set_spec)
        assert not res
        assert "PC fails" in res.reason

    def test_compatible_history_satisfies_both(self, set_spec):
        h = History.from_processes(
            [
                [S.insert(1), (S.read({1, 2}), True)],
                [S.insert(2), (S.read({1, 2}), True)],
            ]
        )
        res = PipelinedConvergence().check(h, set_spec)
        assert res
        assert EC.check(h, set_spec)
        assert PC.check(h, set_spec)
