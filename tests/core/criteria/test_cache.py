"""Tests for per-element cache consistency (the [Goodman 1991] reading)."""

from __future__ import annotations

import pytest

from repro.core.criteria import SC, UC
from repro.core.criteria.cache import CacheConsistency
from repro.core.history import History
from repro.specs import set_spec as S

CC = CacheConsistency()


class TestCacheConsistency:
    def test_or_set_outcome_on_fig_1b_is_cache_consistent(self, set_spec):
        """The paper's closing remark: the OR-set behaviour ({1,2} after
        concurrent I(1).D(2) || I(2).D(1)) is cache consistent — each
        element separately linearizes with its insert last — while no
        global update linearization explains it (not UC)."""
        h = History.from_processes(
            [
                [S.insert(1), S.delete(2), (S.read({1, 2}), True)],
                [S.insert(2), S.delete(1), (S.read({1, 2}), True)],
            ]
        )
        assert CC.check(h, set_spec)
        assert not UC.check(h, set_spec)

    def test_fig_1a_is_not_cache_consistent(self, h_fig_1a, set_spec):
        # p0 reads 1 as absent right after inserting it, with no delete
        # anywhere: element 1's projection has no sequential explanation.
        assert not CC.check(h_fig_1a, set_spec)

    def test_sequentially_consistent_implies_cache_consistent(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), S.read({1})], [S.read(set())]]
        )
        assert SC.check(h, set_spec)
        assert CC.check(h, set_spec)

    def test_elements_may_disagree_on_order(self, set_spec):
        # p0 sees its insert of 1 before p1's of 2; p1 the other way:
        # fine per element (each element's own history is trivial).
        h = History.from_processes(
            [
                [S.insert(1), S.read({1}), (S.read({1, 2}), True)],
                [S.insert(2), S.read({2}), (S.read({1, 2}), True)],
            ]
        )
        assert CC.check(h, set_spec)

    def test_per_element_violation_detected(self, set_spec):
        # Same process: insert 1, then read it absent — forever.
        h = History.from_processes([[S.insert(1), (S.read(set()), True)]])
        res = CC.check(h, set_spec)
        assert not res
        assert "element 1" in res.reason

    def test_contains_queries_supported(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), S.contains(1, True), S.contains(2, False)]]
        )
        assert CC.check(h, set_spec)

    def test_witness_linearizations_per_element(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), S.read({1})], [S.insert(2)]]
        )
        res = CC.check(h, set_spec)
        lins = res.witness["element_linearizations"]
        assert set(lins) == {1, 2}
        for v, lin in lins.items():
            word = [e.label for e in lin]
            assert set_spec.recognizes(word)

    def test_empty_history(self, set_spec):
        assert CC.check(History([]), set_spec)

    def test_non_set_vocabulary_rejected(self, set_spec):
        from repro.core.adt import Update

        h = History.from_processes([[Update("push", (1,))]])
        with pytest.raises(ValueError, match="set histories"):
            CC.check(h, set_spec)

    def test_omega_updates_unsupported(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)]])
        with pytest.raises(NotImplementedError):
            CC.check(h, set_spec)

    def test_or_set_simulated_trace_is_cache_consistent(self, set_spec):
        """End to end: the OR-set run on the Fig. 1b gadget produces a
        history that is CC (and, from the earlier case study, not UC)."""
        from tests.integration.test_proposition1 import flag_final_reads_omega

        from repro.crdt import ORSetReplica
        from repro.sim import Cluster

        c = Cluster(2, lambda pid, n: ORSetReplica(pid, n))
        c.partition([[0], [1]])
        c.update(0, S.insert(1))
        c.update(0, S.delete(2))
        c.update(1, S.insert(2))
        c.update(1, S.delete(1))
        c.heal()
        c.run()
        c.query(0, "read")
        c.query(1, "read")
        h = flag_final_reads_omega(c)
        assert CC.check(h, set_spec)
