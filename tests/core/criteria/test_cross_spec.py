"""The criteria are spec-generic: exercise them over non-set UQ-ADTs.

The paper proves universality for *any* UQ-ADT; these tests make sure the
checkers (not just the algorithms) handle the whole spec zoo — flags,
counters, queues, logs, maps — including each spec's own conflict shape.
"""

from __future__ import annotations

from repro.core.criteria import EC, PC, SC, SEC, SUC, UC
from repro.core.criteria.lattice import check_implications, classify
from repro.core.history import History
from repro.specs import (
    CounterSpec,
    FlagSpec,
    LogSpec,
    MapSpec,
    QueueSpec,
)
from repro.specs import counter as C
from repro.specs import log_spec as L
from repro.specs import map_spec as Mp
from repro.specs import queue_spec as Q
from repro.specs.flag import disable, enable
from repro.specs.flag import read as fread


class TestFlag:
    def test_concurrent_enable_disable_any_winner(self):
        spec = FlagSpec()
        up = History.from_processes(
            [[enable(), (fread(True), True)], [disable(), (fread(True), True)]]
        )
        down = History.from_processes(
            [[enable(), (fread(False), True)], [disable(), (fread(False), True)]]
        )
        assert UC.check(up, spec)
        assert UC.check(down, spec)

    def test_split_brain_flag_not_uc(self):
        spec = FlagSpec()
        h = History.from_processes(
            [[enable(), (fread(True), True)], [disable(), (fread(False), True)]]
        )
        assert not UC.check(h, spec)
        assert not EC.check(h, spec)

    def test_suc_flag_with_stale_read(self):
        spec = FlagSpec()
        h = History.from_processes(
            [[enable()], [fread(False), (fread(True), True)]]
        )
        assert SUC.check(h, spec)
        # Here even SC holds: the stale read places before the enable.
        assert SC.check(h, spec)

    def test_lattice_holds_for_flag_histories(self):
        spec = FlagSpec()
        h = History.from_processes(
            [[enable(), (fread(True), True)], [(fread(True), True)]]
        )
        results = classify(h, spec)
        assert check_implications(results) == []


class TestCounter:
    def test_commutativity_makes_most_histories_uc(self):
        spec = CounterSpec()
        h = History.from_processes(
            [[C.inc(2), (C.read(5), True)], [C.inc(3), (C.read(5), True)]]
        )
        assert UC.check(h, spec)
        assert SUC.check(h, spec)
        assert PC.check(h, spec)

    def test_wrong_total_rejected_everywhere(self):
        spec = CounterSpec()
        h = History.from_processes(
            [[C.inc(2), (C.read(4), True)], [C.inc(3), (C.read(4), True)]]
        )
        # 4 is not reachable from {+2, +3}: every update linearization
        # totals 5.
        assert not UC.check(h, spec)
        assert EC.check(h, spec)  # EC doesn't care about reachability!

    def test_partial_sums_explain_stale_reads(self):
        spec = CounterSpec()
        h = History.from_processes(
            [[C.inc(2)], [C.read(0), C.read(2), (C.read(5), True)], [C.inc(3)]]
        )
        assert SUC.check(h, spec)


class TestQueue:
    def test_fifo_order_enforced_by_uc(self):
        spec = QueueSpec()
        good = History.from_processes(
            [[Q.enqueue("a")], [Q.enqueue("b"), (Q.front("a"), True)]]
        )
        # "a" at the front is explained by the linearization a-then-b.
        assert UC.check(good, spec)
        bad = History.from_processes(
            [
                [Q.enqueue("a"), Q.pop(), (Q.front("a"), True)],
                [(Q.front("a"), True)],
            ]
        )
        # After a's pop... front can only be "a" if b? no b: must be EMPTY.
        assert not UC.check(bad, spec)

    def test_sec_queue_groups(self):
        spec = QueueSpec()
        h = History.from_processes(
            [[Q.enqueue("a"), (Q.front("a"), True)], [(Q.front("a"), True)]]
        )
        assert SEC.check(h, spec)


class TestLog:
    def test_interleaving_must_respect_author_order(self):
        spec = LogSpec()
        good = History.from_processes(
            [
                [L.append("x1"), L.append("x2"), (L.read(("x1", "y", "x2")), True)],
                [L.append("y"), (L.read(("x1", "y", "x2")), True)],
            ]
        )
        bad = History.from_processes(
            [
                [L.append("x1"), L.append("x2"), (L.read(("x2", "x1")), True)],
                [(L.read(("x2", "x1")), True)],
            ]
        )
        assert UC.check(good, spec)
        assert not UC.check(bad, spec)

    def test_pc_log(self):
        spec = LogSpec()
        h = History.from_processes(
            [
                [L.append("a"), L.read(("a",))],
                [L.append("b"), L.read(("b", "a"))],
            ]
        )
        assert PC.check(h, spec)


class TestMap:
    def test_key_conflict_resolved_by_arbitration(self):
        spec = MapSpec()
        h = History.from_processes(
            [
                [Mp.put("k", 1), (Mp.get("k", 2), True)],
                [Mp.put("k", 2), (Mp.get("k", 2), True)],
            ]
        )
        assert UC.check(h, spec)
        assert SUC.check(h, spec)

    def test_remove_then_concurrent_put(self):
        spec = MapSpec()
        h = History.from_processes(
            [
                [Mp.put("k", 1), Mp.remove("k"), (Mp.get("k", Mp.ABSENT), True)],
                [(Mp.get("k", Mp.ABSENT), True)],
            ]
        )
        assert UC.check(h, spec)

    def test_split_brain_map_not_ec(self):
        spec = MapSpec()
        h = History.from_processes(
            [
                [Mp.put("k", 1), (Mp.get("k", 1), True)],
                [Mp.put("k", 2), (Mp.get("k", 2), True)],
            ]
        )
        assert not EC.check(h, spec)
