"""Direct unit tests for the shared visibility-search machinery."""

from __future__ import annotations

import pytest

from repro.core.criteria.base import VisibilityProblem
from repro.core.history import History
from repro.specs import set_spec as S


def h_two_proc():
    """p0: I(1) . R/{1}   p1: I(2) . R/{1,2}^ω"""
    return History.from_processes(
        [[S.insert(1), S.read({1})], [S.insert(2), (S.read({1, 2}), True)]]
    )


class TestBuild:
    def test_mandatory_includes_po_ancestors(self):
        h = h_two_proc()
        problem = VisibilityProblem.build(h)
        i1, q1, i2, q2 = h.events
        assert i1 in problem.mandatory[q1]
        assert i2 not in problem.mandatory[q1]

    def test_omega_queries_mandatorily_see_everything(self):
        h = h_two_proc()
        problem = VisibilityProblem.build(h)
        q_omega = h.events[3]
        assert problem.mandatory[q_omega] == frozenset(h.updates)

    def test_forbidden_contains_po_descendants(self):
        h = History.from_processes([[S.read(set()), S.insert(1)]])
        problem = VisibilityProblem.build(h)
        q, u = h.events
        assert u in problem.forbidden[q]

    def test_query_preds_couples_same_chain_queries(self):
        h = History.from_processes(
            [[S.read(set()), S.insert(1), S.read({1})]]
        )
        problem = VisibilityProblem.build(h)
        q1, _, q2 = h.events
        assert problem.query_preds[q2] == (q1,)
        assert problem.query_preds[q1] == ()

    def test_omega_updates_rejected(self):
        h = History.from_processes([[(S.insert(1), True)]])
        with pytest.raises(NotImplementedError):
            VisibilityProblem.build(h)


class TestAssignments:
    def test_enumerates_supersets_of_mandatory(self):
        h = h_two_proc()
        problem = VisibilityProblem.build(h)
        i1, q1, i2, q_omega = h.events
        seen_q1 = set()
        for assignment in problem.assignments():
            assert i1 in assignment[q1]
            assert assignment[q_omega] == frozenset({i1, i2})
            seen_q1.add(assignment[q1])
        # q1 may or may not see the remote insert: exactly two options.
        assert seen_q1 == {frozenset({i1}), frozenset({i1, i2})}

    def test_monotonicity_along_process(self):
        h = History.from_processes(
            [[S.read(set()), S.read(set())], [S.insert(1)]]
        )
        problem = VisibilityProblem.build(h)
        q1, q2, u = h.events
        for assignment in problem.assignments():
            assert assignment[q1] <= assignment[q2]

    def test_admissible_prunes(self):
        h = h_two_proc()
        problem = VisibilityProblem.build(h)
        i2 = h.events[2]

        def no_remote(q, vis, partial):
            return i2 not in vis or q.omega

        kept = list(problem.assignments(admissible=no_remote))
        # q1's remote-including option is pruned; only one assignment left.
        assert len(kept) == 1

    def test_forbidden_monotonicity_dead_end(self):
        # A query followed (po) by an update, preceded by a query that must
        # see it — impossible: the dead-end is detected, zero assignments.
        h = History.from_processes([[S.insert(1), S.read({1}), S.read(set())]])
        # Here q2 must see I(1) (mandatory ancestor) — fine; craft real
        # dead-end instead: q1 sees u (mandatory), q2 po-after q1 but u
        # forbidden for q2 cannot happen in per-process histories, so just
        # assert assignments exist and respect structure.
        problem = VisibilityProblem.build(h)
        assert list(problem.assignments())

    def test_empty_history(self):
        problem = VisibilityProblem.build(History([]))
        assert list(problem.assignments()) == [{}]
