"""Tests for the session-guarantee checkers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.criteria.sessions import (
    check_all_sessions,
    monotonic_reads,
    monotonic_writes,
    read_your_writes,
    writes_follow_reads,
)
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.cluster import OpRecord, Trace
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def synthetic_trace(records):
    t = Trace()
    for i, (pid, label, meta) in enumerate(records):
        t.append(OpRecord(i, pid, label, float(i), meta))
    return t


class TestAlgorithm1SatisfiesAll:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_four_guarantees(self, seed):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC),
                    latency=ExponentialLatency(6.0), seed=seed)
        import numpy as np

        rng = np.random.default_rng(seed)
        for i in range(30):
            pid = int(rng.integers(3))
            if rng.random() < 0.4:
                c.query(pid, "read")
            else:
                v = int(rng.integers(5))
                c.update(pid, S.insert(v) if rng.random() < 0.6 else S.delete(v))
            if rng.random() < 0.3:
                c.run_until(c.now + 1.0)
        c.run()
        results = check_all_sessions(c.trace)
        for name, res in results.items():
            assert res, (name, res.reason)


class TestViolationsDetected:
    def test_ryw_violation(self):
        # p0 updates (stamp (1,0)) then queries without seeing it.
        t = synthetic_trace([
            (0, S.insert(1), {"timestamp": (1, 0)}),
            (0, S.read(set()), {"timestamp": (2, 0), "visible": frozenset()}),
        ])
        res = read_your_writes(t)
        assert not res and "misses own updates" in res.reason

    def test_mr_violation(self):
        t = synthetic_trace([
            (1, S.insert(1), {"timestamp": (1, 1)}),
            (0, S.read({1}), {"timestamp": (2, 0), "visible": frozenset({(1, 1)})}),
            (0, S.read(set()), {"timestamp": (3, 0), "visible": frozenset()}),
        ])
        res = monotonic_reads(t)
        assert not res and "lost updates" in res.reason

    def test_mw_violation(self):
        t = synthetic_trace([
            (0, S.insert(1), {"timestamp": (5, 0)}),
            (0, S.insert(2), {"timestamp": (3, 0)}),  # stamped earlier!
        ])
        res = monotonic_writes(t)
        assert not res and "before" in res.reason

    def test_wfr_violation(self):
        t = synthetic_trace([
            (1, S.insert(1), {"timestamp": (9, 1)}),
            (0, S.read({1}), {"timestamp": (10, 0), "visible": frozenset({(9, 1)})}),
            (0, S.insert(2), {"timestamp": (4, 0)}),  # ordered before the read dep
        ])
        res = writes_follow_reads(t)
        assert not res and "dependency" in res.reason

    def test_all_pass_on_clean_trace(self):
        t = synthetic_trace([
            (0, S.insert(1), {"timestamp": (1, 0)}),
            (0, S.read({1}), {"timestamp": (2, 0), "visible": frozenset({(1, 0)})}),
            (0, S.insert(2), {"timestamp": (3, 0)}),
        ])
        assert all(check_all_sessions(t).values())

    def test_missing_metadata_raises(self):
        t = synthetic_trace([(0, S.insert(1), {})])
        with pytest.raises(ValueError, match="timestamp"):
            read_your_writes(t)

    def test_missing_visibility_raises(self):
        t = synthetic_trace([
            (0, S.read(set()), {"timestamp": (1, 0)}),
        ])
        with pytest.raises(ValueError, match="visibility"):
            monotonic_reads(t)
