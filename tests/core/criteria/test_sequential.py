"""Tests for the sequential-consistency checker."""

from __future__ import annotations

import pytest

from repro.core.criteria import SC, SUC
from repro.core.history import History
from repro.specs import set_spec as S


class TestSequentialConsistency:
    def test_simple_valid_history(self, set_spec):
        h = History.from_processes([[S.insert(1)], [S.read({1}), S.read({1})]])
        assert SC.check(h, set_spec)

    def test_all_queries_must_be_placed(self, set_spec):
        # Unlike UC, a nonsense finite read sinks SC.
        h = History.from_processes([[S.insert(1), S.read({9})]])
        assert not SC.check(h, set_spec)

    def test_fig_1d_is_not_sc(self, h_fig_1d, set_spec):
        # R/{2} cannot be placed: I(1) ↦ I(2) forces {1} before {1,2}.
        assert not SC.check(h_fig_1d, set_spec)
        # ...yet it is SUC: sequential consistency is strictly stronger.
        assert SUC.check(h_fig_1d, set_spec)

    def test_stale_read_placeable_before_update(self, set_spec):
        h = History.from_processes([[S.insert(1)], [S.read(set())]])
        assert SC.check(h, set_spec)

    def test_witness_is_a_recognized_linearization(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({1})], [S.read(set())]])
        res = SC.check(h, set_spec)
        assert res
        lin = res.witness["linearization"]
        assert set_spec.recognizes([e.label for e in lin])

    def test_omega_queries_constrain_final_state(self, set_spec):
        h = History.from_processes(
            [[S.insert(1), (S.read({1}), True)], [(S.read({1}), True)]]
        )
        assert SC.check(h, set_spec)

    def test_omega_updates_unsupported(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)]])
        with pytest.raises(NotImplementedError):
            SC.check(h, set_spec)
