"""Tests for polynomial SUC witness verification (Proposition 4's shape)."""

from __future__ import annotations

import pytest

from repro.core.criteria.witness import (
    SUCWitness,
    arbitration_from_timestamps,
    verify_suc_witness,
)
from repro.core.history import Event, History
from repro.specs import set_spec as S


def make_history():
    """p0: I(1) . R/{1}   p1: I(2)"""
    return History.from_processes(
        [[S.insert(1), S.read({1})], [S.insert(2)]]
    )


def good_witness(h):
    i1, r, i2 = h.events
    return SUCWitness(order=(i1, r, i2), visibility={r: frozenset({i1})})


class TestVerify:
    def test_valid_witness_accepted(self, set_spec):
        h = make_history()
        assert verify_suc_witness(h, set_spec, good_witness(h))

    def test_order_must_enumerate_events(self, set_spec):
        h = make_history()
        i1, r, i2 = h.events
        w = SUCWitness(order=(i1, r), visibility={r: frozenset({i1})})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "enumerate" in res.reason

    def test_order_must_extend_program_order(self, set_spec):
        h = make_history()
        i1, r, i2 = h.events
        w = SUCWitness(order=(r, i1, i2), visibility={r: frozenset({i1})})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "program order" in res.reason

    def test_visibility_must_contain_program_order(self, set_spec):
        h = make_history()
        i1, r, i2 = h.events
        w = SUCWitness(order=(i1, r, i2), visibility={r: frozenset()})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "misses program order" in res.reason

    def test_visibility_must_precede_in_arbitration(self, set_spec):
        h = make_history()
        i1, r, i2 = h.events
        w = SUCWitness(order=(i1, r, i2), visibility={r: frozenset({i1, i2})})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "arbitration" in res.reason

    def test_replay_must_explain_output(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({2})]])
        i1, r = h.events
        w = SUCWitness(order=(i1, r), visibility={r: frozenset({i1})})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "convergence" in res.reason

    def test_growth_between_queries_enforced(self, set_spec):
        h = History.from_processes(
            [[S.insert(1)], [S.read({1}), S.read({1})]]
        )
        i1, q1, q2 = h.events
        w = SUCWitness(
            order=(i1, q1, q2),
            visibility={q1: frozenset({i1}), q2: frozenset()},
        )
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "growth" in res.reason

    def test_omega_query_must_see_all_updates(self, set_spec):
        h = History.from_processes([[S.insert(1)], [(S.read(set()), True)]])
        i1, q = h.events
        w = SUCWitness(order=(i1, q), visibility={q: frozenset()})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "delivery" in res.reason

    def test_non_update_in_visibility_rejected(self, set_spec):
        h = make_history()
        i1, r, i2 = h.events
        w = SUCWitness(order=(i1, r, i2), visibility={r: frozenset({i1, r})})
        res = verify_suc_witness(h, set_spec, w)
        assert not res and "non-update" in res.reason


class TestArbitrationFromTimestamps:
    def test_sorts_by_stamp(self, set_spec):
        h = make_history()
        i1, r, i2 = h.events
        stamps = {i1: (1, 0), r: (2, 0), i2: (1, 1)}
        order = arbitration_from_timestamps(h, stamps)
        assert order == (i1, i2, r)

    def test_duplicate_stamps_rejected(self):
        h = make_history()
        i1, r, i2 = h.events
        stamps = {i1: (1, 0), r: (1, 0), i2: (2, 1)}
        with pytest.raises(ValueError, match="duplicate"):
            arbitration_from_timestamps(h, stamps)
