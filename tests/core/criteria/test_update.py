"""Tests for update consistency (Def. 8) and strong update consistency
(Def. 9) — the paper's new criteria."""

from __future__ import annotations

from repro.core.criteria import SUC, UC
from repro.core.history import History
from repro.specs import register as R
from repro.specs import set_spec as S


class TestUpdateConsistency:
    def test_fig_1a_is_not_uc(self, h_fig_1a, set_spec):
        # No linearization of I(1), I(2) ends at ∅.
        assert not UC.check(h_fig_1a, set_spec)

    def test_fig_1b_is_not_uc(self, h_fig_1b, set_spec):
        # Any update linearization ends with a deletion — {1,2} unreachable.
        assert not UC.check(h_fig_1b, set_spec)

    def test_fig_1c_is_uc(self, h_fig_1c, set_spec):
        res = UC.check(h_fig_1c, set_spec)
        assert res
        assert res.witness["state"] == frozenset({1, 2})
        lin = [e.label for e in res.witness["linearization"]]
        assert set(lin) >= {S.insert(1), S.insert(2)}

    def test_fig_1d_is_uc(self, h_fig_1d, set_spec):
        assert UC.check(h_fig_1d, set_spec)

    def test_fig_2_is_not_uc(self, h_fig_2, set_spec):
        # UC implies EC (Prop. 2); Fig. 2 is not EC.
        assert not UC.check(h_fig_2, set_spec)

    def test_uc_respects_program_order_of_updates(self, set_spec):
        # Same process inserts then deletes: ω-read {1} cannot hold.
        h = History.from_processes([[S.insert(1), S.delete(1), (S.read({1}), True)]])
        assert not UC.check(h, set_spec)
        # Concurrent from two processes: the insert may be ordered last.
        h2 = History.from_processes(
            [[S.insert(1), (S.read({1}), True)], [S.delete(1), (S.read({1}), True)]]
        )
        assert UC.check(h2, set_spec)

    def test_finite_queries_are_discardable(self, set_spec):
        # Nonsense finite reads do not break UC (they land in Q').
        h = History.from_processes(
            [[S.insert(1), S.read({9, 9}), (S.read({1}), True)]]
        )
        assert UC.check(h, set_spec)

    def test_history_without_omega_is_trivially_uc(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({77})]])
        assert UC.check(h, set_spec)

    def test_infinite_updates_vacuously_uc(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)], [(S.read(set()), True)]])
        assert UC.check(h, set_spec)

    def test_uc_register_example(self, register_spec):
        # Two concurrent writes: either may win, but both replicas must
        # agree — split-brain ω-reads are not UC.
        agree = History.from_processes(
            [[R.write("a"), (R.read("b"), True)], [R.write("b"), (R.read("b"), True)]]
        )
        split = History.from_processes(
            [[R.write("a"), (R.read("a"), True)], [R.write("b"), (R.read("b"), True)]]
        )
        assert UC.check(agree, register_spec)
        assert not UC.check(split, register_spec)


class TestStrongUpdateConsistency:
    def test_fig_1a_is_not_suc(self, h_fig_1a, set_spec):
        assert not SUC.check(h_fig_1a, set_spec)

    def test_fig_1b_is_not_suc(self, h_fig_1b, set_spec):
        assert not SUC.check(h_fig_1b, set_spec)

    def test_fig_1c_is_not_suc(self, h_fig_1c, set_spec):
        # The paper: after I(1), no update linearization explains R/∅.
        assert not SUC.check(h_fig_1c, set_spec)

    def test_fig_1d_is_suc(self, h_fig_1d, set_spec):
        res = SUC.check(h_fig_1d, set_spec)
        assert res
        order = res.witness["order"]
        vis = res.witness["visibility"]
        # The arbitration is a linear extension of the program order.
        pos = {e: i for i, e in enumerate(order)}
        for a in h_fig_1d.events:
            for b in h_fig_1d.events:
                if a is not b and h_fig_1d.precedes(a, b):
                    assert pos[a] < pos[b]
        # Every query's replay of its visible updates explains its output.
        for q, v in vis.items():
            word = [u.label for u in sorted(v, key=pos.__getitem__)] + [q.label]
            assert set_spec.recognizes(word)

    def test_suc_implies_every_query_locally_explained(self, set_spec):
        # R/{2} with only I(1) in the history: no visibility set works.
        h = History.from_processes([[S.insert(1)], [S.read({2})]])
        assert not SUC.check(h, set_spec)

    def test_stale_reads_are_fine(self, set_spec):
        # Reading ∅ while a remote insert is in flight is the whole point.
        h = History.from_processes([[S.insert(1)], [S.read(set()), S.read({1})]])
        assert SUC.check(h, set_spec)

    def test_growth_constrains_same_process_queries(self, set_spec):
        # Once p1 saw I(1), it cannot unsee it.
        h = History.from_processes([[S.insert(1)], [S.read({1}), S.read(set())]])
        assert not SUC.check(h, set_spec)

    def test_visibility_must_embed_in_one_total_order(self, set_spec):
        # Two processes may see concurrent updates in different orders
        # transiently... but their *last* (ω) reads agree, and intermediate
        # single-element reads are explainable by prefixes of ≤ only if
        # some total order serves both: I(1) < I(2) explains R/{1} then
        # {1,2}; R/{2} is the prefix {I(2)} — needs I(2) alone visible,
        # allowed since I(2) < R/{2} is satisfiable... overall SUC holds
        # (this is exactly Fig. 1d's shape).
        h = History.from_processes(
            [
                [S.insert(1), S.read({1}), (S.read({1, 2}), True)],
                [S.insert(2), S.read({2}), (S.read({1, 2}), True)],
            ]
        )
        assert SUC.check(h, set_spec)

    def test_conflicting_final_states_not_suc(self, register_spec):
        h = History.from_processes(
            [
                [R.write("a"), (R.read("a"), True)],
                [R.write("b"), (R.read("b"), True)],
            ]
        )
        assert not SUC.check(h, register_spec)

    def test_empty_history_is_suc(self, set_spec):
        assert SUC.check(History([]), set_spec)

    def test_updates_only_history_is_suc(self, set_spec):
        h = History.from_processes([[S.insert(1), S.delete(2)], [S.insert(2)]])
        assert SUC.check(h, set_spec)
