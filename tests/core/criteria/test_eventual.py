"""Tests for eventual consistency (Def. 5) and strong eventual consistency
(Def. 6), anchored on the paper's figures."""

from __future__ import annotations

import pytest

from repro.core.criteria import EC, SEC
from repro.core.history import History
from repro.specs import set_spec as S


class TestEventualConsistency:
    def test_fig_1a_is_ec(self, h_fig_1a, set_spec):
        # Converges to ∅ — EC does not ask the state to be reachable.
        res = EC.check(h_fig_1a, set_spec)
        assert res
        assert res.witness["state"] == frozenset()

    def test_fig_1b_is_ec(self, h_fig_1b, set_spec):
        res = EC.check(h_fig_1b, set_spec)
        assert res
        assert res.witness["state"] == frozenset({1, 2})

    def test_fig_1c_is_ec(self, h_fig_1c, set_spec):
        assert EC.check(h_fig_1c, set_spec)

    def test_fig_1d_is_ec(self, h_fig_1d, set_spec):
        assert EC.check(h_fig_1d, set_spec)

    def test_fig_2_is_not_ec(self, h_fig_2, set_spec):
        # p0 stabilizes on {1,2}, p1 on {1,2,3}: no common state.
        res = EC.check(h_fig_2, set_spec)
        assert not res
        assert "ω-queries" in res.reason

    def test_infinite_updates_vacuously_ec(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)], [(S.read(set()), True)]])
        assert EC.check(h, set_spec)

    def test_finite_queries_never_constrain_ec(self, set_spec):
        # Arbitrary garbage finite reads are a "finite set of queries".
        h = History.from_processes(
            [[S.insert(1), S.read({7}), S.read({8, 9}), (S.read({1}), True)]]
        )
        assert EC.check(h, set_spec)

    def test_history_without_omega_is_trivially_ec(self, set_spec):
        h = History.from_processes([[S.insert(1), S.read({42})]])
        assert EC.check(h, set_spec)

    def test_contradictory_omega_contains_fail(self, set_spec):
        h = History.from_processes(
            [[(S.contains(1, True), True)], [(S.contains(1, False), True)]]
        )
        assert not EC.check(h, set_spec)

    def test_compatible_omega_contains_hold(self, set_spec):
        h = History.from_processes(
            [[(S.contains(1, True), True)], [(S.contains(2, False), True)]]
        )
        res = EC.check(h, set_spec)
        assert res
        assert res.witness["state"] == frozenset({1})


class TestStrongEventualConsistency:
    def test_fig_1a_is_not_sec(self, h_fig_1a, set_spec):
        # The paper's pigeonhole: p0's three distinct reads admit only two
        # visibility sets.
        assert not SEC.check(h_fig_1a, set_spec)

    def test_fig_1b_is_sec(self, h_fig_1b, set_spec):
        assert SEC.check(h_fig_1b, set_spec)

    def test_fig_1c_is_sec(self, h_fig_1c, set_spec):
        res = SEC.check(h_fig_1c, set_spec)
        assert res
        # The paper's explanation: replicas seeing {I(1)} are in state ∅,
        # those seeing {I(1), I(2)} in {1, 2}.
        states = set(res.witness["group_states"].values())
        assert frozenset({1, 2}) in states

    def test_fig_1d_is_sec(self, h_fig_1d, set_spec):
        assert SEC.check(h_fig_1d, set_spec)

    def test_empty_history_is_sec(self, set_spec):
        assert SEC.check(History([]), set_spec)

    def test_updates_only_history_is_sec(self, set_spec):
        h = History.from_processes([[S.insert(1)], [S.delete(1)]])
        assert SEC.check(h, set_spec)

    def test_program_order_updates_are_mandatorily_visible(self, set_spec):
        # A process reading ∅ after its own insert is not SEC-explainable
        # even though EC tolerates it... but note SEC lets the group choose
        # ANY state, so a single such query IS explainable (state ∅ chosen
        # for the {I(1)} group).  Two same-process queries with different
        # outputs and no new updates in between are not.
        h = History.from_processes([[S.insert(1), S.read(set()), S.read({5})]])
        assert not SEC.check(h, set_spec)

    def test_same_visibility_different_outputs_fails(self, set_spec):
        # One process, one update, two contradicting reads after it; the
        # only available visibility sets are {I(1)} twice (growth) — but
        # wait, both reads must see I(1), and there are no other updates,
        # so both queries share a group and cannot disagree.
        h = History.from_processes([[S.insert(1), S.read({1}), S.read({2})]])
        assert not SEC.check(h, set_spec)

    def test_ignoring_all_updates_is_sec(self, set_spec):
        # The degenerate implementation the paper calls out: answering the
        # initial state forever is strong eventually consistent...
        h = History.from_processes([[S.insert(1), S.read(set()), S.read(set())]])
        assert SEC.check(h, set_spec)

    def test_but_ignoring_updates_fails_with_omega(self, set_spec):
        # ...unless the queries are ω: eventual delivery then forces the
        # updates into view, and ∅ with I(1) visible is fine for SEC since
        # the group state is unconstrained by the spec's transitions.
        h = History.from_processes([[S.insert(1), (S.read(set()), True)]])
        assert SEC.check(h, set_spec)

    def test_omega_queries_see_everything(self, set_spec):
        # Two ω-queries disagreeing can never be SEC (same full visibility).
        h = History.from_processes(
            [[S.insert(1), (S.read({1}), True)], [(S.read(set()), True)]]
        )
        assert not SEC.check(h, set_spec)

    def test_omega_updates_unsupported(self, set_spec):
        h = History.from_processes([[(S.insert(1), True)]])
        with pytest.raises(NotImplementedError):
            SEC.check(h, set_spec)

    def test_sec_witness_structure(self, h_fig_1b, set_spec):
        res = SEC.check(h_fig_1b, set_spec)
        vis = res.witness["visibility"]
        h = h_fig_1b
        for q in h.queries:
            assert q in vis
            # Mandatory: own-process updates visible.
            for u in h.updates:
                if h.precedes(u, q):
                    assert u in vis[q]
            if q.omega:
                assert vis[q] == frozenset(h.updates)
