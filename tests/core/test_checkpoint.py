"""Tests for the checkpointed replica and stable-prefix GC (Section VII-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import (
    CheckpointedReplica,
    GarbageCollectedReplica,
    StabilityViolation,
)
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import conflict_heavy_set_workload, run_workload
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def ckpt_cluster(n=3, interval=4, **kw):
    return Cluster(
        n,
        lambda pid, total: CheckpointedReplica(
            pid, total, SPEC, checkpoint_interval=interval
        ),
        **kw,
    )


class TestCheckpointedReplica:
    def test_basic_query(self):
        c = ckpt_cluster()
        c.update(0, S.insert(1))
        assert c.query(0, "read") == frozenset({1})

    def test_incremental_replay_cost(self):
        c = ckpt_cluster(n=1)
        r = c.replicas[0]
        for i in range(10):
            c.update(0, S.insert(i))
        c.query(0, "read")
        first = r.replayed_updates
        c.query(0, "read")  # nothing new arrived: zero additional work
        assert r.replayed_updates == first == 10

    def test_naive_replica_pays_full_replay(self):
        c = Cluster(1, lambda pid, n: UniversalReplica(pid, n, SPEC))
        r = c.replicas[0]
        for i in range(10):
            c.update(0, S.insert(i))
        c.query(0, "read")
        c.query(0, "read")
        assert r.replayed_updates == 20

    def test_late_message_triggers_rollback(self):
        c = ckpt_cluster(n=2, interval=2, latency=ExponentialLatency(10.0), seed=21)
        c.update(1, S.insert(99))  # low timestamp, delivered late
        for i in range(6):
            c.update(0, S.insert(i))
        c.query(0, "read")  # replica 0 caches its own 6 updates
        c.run()  # now the (1, pid=1) update lands below the cache
        assert c.replicas[0].rollbacks >= 1
        assert c.query(0, "read") == frozenset({0, 1, 2, 3, 4, 5, 99})

    def test_rollback_uses_nearest_checkpoint(self):
        c = ckpt_cluster(n=2, interval=2, latency=ExponentialLatency(10.0), seed=21)
        c.update(1, S.insert(99))
        for i in range(6):
            c.update(0, S.insert(i))
        c.query(0, "read")
        r0 = c.replicas[0]
        before = r0.replayed_updates
        c.run()
        c.query(0, "read")
        # Rolling back to a checkpoint replays far fewer than everything:
        # the late update has timestamp (1,1), below all 6 local ones, so
        # the replica falls back to the base checkpoint — 7 replays, not
        # 7 + history.
        assert r0.replayed_updates - before <= 7

    def test_validates_interval(self):
        with pytest.raises(ValueError):
            CheckpointedReplica(0, 1, SPEC, checkpoint_interval=0)

    @given(st.integers(0, 10_000), st.sampled_from([1, 3, 16]))
    @settings(max_examples=20, deadline=None)
    def test_equivalent_to_naive_replay(self, seed, interval):
        """The optimization must be observationally equivalent to
        Algorithm 1 under every delivery schedule and interval."""
        wl = conflict_heavy_set_workload(3, 40, seed=seed)
        naive = Cluster(3, lambda pid, n: UniversalReplica(pid, n, SPEC),
                        latency=ExponentialLatency(5.0), seed=seed)
        opt = Cluster(
            3,
            lambda pid, n: CheckpointedReplica(pid, n, SPEC, checkpoint_interval=interval),
            latency=ExponentialLatency(5.0), seed=seed,
        )
        run_workload(naive, wl)
        run_workload(opt, wl)
        for pid in range(3):
            assert naive.query(pid, "read") == opt.query(pid, "read")


class TestRollbackAccounting:
    """Satellite regressions for checkpoint-tree rollback: boundary hits,
    repeated rollbacks, and the rollback-replay counter."""

    def warm_replica(self, n_updates=8, interval=2):
        r = CheckpointedReplica(
            0, 2, SPEC, checkpoint_interval=interval, track_witness=False
        )
        for i in range(n_updates):
            r.on_update(S.insert(i))
        r.on_query("read")  # replay once: checkpoints recorded
        return r

    @staticmethod
    def from_scratch(r):
        """Algorithm 1 verbatim over the replica's current log."""
        state = SPEC.initial_state()
        for _, _, update in r.updates:
            state = SPEC.apply(state, update)
        return SPEC.observe(state, "read", ())

    def test_late_message_exactly_on_checkpoint_boundary(self):
        r = self.warm_replica()
        boundary = r.checkpoint_indices()[-2]  # a retained interior index
        assert 0 < boundary < len(r.updates)
        # Local keys are (1,0)..(n,0); a remote update with clock ==
        # boundary sorts to insert position == boundary — exactly on it.
        r.on_message(1, (boundary, 1, S.insert(99)))
        assert r.rollbacks == 1
        # The boundary checkpoint folds positions strictly below the
        # insert, so it survives: only entries past it were invalidated.
        assert r.rollback_replayed == 8 - boundary
        assert r.checkpoint_indices()[-1] == boundary
        assert r.on_query("read") == self.from_scratch(r)

    def test_repeated_rollbacks_match_from_scratch_replay(self):
        r = self.warm_replica(n_updates=12, interval=3)
        for clock in (9, 5, 2):  # successively earlier late arrivals
            r.on_message(1, (clock, 1, S.insert(100 + clock)))
            assert r.on_query("read") == self.from_scratch(r)
        assert r.rollbacks == 3

    def test_rollback_counter_matches_reapplied_updates(self):
        # Every log entry is replayed once when a query first covers it,
        # plus once more per rollback invalidation — so at quiescence the
        # replay total telescopes to log length + rollback_replayed.
        r = self.warm_replica(n_updates=12, interval=3)
        for clock in (9, 5, 2):
            r.on_message(1, (clock, 1, S.insert(100 + clock)))
            r.on_query("read")
        assert r.rollback_replayed > 0
        assert r.replayed_updates == len(r.updates) + r.rollback_replayed

    def test_quiescent_rollback_counter_stays_zero(self):
        r = self.warm_replica()
        r.on_query("read")
        r.on_query("read")
        assert r.rollback_replayed == 0
        assert r.rollbacks == 0


class TestGarbageCollection:
    def gc_cluster(self, n=3, gc_interval=5, **kw):
        kw.setdefault("fifo", True)
        return Cluster(
            n,
            lambda pid, total: GarbageCollectedReplica(
                pid, total, SPEC, gc_interval=gc_interval, checkpoint_interval=4
            ),
            **kw,
        )

    def test_stable_prefix_collected(self):
        c = self.gc_cluster()
        for i in range(20):
            c.update(i % 3, S.insert(i))
            c.run()
        # Everyone heard everyone's clock advance: most of the prefix is
        # stable and reclaimable.
        for r in c.replicas:
            r.collect_garbage()
        assert any(r.collected > 0 for r in c.replicas)

    def test_states_correct_after_gc(self):
        c = self.gc_cluster()
        for i in range(20):
            c.update(i % 3, S.insert(i))
            c.run()
        c.update(0, S.delete(3))
        c.run()
        for r in c.replicas:
            r.collect_garbage()
        expected = frozenset(range(20)) - {3}
        assert all(c.query(pid, "read") == expected for pid in range(3))

    def test_heartbeats_advance_frontier_without_updates(self):
        c = self.gc_cluster(n=2)
        c.update(0, S.insert(1))
        c.run()
        # Without hearing from p1, p0 cannot collect (frontier = 0).
        assert c.replicas[0].collect_garbage() == 0
        hb = c.replicas[1].heartbeat()
        c.network.broadcast(1, hb, c.now)
        c.run()
        assert c.replicas[0].collect_garbage() >= 1

    def test_log_stays_bounded_with_gc(self):
        c = self.gc_cluster(gc_interval=3)
        for i in range(60):
            c.update(i % 3, S.insert(i % 7))
            c.run()
        naive_log = 60
        assert all(r.live_log_length < naive_log // 2 for r in c.replicas)

    def test_stability_violation_detected_on_reordering_network(self):
        # Non-FIFO + aggressive GC: an in-flight older message can land
        # under the collected frontier; the replica must fail loudly.
        c = Cluster(
            2,
            lambda pid, total: GarbageCollectedReplica(
                pid, total, SPEC, gc_interval=1, checkpoint_interval=2
            ),
            fifo=False,
            latency=ExponentialLatency(10.0),
            seed=3,
        )
        try:
            for i in range(30):
                c.update(i % 2, S.insert(i))
                if i % 3 == 0:
                    c.run_until(c.now + 1.0)
            c.run()
        except StabilityViolation:
            return  # detected, as designed
        # If the schedule happened to stay ordered, states must be right.
        states = {frozenset(s) for s in c.states().values()}
        assert len(states) == 1

    def test_gc_interval_validated(self):
        with pytest.raises(ValueError):
            GarbageCollectedReplica(0, 1, SPEC, gc_interval=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_gc_equivalent_to_naive_on_fifo(self, seed):
        wl = conflict_heavy_set_workload(3, 30, seed=seed)
        naive = Cluster(3, lambda pid, n: UniversalReplica(pid, n, SPEC),
                        latency=ExponentialLatency(5.0), seed=seed, fifo=True)
        gc = Cluster(
            3,
            lambda pid, n: GarbageCollectedReplica(pid, n, SPEC, gc_interval=4),
            latency=ExponentialLatency(5.0), seed=seed, fifo=True,
        )
        run_workload(naive, wl)
        run_workload(gc, wl)
        for pid in range(3):
            assert naive.query(pid, "read") == gc.query(pid, "read")
