"""Differential fuzz for the commutative fast path (Section VII-C).

"If all the update operations commute ... a naive implementation, that
applies the updates on a replica as soon as the notification is received,
achieves update consistency."  The fast path trusts that claim; these
tests earn it: every scenario runs the *same* seeded schedule twice —
once with the arrival-order fast path, once with ``fast_path=False``
(sorted-log replay) — and requires identical observable behaviour, under
chaos adversaries, crash/recovery through the durable-log codec, and
stable-prefix GC with anti-entropy state transfer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import update_consistent_convergence
from repro.core.checkpoint import CheckpointedReplica, GarbageCollectedReplica
from repro.core.commutative import CommutativeReplica
from repro.core.undo import UndoReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.fuzz import AdversaryFuzzer
from repro.sim.network import ExponentialLatency, LossyNetwork
from repro.specs import CounterSpec, GSetSpec, MapSpec, SetSpec
from repro.specs import counter as C
from repro.specs import gset as G

N = 3
SEEDS = st.integers(0, 10_000)

SPECS = {"counter": CounterSpec(), "gset": GSetSpec()}


def make_script(kind: str, seed: int, n_ops: int = 25) -> list:
    rng = np.random.default_rng(seed)
    script = []
    for _ in range(n_ops):
        pid = int(rng.integers(N))
        if kind == "counter":
            k = int(rng.integers(1, 5))
            op = C.dec(k) if rng.random() < 0.4 else C.inc(k)
        else:
            op = G.insert(int(rng.integers(8)))
        script.append((pid, op))
    return script


def chaos_cluster(kind: str, seed: int, fast: bool, replica_cls=UniversalReplica):
    spec = SPECS[kind]
    # Only the base replica exposes epidemic relay; the checkpoint/GC
    # variants repair loss through anti-entropy alone (stable-prefix GC
    # even forbids relay — a relayed duplicate under the collected
    # frontier would look like a stability violation).
    kwargs = {"relay": True} if replica_cls is UniversalReplica else {}
    return Cluster(
        N,
        lambda p, n: replica_cls(
            p, n, spec, fast_path=None if fast else False, **kwargs
        ),
        seed=seed,
        fifo=True,
        network_cls=LossyNetwork,
        network_kwargs={"drop_probability": 0.1},
    )


def run_chaos(cluster: Cluster, kind: str, seed: int) -> dict:
    fuzzer = AdversaryFuzzer(
        cluster,
        seed=seed,
        crash_budget=1,
        allow_message_loss=True,
        recover_probability=0.3,
    )
    fuzzer.run_workload(make_script(kind, seed), anti_entropy_rounds=5)
    return cluster.states()


class TestDifferentialFuzz:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    @pytest.mark.parametrize("kind", list(SPECS))
    def test_fast_path_equals_sorted_replay_under_chaos(self, kind, seed):
        """Same seed, same adversary, same script: the arrival-order fold
        and the sorted-log replay must agree at every surviving replica
        (crashes recover through the durable-log codec mid-run)."""
        fast = chaos_cluster(kind, seed, fast=True)
        assert all(r.fast_path for r in fast.replicas)
        slow = chaos_cluster(kind, seed, fast=False)
        assert not any(r.fast_path for r in slow.replicas)
        spec = SPECS[kind]
        fast_states = run_chaos(fast, kind, seed)
        slow_states = run_chaos(slow, kind, seed)
        assert set(fast_states) == set(slow_states)
        for pid in fast_states:
            assert spec.canonical(fast_states[pid]) == spec.canonical(
                slow_states[pid]
            ), f"pid {pid} diverged on seed {seed}"

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    @pytest.mark.parametrize("kind", list(SPECS))
    def test_fast_path_matches_agreed_linearization(self, kind, seed):
        """On a fault-free (but reordering) network the fast path must land
        on the timestamp linearization — the state sorted replay defines."""
        spec = SPECS[kind]
        c = Cluster(
            N,
            lambda p, n: UniversalReplica(p, n, spec),
            seed=seed,
            latency=ExponentialLatency(5.0),
        )
        assert all(r.fast_path for r in c.replicas)
        for pid, op in make_script(kind, seed):
            c.update(pid, op)
        c.run()
        ok, expected, states = update_consistent_convergence(c, spec)
        assert ok
        assert all(
            spec.canonical(s) == spec.canonical(expected)
            for s in states.values()
        )

    @given(SEEDS)
    @settings(max_examples=8, deadline=None)
    @pytest.mark.parametrize(
        "replica_cls", [CheckpointedReplica, GarbageCollectedReplica]
    )
    def test_optimized_variants_differential(self, replica_cls, seed):
        """The fast path composes with checkpointing and stable-prefix GC
        (whose recovery path includes anti-entropy v2 state transfer for
        compacted replicas)."""
        kind = "counter"
        spec = SPECS[kind]
        fast = chaos_cluster(kind, seed, fast=True, replica_cls=replica_cls)
        slow = chaos_cluster(kind, seed, fast=False, replica_cls=replica_cls)
        fast_states = run_chaos(fast, kind, seed)
        slow_states = run_chaos(slow, kind, seed)
        assert set(fast_states) == set(slow_states)
        for pid in fast_states:
            assert spec.canonical(fast_states[pid]) == spec.canonical(
                slow_states[pid]
            ), f"{replica_cls.__name__} pid {pid} diverged on seed {seed}"

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_fast_path_agrees_with_commutative_replica(self, seed):
        """The log-free :class:`CommutativeReplica` is the fast path taken
        to its limit; on a commutative spec all three agree."""
        spec = SPECS["counter"]
        script = make_script("counter", seed)
        finals = []
        for factory in (
            lambda p, n: UniversalReplica(p, n, spec),
            lambda p, n: UniversalReplica(p, n, spec, fast_path=False),
            lambda p, n: CommutativeReplica(p, n, spec),
        ):
            c = Cluster(N, factory, seed=seed, latency=ExponentialLatency(3.0))
            for pid, op in script:
                c.update(pid, op)
            c.run()
            finals.append({p: spec.canonical(s) for p, s in c.states().items()})
        assert finals[0] == finals[1] == finals[2]


class TestCrashRecovery:
    def test_truncated_log_recovery_differential(self):
        """A crash that beat the last fsync: restore through ``load_log``
        with a truncated snapshot, repair via anti-entropy, and require
        fast and sorted-replay runs to agree state-for-state."""
        spec = SPECS["counter"]

        def run(fast: bool):
            c = Cluster(
                N,
                lambda p, n: UniversalReplica(
                    p, n, spec, relay=True, fast_path=None if fast else False
                ),
                seed=7,
                fifo=True,
            )
            for i in range(10):
                c.update(i % N, C.inc(1))
            c.run()
            c.crash(1)
            for i in range(5):
                c.update(i % 2 * 2, C.dec(1))  # survivors 0 and 2
            c.run()
            c.recover(1, fsync_point=4)  # lost everything past entry 4
            c.run()
            c.anti_entropy(rounds=4)
            return {p: spec.canonical(s) for p, s in c.states().items()}

        fast_states = run(True)
        slow_states = run(False)
        assert fast_states == slow_states
        assert len(set(fast_states.values())) == 1  # and they converged

    def test_gc_state_transfer_refolds_fast_state(self):
        """A recovering replica whose peers already collected its gap gets
        a base-state handoff; the arrival-order fold must be rebuilt from
        the transferred base, not left stale."""
        spec = SPECS["counter"]
        c = Cluster(
            N,
            lambda p, n: GarbageCollectedReplica(
                p, n, spec, gc_interval=4, checkpoint_interval=2
            ),
            seed=11,
            fifo=True,
        )
        for i in range(12):
            c.update(i % N, C.inc(1))
            c.run()
        c.crash(1)
        for i in range(8):
            c.update((i % 2) * 2, C.inc(1))
            c.run()
        for pid in (0, 2):
            c.replicas[pid].collect_garbage()
        c.recover(1, fsync_point=2)
        c.run()
        c.anti_entropy(rounds=5)
        states = {p: spec.canonical(s) for p, s in c.states().items()}
        assert len(set(states.values())) == 1
        assert states[1] == 20
        assert c.replicas[1].fast_path


class TestActivation:
    def test_auto_active_only_on_commutative_specs(self):
        for spec, expect in (
            (CounterSpec(), True),
            (GSetSpec(), True),
            (SetSpec(), False),
            (MapSpec(), False),
        ):
            r = UniversalReplica(0, 2, spec)
            assert r.fast_path is expect, spec.name

    @pytest.mark.parametrize("spec_cls", [SetSpec, MapSpec])
    @pytest.mark.parametrize(
        "replica_cls",
        [UniversalReplica, CheckpointedReplica, GarbageCollectedReplica],
    )
    def test_forcing_fast_path_on_order_sensitive_spec_raises(
        self, spec_cls, replica_cls
    ):
        with pytest.raises(ValueError, match="commutative"):
            replica_cls(0, 2, spec_cls(), fast_path=True)

    def test_undo_replica_opts_out(self):
        # Undo/redo *is* its own incremental strategy; the arrival-order
        # fold would be redundant work on top of it.
        r = UndoReplica(0, 2, CounterSpec())
        assert r.fast_path is False
