"""Tests for Algorithm 1 (the universal SUC construction)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import update_consistent_convergence
from repro.core.criteria.witness import verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency, FixedLatency
from repro.sim.workload import conflict_heavy_set_workload, run_workload
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def cluster(n=3, **kw):
    return Cluster(n, lambda pid, total: UniversalReplica(pid, total, SPEC), **kw)


class TestLocalBehaviour:
    def test_own_update_immediately_visible(self):
        c = cluster()
        c.update(0, S.insert(1))
        assert c.query(0, "read") == frozenset({1})

    def test_remote_update_invisible_until_delivered(self):
        c = cluster(latency=FixedLatency(5.0))
        c.update(0, S.insert(1))
        assert c.query(1, "read") == frozenset()
        c.run()
        assert c.query(1, "read") == frozenset({1})

    def test_one_broadcast_per_update_none_per_query(self):
        c = cluster(n=4)
        c.update(0, S.insert(1))
        c.query(0, "read")
        c.query(1, "read")
        assert c.network.sent_count == 3  # n - 1

    def test_log_length_counts_all_known_updates(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.update(1, S.insert(2))
        c.run()
        assert all(r.log_length == 2 for r in c.replicas)

    def test_replay_cost_accounting(self):
        c = cluster()
        for i in range(5):
            c.update(0, S.insert(i))
        c.query(0, "read")
        c.query(0, "read")
        assert c.replicas[0].replayed_updates == 10

    def test_known_timestamps_sorted(self):
        c = cluster()
        c.update(1, S.insert(1))
        c.update(0, S.insert(2))
        c.run()
        for r in c.replicas:
            ts = r.known_timestamps()
            assert ts == sorted(ts)


class TestReplayAccounting:
    """Satellite regression: only real query replays may charge the
    Section VII-C replay counter — introspection is free."""

    def test_local_state_does_not_inflate_replay_counter(self):
        c = cluster()
        for i in range(5):
            c.update(0, S.insert(i))
        c.run()
        r0 = c.replicas[0]
        before = r0.replayed_updates
        r0.local_state()
        r0.local_state()
        assert r0.replayed_updates == before

    def test_cluster_states_does_not_inflate_replay_counter(self):
        c = cluster()
        for i in range(5):
            c.update(i % 3, S.insert(i))
        c.run()
        totals = [r.replayed_updates for r in c.replicas]
        c.states()  # convergence introspection sweeps every replica
        assert [r.replayed_updates for r in c.replicas] == totals

    def test_query_still_charges_full_replay(self):
        c = cluster()
        for i in range(5):
            c.update(0, S.insert(i))
        c.run()
        r0 = c.replicas[0]
        before = r0.replayed_updates
        c.query(0, "read")
        assert r0.replayed_updates == before + len(r0.updates)

    def test_local_state_agrees_with_query(self):
        c = cluster()
        for i in range(5):
            c.update(i % 3, S.insert(i))
        c.run()
        for pid in range(3):
            r = c.replicas[pid]
            assert SPEC.observe(r.local_state(), "read", ()) == c.query(
                pid, "read"
            )


class TestWitnessCapture:
    """Satellite regression: witness visibility capture is allocation-free
    at quiescence (queries share one cached frozenset) and invisible in
    the witness output."""

    @staticmethod
    def captured_visible(c):
        """The visibility frozensets the trace captured, in query order."""
        return [
            rec.meta["visible"] for rec in c.trace if not rec.is_update
        ]

    def test_quiescent_queries_share_the_visibility_frozenset(self):
        c = cluster()
        for i in range(4):
            c.update(0, S.insert(i))
        c.run()
        c.query(0, "read")
        c.query(0, "read")
        first, second = self.captured_visible(c)
        assert first is second  # no per-query allocation at quiescence

    def test_cache_invalidated_by_new_arrivals(self):
        c = cluster()
        for i in range(4):
            c.update(0, S.insert(i))
        c.run()
        c.query(0, "read")
        c.update(1, S.insert(99))
        c.run()
        c.query(0, "read")
        stale, fresh = self.captured_visible(c)
        assert fresh is not stale
        assert len(fresh) == len(stale) + 1

    def test_witness_identical_with_and_without_fast_path(self):
        # The commutative fast path answers queries from the arrival-order
        # fold but must leave witness capture untouched: the same schedule
        # run on both paths yields byte-identical SUC witnesses.
        from repro.specs import CounterSpec
        from repro.specs import counter as C

        spec = CounterSpec()

        def run(fast: bool):
            c = Cluster(
                2,
                lambda pid, n: UniversalReplica(pid, n, spec, fast_path=fast),
            )
            c.update(0, C.inc(1))
            c.query(1, "read")
            c.run()
            c.update(1, C.dec(2))
            c.query(0, "read")
            c.run()
            c.query(1, "read")
            h = c.trace.to_history()
            return h, c.trace.suc_witness(h)

        h_fast, w_fast = run(True)
        h_slow, w_slow = run(False)
        assert repr(w_fast) == repr(w_slow)
        assert verify_suc_witness(h_fast, spec, w_fast)
        assert verify_suc_witness(h_slow, spec, w_slow)


class TestConvergence:
    def test_same_final_state_everywhere(self):
        c = cluster(n=4, latency=ExponentialLatency(2.0), seed=8)
        run_workload(c, conflict_heavy_set_workload(4, 80, seed=8))
        ok, expected, states = update_consistent_convergence(c, SPEC)
        assert ok
        assert all(frozenset(s) == frozenset(expected) for s in states.values())

    def test_converged_state_is_timestamp_linearization(self):
        # Deterministic schedule: p0 and p1 update concurrently (clock 1
        # each); the tie breaks by pid, so I(1) from p0 orders before D(1)
        # from p1 — the converged set must be empty.
        c = cluster(n=2)
        c.update(0, S.insert(1))
        c.update(1, S.delete(1))
        c.run()
        assert c.query(0, "read") == frozenset()
        assert c.query(1, "read") == frozenset()

    def test_happened_before_respected(self):
        # p1 hears about I(1) before issuing D(1): the delete must win.
        c = cluster(n=2)
        c.update(0, S.insert(1))
        c.run()
        c.update(1, S.delete(1))
        c.run()
        assert c.query(0, "read") == frozenset()

    def test_out_of_order_delivery_still_converges(self):
        c = cluster(n=3, latency=ExponentialLatency(10.0), seed=5)
        for i in range(10):
            c.update(i % 3, S.insert(i))
        c.update(0, S.delete(4))
        c.run()
        states = {frozenset(s) for s in c.states().values()}
        assert len(states) == 1

    def test_convergence_after_partition_heals(self):
        c = cluster(n=4)
        c.partition([[0, 1], [2, 3]])
        c.update(0, S.insert(1))
        c.update(2, S.insert(2))
        c.update(3, S.delete(1))
        c.run()  # intra-partition traffic only
        assert c.query(0, "read") != c.query(2, "read")
        c.heal()
        c.run()
        states = {frozenset(s) for s in c.states().values()}
        assert len(states) == 1


class TestWitness:
    def test_deterministic_run_witness_verifies(self):
        c = cluster(n=3)
        c.update(0, S.insert(1))
        c.query(1, "read")
        c.run()
        c.update(2, S.delete(1))
        c.query(0, "read")
        c.run()
        c.query(1, "read")
        h = c.trace.to_history()
        assert verify_suc_witness(h, SPEC, c.trace.suc_witness(h))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_runs_are_suc_proposition_4(self, seed):
        """Proposition 4, empirically: every Algorithm 1 trace carries a
        valid Definition 9 witness, whatever the adversary (seed) does."""
        c = cluster(n=3, latency=ExponentialLatency(4.0), seed=seed)
        wl = conflict_heavy_set_workload(3, 25, seed=seed)
        # Interleave queries among the updates.
        for i, item in enumerate(wl):
            c.run_until(item.time)
            c.update(item.pid, item.op)
            if i % 4 == 0:
                c.query((item.pid + 1) % 3, "read")
        c.run()
        for pid in range(3):
            c.query(pid, "read")
        h = c.trace.to_history()
        res = verify_suc_witness(h, SPEC, c.trace.suc_witness(h))
        assert res, res.reason
