"""Tests for the Karsenty–Beaudouin-Lafon undo replica (Section VII-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.undo import UndoReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import collab_edit_workload, counter_workload, run_workload
from repro.specs import CounterSpec, LogSpec, SetSpec
from repro.specs import counter as C
from repro.specs import log_spec as L


class TestConstruction:
    def test_requires_invertible_spec(self):
        with pytest.raises(ValueError, match="not invertible"):
            UndoReplica(0, 2, SetSpec())

    def test_accepts_counter_and_log(self):
        UndoReplica(0, 2, CounterSpec())
        UndoReplica(0, 2, LogSpec())


class TestCounterBehaviour:
    def cluster(self, **kw):
        return Cluster(2, lambda pid, n: UndoReplica(pid, n, CounterSpec()), **kw)

    def test_local_ops(self):
        c = self.cluster()
        c.update(0, C.inc(3))
        c.update(0, C.dec(1))
        assert c.query(0, "read") == 2

    def test_queries_are_constant_time(self):
        c = self.cluster()
        for i in range(50):
            c.update(0, C.inc(1))
        r = c.replicas[0]
        before = r.replayed_updates
        c.query(0, "read")
        assert r.replayed_updates == before  # no replay at query time

    def test_late_update_repositioned_by_undo(self):
        c = self.cluster(latency=ExponentialLatency(5.0), seed=2)
        c.update(1, C.inc(10))
        for _ in range(5):
            c.update(0, C.inc(1))
        c.run()
        assert c.query(0, "read") == 15
        assert c.replicas[0].undone_redone > 0


class TestLogBehaviour:
    def test_late_append_lands_at_timestamp_position(self):
        c = Cluster(2, lambda pid, n: UndoReplica(pid, n, LogSpec()),
                    latency=ExponentialLatency(100.0), seed=0)
        c.update(1, L.append("early-remote"))  # stamp (1,1), delayed
        c.update(0, L.append("a"))             # stamp (1,0)
        c.update(0, L.append("b"))             # stamp (2,0)
        c.run()
        # Timestamp order: (1,0) a, (1,1) early-remote, (2,0) b.
        assert c.query(0, "read") == ("a", "early-remote", "b")
        assert c.query(1, "read") == ("a", "early-remote", "b")


class TestEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_counter_equivalent_to_naive(self, seed):
        wl = counter_workload(3, 40, seed=seed)
        spec = CounterSpec()
        naive = Cluster(3, lambda pid, n: UniversalReplica(pid, n, spec),
                        latency=ExponentialLatency(4.0), seed=seed)
        undo = Cluster(3, lambda pid, n: UndoReplica(pid, n, spec),
                       latency=ExponentialLatency(4.0), seed=seed)
        assert run_workload(naive, wl) == run_workload(undo, wl)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_log_equivalent_to_naive(self, seed):
        wl = collab_edit_workload(3, 30, seed=seed)
        spec = LogSpec()
        naive = Cluster(3, lambda pid, n: UniversalReplica(pid, n, spec),
                        latency=ExponentialLatency(4.0), seed=seed)
        undo = Cluster(3, lambda pid, n: UndoReplica(pid, n, spec),
                       latency=ExponentialLatency(4.0), seed=seed)
        run_workload(naive, wl)
        run_workload(undo, wl)
        for pid in range(3):
            assert naive.query(pid, "read") == undo.query(pid, "read")
