"""Unit tests for distributed histories (Definition 2) and projections."""

from __future__ import annotations

import pytest

from repro.core.history import Event, History
from repro.specs import set_spec as S
from repro.util import ordering


def two_proc():
    return History.from_processes(
        [
            [S.insert(1), S.read({1})],
            [S.insert(2), (S.read({1, 2}), True)],
        ]
    )


class TestConstruction:
    def test_from_processes_assigns_pids(self):
        h = two_proc()
        assert h.pids == (0, 1)
        assert [e.pid for e in h.events] == [0, 0, 1, 1]

    def test_program_order_is_per_process(self):
        h = two_proc()
        e0, e1, e2, e3 = h.events
        assert h.precedes(e0, e1)
        assert h.precedes(e2, e3)
        assert not h.precedes(e0, e2)
        assert not h.precedes(e1, e0)

    def test_omega_flag_parsed_from_pairs(self):
        h = two_proc()
        assert [e.omega for e in h.events] == [False, False, False, True]

    def test_duplicate_eids_rejected(self):
        e = Event(0, S.insert(1))
        with pytest.raises(ValueError):
            History([e, Event(0, S.insert(2))])

    def test_cyclic_program_order_rejected(self):
        a, b = Event(0, S.insert(1)), Event(1, S.insert(2))
        po = {a: {b}, b: {a}}
        with pytest.raises(ValueError):
            History([a, b], po)

    def test_omega_event_must_be_maximal(self):
        with pytest.raises(ValueError, match="maximal"):
            History.from_processes([[(S.read(set()), True), S.insert(1)]])

    def test_order_referencing_unknown_event_rejected(self):
        a = Event(0, S.insert(1))
        ghost = Event(99, S.insert(2))
        with pytest.raises(ValueError):
            History([a], {a: {ghost}})

    def test_empty_history(self):
        h = History([])
        assert len(h) == 0
        assert h.maximal_chains() == []


class TestAccessors:
    def test_updates_and_queries_split(self):
        h = two_proc()
        assert len(h.updates) == 2
        assert len(h.queries) == 2

    def test_omega_events(self):
        h = two_proc()
        assert len(h.omega_events) == 1

    def test_has_infinite_updates_only_for_omega_updates(self):
        h = two_proc()
        assert not h.has_infinite_updates
        h2 = History.from_processes([[(S.insert(1), True)]])
        assert h2.has_infinite_updates

    def test_predecessors_and_successors(self):
        h = two_proc()
        e0, e1 = h.events[0], h.events[1]
        assert h.predecessors(e1) == {e0}
        assert h.successors(e0) == {e1}

    def test_event_lookup_by_eid(self):
        h = two_proc()
        assert h.event(2) is h.events[2]

    def test_contains(self):
        h = two_proc()
        assert h.events[0] in h
        assert Event(99, S.insert(5)) not in h

    def test_process_events_in_order(self):
        h = two_proc()
        chain = h.process_events(0)
        assert [e.eid for e in chain] == [0, 1]


class TestProjections:
    def test_restrict_keeps_selected_events(self):
        h = two_proc()
        sub = h.restrict(h.updates)
        assert len(sub) == 2
        assert all(e.is_update for e in sub.events)

    def test_restrict_preserves_transitive_order(self):
        # p0: a -> b -> c ; restricting to {a, c} must keep a -> c.
        h = History.from_processes([[S.insert(1), S.read({1}), S.insert(2)]])
        a, b, c = h.events
        sub = h.restrict([a, c])
        assert sub.precedes(a, c)

    def test_restrict_rejects_foreign_events(self):
        h = two_proc()
        with pytest.raises(ValueError):
            h.restrict([Event(99, S.insert(1))])

    def test_without_is_complement(self):
        h = two_proc()
        sub = h.without(h.queries)
        assert set(sub.events) == set(h.updates)

    def test_with_order_substitutes(self):
        h = two_proc()
        e0, e2 = h.events[0], h.events[2]
        total = ordering.empty_relation(h.events)
        ordering.add_edge(total, e0, e2)
        h2 = h.with_order(total)
        assert h2.precedes(e0, e2)
        assert not h2.precedes(e0, h.events[1])

    def test_projections_commute(self):
        h = two_proc()
        keep = [h.events[0], h.events[2], h.events[3]]
        new_order = ordering.empty_relation(h.events)
        ordering.add_edge(new_order, h.events[0], h.events[3])
        a = h.restrict(keep).with_order(new_order)
        b = h.with_order(new_order).restrict(keep)
        assert set(a.events) == set(b.events)
        assert a.program_order_closure == b.program_order_closure


class TestChains:
    def test_maximal_chains_are_process_sequences(self):
        h = two_proc()
        chains = h.maximal_chains()
        assert len(chains) == 2
        assert sorted(tuple(e.eid for e in c) for c in chains) == [(0, 1), (2, 3)]

    def test_map_labels_preserves_structure(self):
        h = two_proc()
        h2 = h.map_labels(lambda op: op)
        assert len(h2) == len(h)
        assert h2.pids == h.pids

    def test_pretty_renders_processes(self):
        text = two_proc().pretty()
        assert "p0:" in text and "p1:" in text and "^ω" in text
