"""Tests for Algorithm 2 (the O(1) update-consistent shared memory)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory import MemoryReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import register_workload, run_workload
from repro.specs import MemorySpec
from repro.specs import register as R


def memory_cluster(n=3, **kw):
    return Cluster(n, lambda pid, total: MemoryReplica(pid, total), **kw)


class TestSemantics:
    def test_unwritten_reads_initial(self):
        c = memory_cluster()
        assert c.query(0, "read", ("x",)) is None

    def test_custom_initial_value(self):
        c = Cluster(2, lambda pid, n: MemoryReplica(pid, n, initial=0))
        assert c.query(1, "read", ("x",)) == 0

    def test_local_write_immediately_readable(self):
        c = memory_cluster()
        c.update(0, R.mem_write("x", 5))
        assert c.query(0, "read", ("x",)) == 5

    def test_last_writer_wins_across_processes(self):
        c = memory_cluster(n=2)
        c.update(0, R.mem_write("x", "a"))
        c.run()
        c.update(1, R.mem_write("x", "b"))  # causally after: higher clock
        c.run()
        assert c.query(0, "read", ("x",)) == "b"
        assert c.query(1, "read", ("x",)) == "b"

    def test_concurrent_writes_resolved_by_pid(self):
        c = memory_cluster(n=2)
        c.update(0, R.mem_write("x", "low"))
        c.update(1, R.mem_write("x", "high"))  # same clock, higher pid
        c.run()
        assert c.query(0, "read", ("x",)) == "high"

    def test_stale_message_never_regresses(self):
        # Deliver the newer write first, then the older one: kept value
        # must stay the newer (lines 10-13's timestamp guard).
        c = memory_cluster(n=3, latency=ExponentialLatency(10.0), seed=13)
        c.update(0, R.mem_write("x", "old"))
        c.run()
        c.update(1, R.mem_write("x", "new"))
        c.run()
        assert all(c.query(pid, "read", ("x",)) == "new" for pid in range(3))

    def test_rejects_non_write_updates(self):
        c = memory_cluster()
        with pytest.raises(ValueError):
            c.update(0, R.write(1))  # single-register write lacks the key

    def test_snapshot(self):
        c = memory_cluster()
        c.update(0, R.mem_write("x", 1))
        c.update(0, R.mem_write("y", 2))
        assert c.query(0, "snapshot") == {"x": 1, "y": 2}


class TestComplexity:
    def test_memory_grows_with_registers_not_operations(self):
        c = memory_cluster(n=2)
        for i in range(200):
            c.update(0, R.mem_write(i % 4, i))
        c.run()
        assert all(r.register_count == 4 for r in c.replicas)

    def test_no_replay_structures(self):
        replica = MemoryReplica(0, 2)
        assert not hasattr(replica, "updates")


class TestEquivalenceWithAlgorithm1:
    """Algorithm 2 is an optimization, not a semantic change: on any
    workload, reads must return exactly what Algorithm 1 running
    MemorySpec returns under the same delivery schedule."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_same_outputs_same_schedule(self, seed):
        wl = register_workload(3, 40, registers=5, seed=seed)
        spec = MemorySpec()
        generic = Cluster(
            3, lambda pid, n: UniversalReplica(pid, n, spec),
            latency=ExponentialLatency(3.0), seed=seed,
        )
        optimized = Cluster(
            3, lambda pid, n: MemoryReplica(pid, n),
            latency=ExponentialLatency(3.0), seed=seed,
        )
        out_a = run_workload(generic, wl)
        out_b = run_workload(optimized, wl)
        assert out_a == out_b

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_same_final_states(self, seed):
        wl = [w for w in register_workload(2, 30, registers=3, seed=seed) if w.is_update]
        spec = MemorySpec()
        generic = Cluster(
            2, lambda pid, n: UniversalReplica(pid, n, spec),
            latency=ExponentialLatency(2.0), seed=seed,
        )
        optimized = Cluster(
            2, lambda pid, n: MemoryReplica(pid, n),
            latency=ExponentialLatency(2.0), seed=seed,
        )
        run_workload(generic, wl)
        run_workload(optimized, wl)
        assert generic.replicas[0].local_state() == optimized.replicas[0].local_state()
