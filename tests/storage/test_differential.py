"""Differential test: journal-backed recovery ≡ snapshot-backed recovery.

The storage engine replays a digest-chained record sequence; the v2
snapshot restores a one-shot image.  Both must land a fresh replica in
*exactly* the same state — on the seeded chaos workload (crashes,
partitions, lossy links, crash-recovery), not just on hand-built logs.
Any divergence here means the journal dropped, reordered or duplicated
a cell the flat image kept.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.proto.wire import replica_snapshot, restore_replica
from repro.sim.cluster import Cluster
from repro.sim.fuzz import AdversaryFuzzer
from repro.sim.network import LossyNetwork, Network
from repro.specs import SetSpec
from repro.specs import set_spec as S
from repro.storage import JournalStore

SPEC = SetSpec()


def observable(replica):
    """Everything recovery must reproduce, in comparable form."""
    return {
        "state": replica.local_state(),
        "clock": replica.clock.value,
        "log": [tuple(e) for e in replica.updates],
    }


def restore_from_snapshot(replica, pid, n, *, cls=UniversalReplica, **kw):
    fresh = cls(pid, n, SPEC, **kw)
    restore_replica(fresh, replica_snapshot(replica, version=2))
    return fresh


def restore_from_journal(store_path, replica, pid, n, *,
                         cls=UniversalReplica, **kw):
    """Round-trip ``replica`` through the storage engine on real disk."""
    st = JournalStore(str(store_path), pid)
    st.open()
    st.sync(replica)
    st.close()
    st2 = JournalStore(str(store_path), pid)
    image = st2.open()
    st2.close()
    fresh = cls(pid, n, SPEC, **kw)
    restore_replica(fresh, image)
    return fresh


def chaos_cluster(seed, *, procs=4, ops=40, lossy=False):
    """One seeded adversarial run, mirroring the chaos_smoke recipe."""
    cluster = Cluster(
        procs,
        lambda p, n: UniversalReplica(p, n, SPEC, relay=True),
        seed=seed,
        fifo=lossy,
        network_cls=LossyNetwork if lossy else Network,
        network_kwargs={"drop_probability": 0.15} if lossy else {},
    )
    fuzzer = AdversaryFuzzer(
        cluster,
        seed=seed,
        crash_budget=2,
        allow_message_loss=True,
        recover_probability=0.2,
    )
    rng = np.random.default_rng(seed)
    script = []
    for _ in range(ops):
        pid = int(rng.integers(procs))
        v = int(rng.integers(6))
        script.append((pid, S.insert(v) if rng.random() < 0.6 else S.delete(v)))
    fuzzer.run_workload(script, anti_entropy_rounds=5)
    return cluster


class TestChaosDifferential:
    @pytest.mark.parametrize("seed,lossy", [(1, False), (7, True), (23, False)])
    def test_journal_restore_equals_snapshot_restore(self, tmp_path, seed,
                                                     lossy):
        cluster = chaos_cluster(seed, lossy=lossy)
        checked = 0
        for pid in cluster.alive():
            replica = cluster.replicas[pid]
            if not replica.updates:
                continue
            snap = restore_from_snapshot(replica, pid, cluster.n, relay=True)
            jour = restore_from_journal(
                tmp_path / f"s{seed}-p{pid}.journal", replica, pid,
                cluster.n, relay=True,
            )
            assert observable(jour) == observable(snap) == observable(replica), (
                f"seed {seed} p{pid}: journal and snapshot recovery disagree"
            )
            checked += 1
        assert checked > 0, f"seed {seed}: no survivor had a live log"

    @pytest.mark.parametrize("seed", [3, 11])
    def test_fsync_truncation_semantics_match(self, tmp_path, seed):
        # a crash that beat the last fsync: the v3 journal's torn tail
        # must lose exactly the entries fsync_point says a v2 image loses
        cluster = chaos_cluster(seed)
        pid = next(p for p in cluster.alive() if cluster.replicas[p].updates)
        replica = cluster.replicas[pid]
        keep = max(1, len(replica.updates) // 2)
        for version in (2, 3):
            fresh = UniversalReplica(pid, cluster.n, SPEC, relay=True)
            restore_replica(
                fresh,
                replica_snapshot(replica, fsync_point=keep, version=version),
            )
            assert len(fresh.updates) == keep
            assert fresh.clock.value == replica.clock.value  # WAL clock cell
            if version == 2:
                v2_observable = observable(fresh)
        assert observable(fresh) == v2_observable


class TestIncrementalDifferential:
    """The engine syncs *incrementally* during the run, not once at the
    end — the accumulated journal must still equal a one-shot snapshot."""

    def test_interleaved_syncs_accumulate_the_same_image(self, tmp_path):
        rng = np.random.default_rng(5)
        replica = UniversalReplica(0, 3, SPEC)
        st = JournalStore(str(tmp_path / "inc.journal"), 0)
        st.open()
        for i in range(60):
            v = int(rng.integers(9))
            replica.on_update(S.insert(v) if rng.random() < 0.7 else S.delete(v))
            if i % 7 == 0:
                st.sync(replica)
        st.sync(replica)
        st.close()
        st2 = JournalStore(str(tmp_path / "inc.journal"), 0)
        image = st2.open()
        st2.close()
        jour = UniversalReplica(0, 3, SPEC)
        restore_replica(jour, image)
        snap = restore_from_snapshot(replica, 0, 3)
        assert observable(jour) == observable(snap) == observable(replica)

    def test_gc_compaction_preserves_the_differential(self, tmp_path):
        def make():
            return GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=4)

        replica = make()
        st = JournalStore(str(tmp_path / "gc.journal"), 0)
        st.open()
        for i in range(24):
            replica.on_update(S.insert(i % 5))
            if i % 6 == 5:
                st.sync(replica)
            if i == 15:
                replica.collect_garbage()
        st.sync(replica)
        assert st.compactions >= 1  # the floor advance must have fired
        st.close()
        st2 = JournalStore(str(tmp_path / "gc.journal"), 0)
        image = st2.open()
        st2.close()
        jour = make()
        restore_replica(jour, image)
        snap = make()
        restore_replica(snap, replica_snapshot(replica, version=2))
        assert observable(jour) == observable(snap) == observable(replica)
        assert jour.gc_clock_floor == snap.gc_clock_floor == \
            replica.gc_clock_floor
        assert tuple(jour.heard) == tuple(snap.heard) == tuple(replica.heard)
