"""The binary journal's crash-consistency contract.

The journal is the physical ``fsync_point``: everything before the last
committed frame survives any crash, a torn tail is truncated (never
fatal), and damage to *fsynced* bytes — which no crash can cause — is a
typed, located error.  These tests drive the file through every one of
those fates byte by byte.
"""

from __future__ import annotations

import os
import zlib

import pytest

import repro.storage.journal as journal_mod
from repro.proto.wire import genesis_digest, verify_chain
from repro.storage import CorruptImageError, Journal
from repro.storage.journal import FRAME_HEADER, MAGIC


def make_journal(path, records, *, pid=0):
    j, existing, torn = Journal.open(str(path), pid)
    assert existing == [] and not torn
    for rec in records:
        j.append(rec)
    j.commit()
    j.close()


RECORDS = [
    {"r": "meta", "format": "repro-replica-journal-v3", "pid": 0},
    {"r": "clock", "c": 1, "value": 3},
    {"r": "entry", "c": 2, "k": "1.0", "e": "a"},
    {"r": "entry", "c": 3, "k": "2.0", "e": "b"},
    {"r": "entry", "c": 4, "k": "3.0", "e": "c"},
]


class TestAppendAndReopen:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        j, records, torn = Journal.open(str(path), 0)
        assert not torn
        assert [dict(r, d=None) for r in records] == [
            dict(r, d=None) for r in RECORDS
        ]
        j.close()

    def test_records_carry_the_digest_chain(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        j, records, _ = Journal.open(str(path), 0)
        # verify_chain replays from genesis and must land on the
        # journal's own rolling digest
        assert verify_chain(0, records) == j.digest_hex
        assert j.digest_hex != genesis_digest(0).hex()
        j.close()

    def test_append_after_reopen_continues_the_chain(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS[:3])
        j, _, _ = Journal.open(str(path), 0)
        for rec in RECORDS[3:]:
            j.append(rec)
        j.commit()
        j.close()
        j2, records, torn = Journal.open(str(path), 0)
        assert not torn and len(records) == len(RECORDS)
        j2.close()

    def test_uncommitted_appends_are_not_the_journals_problem(self, tmp_path):
        # append without commit, then drop the handle: the tail may or
        # may not reach the disk — the reader must treat whatever it
        # finds as a valid prefix either way
        path = tmp_path / "j"
        j, _, _ = Journal.open(str(path), 0)
        j.append(RECORDS[0])
        j.commit()
        j.append(RECORDS[1])  # never committed
        j.close()  # close flushes; simulate the crash by truncating below
        size_with_tail = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size_with_tail - 3)
        j2, records, torn = Journal.open(str(path), 0)
        assert torn and len(records) == 1
        j2.close()


class TestTornTail:
    @pytest.mark.parametrize("chop", [1, 3, 7, 9, 20])
    def test_truncated_mid_record_recovers_prefix(self, tmp_path, chop):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - chop)
        j, records, torn = Journal.open(str(path), 0)
        assert torn
        assert len(records) < len(RECORDS)
        # the file was physically truncated back to the valid prefix
        j.close()
        j2, records2, torn2 = Journal.open(str(path), 0)
        assert not torn2 and records2 == records
        j2.close()

    def test_bit_flip_in_final_record_is_a_torn_tail(self, tmp_path):
        # damage to the very last frame is indistinguishable from a torn
        # write, so it is truncated — the fsync_point model, not an error
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        raw = bytearray(open(path, "rb").read())
        raw[-5] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        _, records, torn = Journal.open(str(path), 0)
        assert torn and len(records) == len(RECORDS) - 1

    def test_appends_continue_after_truncation(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 2)
        j, records, torn = Journal.open(str(path), 0)
        assert torn
        j.append({"r": "entry", "c": 9, "k": "9.0", "e": "z"})
        j.commit()
        j.close()
        _, records2, torn2 = Journal.open(str(path), 0)
        assert not torn2
        assert records2[-1]["k"] == "9.0"


class TestCorruption:
    def flip(self, path, offset):
        raw = bytearray(open(path, "rb").read())
        raw[offset] ^= 0xFF
        open(path, "wb").write(bytes(raw))

    def test_bit_flip_mid_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        self.flip(path, 40)  # inside an early frame, valid data after it
        with pytest.raises(CorruptImageError) as info:
            Journal.open(str(path), 0)
        assert info.value.path == str(path)
        assert info.value.offset >= len(MAGIC)
        assert "CRC" in str(info.value)

    def test_bad_magic_raises_at_offset_zero(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        self.flip(path, 0)
        with pytest.raises(CorruptImageError) as info:
            Journal.open(str(path), 0)
        assert info.value.offset == 0

    def test_wrong_pid_breaks_the_chain(self, tmp_path):
        # a journal spliced in from another replica's directory: every
        # CRC is fine, but the genesis digest differs per pid
        path = tmp_path / "j"
        make_journal(path, RECORDS, pid=0)
        with pytest.raises(CorruptImageError) as info:
            Journal.open(str(path), 1)
        assert "digest chain" in str(info.value)

    def test_crc_matching_garbage_payload_is_rejected(self, tmp_path):
        # a frame whose CRC is self-consistent but whose payload is not a
        # chained record (e.g. written by something else entirely)
        path = tmp_path / "j"
        make_journal(path, RECORDS[:2])
        payload = b'{"r":"entry","c":9}'  # no "d" link
        frame = FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with open(path, "ab") as fh:
            fh.write(frame + b"\x00" * 64)  # valid-ish data after it
        with pytest.raises(CorruptImageError) as info:
            Journal.open(str(path), 0)
        assert "digest chain" in str(info.value)


class TestCompactionRewrite:
    def test_rewrite_is_atomic_and_restarts_the_chain(self, tmp_path):
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        j, _, _ = Journal.open(str(path), 0)
        j.rewrite(RECORDS[:2])
        assert j.records == 2
        j.close()
        _, records, torn = Journal.open(str(path), 0)
        assert not torn and len(records) == 2

    def test_stale_tmp_from_interrupted_compaction_is_discarded(self, tmp_path):
        # crash between writing journal.tmp and the rename: the tmp file
        # is garbage, the old generation is still the durable truth
        path = tmp_path / "j"
        make_journal(path, RECORDS)
        with open(str(path) + ".tmp", "wb") as fh:
            fh.write(b"half-written new generation")
        _, records, torn = Journal.open(str(path), 0)
        assert not torn and len(records) == len(RECORDS)
        assert not os.path.exists(str(path) + ".tmp")

    def test_rewrite_fsyncs_the_directory(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(
            journal_mod, "fsync_dir", lambda p: calls.append(p)
        )
        path = tmp_path / "j"
        j, _, _ = Journal.open(str(path), 0)
        assert calls == [str(tmp_path)]  # file creation synced the dir
        j.append(RECORDS[0])
        j.commit()
        j.rewrite(RECORDS[:1])
        assert calls == [str(tmp_path), str(tmp_path)]  # and the rename
        j.close()
