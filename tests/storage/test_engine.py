"""The storage engine: incremental appends, the k/v map, compaction.

The engine's contract is the one the ISSUE's acceptance bench measures:
a flush writes the *changed* cells (flat in log length), recovery
replays the journal into the same replica state a one-shot snapshot
restore produces, and the GC floor drives compaction.
"""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.proto.wire import restore_replica
from repro.specs import SetSpec
from repro.specs import set_spec as S
from repro.storage import CorruptImageError, JournalStore
from repro.storage.engine import BASE_KEY, CLOCK_KEY

SPEC = SetSpec()


def replica_with(n_updates, *, pid=0, cls=UniversalReplica):
    r = cls(pid, 3, SPEC)
    for i in range(n_updates):
        r.on_update(S.insert(i))
    return r


def open_store(tmp_path, *, pid=0):
    return JournalStore(str(tmp_path / f"replica-{pid}.journal"), pid)


class TestIncrementalSync:
    def test_first_sync_writes_everything(self, tmp_path):
        r = replica_with(4)
        st = open_store(tmp_path)
        assert st.open() is None
        stats = st.sync(r)
        # meta + clock + 4 entries
        assert stats == {"appended": 6, "compacted": 0}
        st.close()

    def test_resync_appends_only_the_new_cells(self, tmp_path):
        r = replica_with(4)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        assert st.sync(r) == {"appended": 0, "compacted": 0}
        r.on_update(S.insert(99))
        assert st.sync(r) == {"appended": 2, "compacted": 0}  # clock + entry
        st.close()

    def test_append_cost_is_flat_in_log_length(self, tmp_path):
        r = replica_with(0)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        costs = []
        for i in range(50):
            before = st.bytes_on_disk()
            r.on_update(S.insert(i))
            st.sync(r)
            costs.append(st.bytes_on_disk() - before)
        # per-update write cost must not grow with the log (the old
        # full-image flusher grew linearly); identical updates at a
        # two-digit vs one-digit clock differ by a few bytes only
        assert max(costs) <= min(costs) + 16
        st.close()

    def test_kv_map_references_update_counters(self, tmp_path):
        r = replica_with(3)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        counters = [c for c, _ in st.kv.values()]
        assert len(set(counters)) == len(counters)  # unique references
        assert st.kv[CLOCK_KEY][1]["value"] == r.clock.value
        assert set(st.kv) == {CLOCK_KEY, "1.0", "2.0", "3.0"}
        st.close()


class TestRecovery:
    def test_recovered_image_restores_identical_state(self, tmp_path):
        r = replica_with(5)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        st.close()
        st2 = open_store(tmp_path)
        image = st2.open()
        fresh = UniversalReplica(0, 3, SPEC)
        assert restore_replica(fresh, image) == 5
        assert fresh.local_state() == r.local_state()
        assert fresh.clock.value == r.clock.value
        assert [tuple(e) for e in fresh.updates] == [tuple(e) for e in r.updates]
        st2.close()

    def test_recovered_image_carries_the_verified_digest(self, tmp_path):
        r = replica_with(3)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        digest = st.digest_hex
        st.close()
        st2 = open_store(tmp_path)
        image = st2.open()
        assert json.loads(image)["digest"] == digest == st2.digest_hex

    def test_corrupt_journal_raises_through_open(self, tmp_path):
        r = replica_with(5)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        st.close()
        path = tmp_path / "replica-0.journal"
        raw = bytearray(path.read_bytes())
        raw[30] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptImageError):
            open_store(tmp_path).open()

    def test_torn_tail_marks_the_image_incomplete(self, tmp_path):
        r = replica_with(5)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        st.close()
        path = tmp_path / "replica-0.journal"
        with open(path, "r+b") as fh:
            fh.truncate(path.stat().st_size - 4)
        st2 = open_store(tmp_path)
        image = st2.open()
        assert st2.truncated_tail
        doc = json.loads(image)
        assert doc["complete"] is False
        fresh = UniversalReplica(0, 3, SPEC)
        assert restore_replica(fresh, image) == 4  # last entry lost
        assert fresh.clock.value == r.clock.value  # the WAL clock cell held
        st2.close()


class TestGcCompaction:
    def gc_replica(self, n_updates):
        # n=1 so the replica's own deliveries certify completeness and
        # collect_garbage can advance the floor without peers
        r = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
        for i in range(n_updates):
            r.on_update(S.insert(i))
        return r

    def test_base_record_written_at_birth(self, tmp_path):
        r = self.gc_replica(3)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        assert BASE_KEY in st.kv
        st.close()

    def test_floor_advance_triggers_compaction(self, tmp_path):
        r = self.gc_replica(6)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        bloated = st.bytes_on_disk()
        collected = r.collect_garbage()
        assert collected > 0
        stats = st.sync(r)
        assert stats["compacted"] == 1
        assert st.compactions == 1
        assert st.bytes_on_disk() < bloated
        st.close()

    def test_recovery_after_compaction_restores_state_and_floor(self, tmp_path):
        r = self.gc_replica(6)
        st = open_store(tmp_path)
        st.open()
        st.sync(r)
        r.collect_garbage()
        st.sync(r)
        st.close()
        st2 = open_store(tmp_path)
        image = st2.open()
        fresh = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
        restore_replica(fresh, image)
        assert fresh.local_state() == r.local_state()
        assert fresh.gc_clock_floor == r.gc_clock_floor
        assert fresh.clock.value == r.clock.value
        st2.close()
