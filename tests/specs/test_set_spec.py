"""Unit tests for the set specification (Example 1)."""

from __future__ import annotations

import pytest

from repro.specs import set_spec as S


class TestTransitions:
    def test_initial_state_empty(self, set_spec):
        assert set_spec.initial_state() == frozenset()

    def test_insert_adds(self, set_spec):
        assert set_spec.apply(frozenset(), S.insert(1)) == frozenset({1})

    def test_insert_idempotent_on_state(self, set_spec):
        s = frozenset({1})
        assert set_spec.apply(s, S.insert(1)) == s

    def test_delete_removes(self, set_spec):
        assert set_spec.apply(frozenset({1, 2}), S.delete(1)) == frozenset({2})

    def test_delete_absent_is_noop(self, set_spec):
        assert set_spec.apply(frozenset({2}), S.delete(1)) == frozenset({2})

    def test_apply_is_pure(self, set_spec):
        s = frozenset({1})
        set_spec.apply(s, S.insert(2))
        assert s == frozenset({1})

    def test_unknown_update_rejected(self, set_spec):
        from repro.core.adt import Update

        with pytest.raises(ValueError):
            set_spec.apply(frozenset(), Update("pop", ()))


class TestQueries:
    def test_read_returns_state(self, set_spec):
        assert set_spec.observe(frozenset({3}), "read") == frozenset({3})

    def test_contains(self, set_spec):
        assert set_spec.observe(frozenset({3}), "contains", (3,)) is True
        assert set_spec.observe(frozenset({3}), "contains", (4,)) is False

    def test_unknown_query_rejected(self, set_spec):
        with pytest.raises(ValueError):
            set_spec.observe(frozenset(), "size")


class TestSolveState:
    def test_read_pins_state(self, set_spec):
        assert set_spec.solve_state([S.read({1, 2})]) == frozenset({1, 2})

    def test_conflicting_reads_unsat(self, set_spec):
        assert set_spec.solve_state([S.read({1}), S.read({2})]) is None

    def test_contains_constraints_compose(self, set_spec):
        s = set_spec.solve_state([S.contains(1, True), S.contains(2, False)])
        assert s == frozenset({1})

    def test_contradictory_contains_unsat(self, set_spec):
        assert set_spec.solve_state([S.contains(1, True), S.contains(1, False)]) is None

    def test_read_with_compatible_contains(self, set_spec):
        s = set_spec.solve_state([S.read({1}), S.contains(1, True)])
        assert s == frozenset({1})

    def test_read_with_incompatible_contains(self, set_spec):
        assert set_spec.solve_state([S.read({1}), S.contains(1, False)]) is None
        assert set_spec.solve_state([S.read({1}), S.contains(2, True)]) is None

    def test_empty_constraints(self, set_spec):
        assert set_spec.solve_state([]) == frozenset()

    def test_non_set_read_output_unsat(self, set_spec):
        from repro.core.adt import Query

        assert set_spec.solve_state([Query("read", (), 42)]) is None
