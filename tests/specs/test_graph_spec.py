"""Unit tests for the graph UQ-ADT (the DeSceNt social-network object)."""

from __future__ import annotations

import pytest

from repro.specs import GraphSpec
from repro.specs import graph_spec as G


@pytest.fixture
def graph_spec():
    return GraphSpec()


def build(spec, *updates):
    return spec.replay(list(updates))


class TestTransitions:
    def test_initially_empty(self, graph_spec):
        assert graph_spec.initial_state() == (frozenset(), frozenset())

    def test_add_vertex(self, graph_spec):
        vs, es = build(graph_spec, G.add_vertex("amy"))
        assert vs == frozenset({"amy"}) and es == frozenset()

    def test_add_edge_requires_both_endpoints(self, graph_spec):
        state = build(graph_spec, G.add_vertex("amy"), G.add_edge("amy", "ben"))
        assert state[1] == frozenset()  # ben not a member yet

    def test_add_edge(self, graph_spec):
        state = build(
            graph_spec, G.add_vertex("amy"), G.add_vertex("ben"),
            G.add_edge("amy", "ben"),
        )
        assert graph_spec.observe(state, "has_edge", ("ben", "amy")) is True

    def test_self_edge_refused(self, graph_spec):
        state = build(graph_spec, G.add_vertex("amy"), G.add_edge("amy", "amy"))
        assert state[1] == frozenset()

    def test_remove_vertex_cascades_edges(self, graph_spec):
        state = build(
            graph_spec, G.add_vertex("a"), G.add_vertex("b"), G.add_edge("a", "b"),
            G.remove_vertex("a"),
        )
        assert state == (frozenset({"b"}), frozenset())

    def test_remove_absent_vertex_noop(self, graph_spec):
        assert build(graph_spec, G.remove_vertex("x")) == graph_spec.initial_state()

    def test_remove_edge(self, graph_spec):
        state = build(
            graph_spec, G.add_vertex("a"), G.add_vertex("b"), G.add_edge("a", "b"),
            G.remove_edge("b", "a"),  # undirected: order irrelevant
        )
        assert state[1] == frozenset()

    def test_idempotence(self, graph_spec):
        once = build(graph_spec, G.add_vertex("a"))
        twice = build(graph_spec, G.add_vertex("a"), G.add_vertex("a"))
        assert once == twice

    def test_unknown_update_rejected(self, graph_spec):
        from repro.core.adt import Update

        with pytest.raises(ValueError):
            graph_spec.apply(graph_spec.initial_state(), Update("color", ("v",)))


class TestQueries:
    def triangle(self, spec):
        return build(
            spec,
            G.add_vertex("a"), G.add_vertex("b"), G.add_vertex("c"),
            G.add_vertex("loner"),
            G.add_edge("a", "b"), G.add_edge("b", "c"), G.add_edge("a", "c"),
        )

    def test_vertices_edges(self, graph_spec):
        state = self.triangle(graph_spec)
        assert graph_spec.observe(state, "vertices") == frozenset("abc") | {"loner"}
        assert len(graph_spec.observe(state, "edges")) == 3

    def test_neighbors_degree(self, graph_spec):
        state = self.triangle(graph_spec)
        assert graph_spec.observe(state, "neighbors", ("a",)) == frozenset({"b", "c"})
        assert graph_spec.observe(state, "degree", ("a",)) == 2
        assert graph_spec.observe(state, "degree", ("loner",)) == 0

    def test_component_count(self, graph_spec):
        state = self.triangle(graph_spec)
        assert graph_spec.observe(state, "component_count") == 2

    def test_reachable(self, graph_spec):
        state = self.triangle(graph_spec)
        assert graph_spec.observe(state, "reachable", ("a", "c")) is True
        assert graph_spec.observe(state, "reachable", ("a", "loner")) is False
        assert graph_spec.observe(state, "reachable", ("a", "ghost")) is False

    def test_language(self, graph_spec):
        word = [
            G.add_vertex("a"), G.add_vertex("b"),
            G.has_edge("a", "b", False),
            G.add_edge("a", "b"),
            G.has_edge("a", "b", True),
            G.component_count(1),
        ]
        assert graph_spec.recognizes(word)


class TestSolveState:
    def test_pinned_by_reads(self, graph_spec):
        s = graph_spec.solve_state(
            [G.vertices({"a", "b"}), G.edges([("a", "b")])]
        )
        assert s == (frozenset({"a", "b"}), frozenset({frozenset(("a", "b"))}))

    def test_membership_constraints(self, graph_spec):
        s = graph_spec.solve_state([G.has_edge("a", "b", True)])
        assert s is not None
        assert graph_spec.observe(s, "has_edge", ("a", "b")) is True

    def test_contradiction(self, graph_spec):
        assert graph_spec.solve_state(
            [G.has_vertex("a", True), G.has_vertex("a", False)]
        ) is None

    def test_edge_requires_consistent_vertices(self, graph_spec):
        # vertices pinned without 'b', but an a-b edge demanded: unsat
        # (the candidate fails its own validation).
        assert graph_spec.solve_state(
            [G.vertices({"a"}), G.has_edge("a", "b", True)]
        ) is None

    def test_derived_queries_validated(self, graph_spec):
        ok = graph_spec.solve_state(
            [G.vertices({"a", "b"}), G.edges([("a", "b")]), G.degree("a", 1)]
        )
        bad = graph_spec.solve_state(
            [G.vertices({"a", "b"}), G.edges([("a", "b")]), G.degree("a", 2)]
        )
        assert ok is not None and bad is None


class TestReplication:
    def test_not_commutative(self, graph_spec):
        assert not graph_spec.commutative_updates

    def test_universal_construction_converges(self, graph_spec):
        from repro.analysis import update_consistent_convergence
        from repro.core.universal import UniversalReplica
        from repro.sim import Cluster
        from repro.sim.network import ExponentialLatency

        c = Cluster(3, lambda p, n: UniversalReplica(p, n, graph_spec),
                    latency=ExponentialLatency(4.0), seed=6)
        c.update(0, G.add_vertex("amy"))
        c.update(1, G.add_vertex("ben"))
        c.update(2, G.add_vertex("cat"))
        c.run()
        c.update(0, G.add_edge("amy", "ben"))
        c.update(1, G.remove_vertex("ben"))  # concurrent conflict!
        c.update(2, G.add_edge("ben", "cat"))
        c.run()
        ok, state, _ = update_consistent_convergence(c, graph_spec)
        assert ok
        # Whatever the arbitration, the invariant holds: every edge's
        # endpoints are members.
        vs, es = state
        assert all(w in vs for e in es for w in e)

    def test_criteria_checkers_work_on_graph_histories(self, graph_spec):
        from repro.core.criteria import SUC, UC
        from repro.core.history import History

        h = History.from_processes(
            [
                [G.add_vertex("a"), (G.has_vertex("a", True), True)],
                [G.add_vertex("b"), (G.has_vertex("a", True), True)],
            ]
        )
        assert UC.check(h, graph_spec)
        assert SUC.check(h, graph_spec)
