"""Unit tests for the queue, stack, log and map specifications."""

from __future__ import annotations

import pytest

from repro.specs import log_spec as L
from repro.specs import map_spec as Mp
from repro.specs import queue_spec as Q
from repro.specs import stack_spec as St


class TestQueue:
    def test_fifo_order(self, queue_spec):
        s = queue_spec.replay([Q.enqueue("a"), Q.enqueue("b")])
        assert queue_spec.observe(s, "front") == "a"
        s = queue_spec.apply(s, Q.pop())
        assert queue_spec.observe(s, "front") == "b"

    def test_pop_on_empty_is_noop(self, queue_spec):
        assert queue_spec.apply((), Q.pop()) == ()

    def test_front_on_empty(self, queue_spec):
        assert queue_spec.observe((), "front") == Q.EMPTY

    def test_split_dequeue_language(self, queue_spec):
        # The paper's split: lookup (front) then delete (pop).
        word = [Q.enqueue(1), Q.front(1), Q.pop(), Q.front(Q.EMPTY)]
        assert queue_spec.recognizes(word)

    def test_size_and_snapshot(self, queue_spec):
        s = queue_spec.replay([Q.enqueue(1), Q.enqueue(2)])
        assert queue_spec.observe(s, "size") == 2
        assert queue_spec.observe(s, "snapshot") == (1, 2)

    def test_solve_state_snapshot(self, queue_spec):
        assert queue_spec.solve_state([Q.snapshot((1, 2))]) == (1, 2)

    def test_solve_state_front_and_size(self, queue_spec):
        s = queue_spec.solve_state([Q.front("h"), Q.size(3)])
        assert s is not None and s[0] == "h" and len(s) == 3

    def test_solve_state_contradictions(self, queue_spec):
        assert queue_spec.solve_state([Q.front("h"), Q.size(0)]) is None
        assert queue_spec.solve_state([Q.front(Q.EMPTY), Q.size(2)]) is None
        assert queue_spec.solve_state([Q.snapshot((1,)), Q.front(2)]) is None


class TestStack:
    def test_lifo_order(self, stack_spec):
        s = stack_spec.replay([St.push("a"), St.push("b")])
        assert stack_spec.observe(s, "top") == "b"
        s = stack_spec.apply(s, St.drop())
        assert stack_spec.observe(s, "top") == "a"

    def test_drop_on_empty_is_noop(self, stack_spec):
        assert stack_spec.apply((), St.drop()) == ()

    def test_split_pop_language(self, stack_spec):
        word = [St.push(1), St.top(1), St.drop(), St.top(St.EMPTY)]
        assert stack_spec.recognizes(word)

    def test_solve_state_top_and_size(self, stack_spec):
        s = stack_spec.solve_state([St.top("t"), St.size(2)])
        assert s is not None and s[-1] == "t" and len(s) == 2

    def test_solve_state_contradictions(self, stack_spec):
        assert stack_spec.solve_state([St.top("t"), St.size(0)]) is None
        assert stack_spec.solve_state([St.snapshot((1, 2)), St.top(1)]) is None


class TestLog:
    def test_append_order(self, log_spec):
        s = log_spec.replay([L.append("x"), L.append("y")])
        assert s == ("x", "y")

    def test_queries(self, log_spec):
        s = ("a", "b")
        assert log_spec.observe(s, "read") == ("a", "b")
        assert log_spec.observe(s, "length") == 2
        assert log_spec.observe(s, "at", (1,)) == "b"
        assert log_spec.observe(s, "at", (5,)) == L.OUT_OF_RANGE

    def test_invertible(self, log_spec):
        s = log_spec.apply(("a",), L.append("b"))
        assert log_spec.unapply(s, L.append("b")) == ("a",)

    def test_unapply_empty_rejected(self, log_spec):
        with pytest.raises(ValueError):
            log_spec.unapply((), L.append("x"))

    def test_solve_state_cells(self, log_spec):
        s = log_spec.solve_state([L.at(0, "a"), L.at(2, "c")])
        assert s is not None and s[0] == "a" and s[2] == "c" and len(s) == 3

    def test_solve_state_contradictions(self, log_spec):
        assert log_spec.solve_state([L.length(1), L.at(2, "x")]) is None
        assert log_spec.solve_state([L.read(("a",)), L.length(2)]) is None
        assert log_spec.solve_state([L.at(0, L.OUT_OF_RANGE), L.length(1)]) is None


class TestMap:
    def test_put_get(self, map_spec):
        s = map_spec.apply({}, Mp.put("k", 1))
        assert map_spec.observe(s, "get", ("k",)) == 1

    def test_get_absent(self, map_spec):
        assert map_spec.observe({}, "get", ("k",)) == Mp.ABSENT

    def test_remove(self, map_spec):
        s = map_spec.replay([Mp.put("k", 1), Mp.remove("k")])
        assert map_spec.observe(s, "get", ("k",)) == Mp.ABSENT

    def test_remove_absent_is_noop(self, map_spec):
        assert map_spec.apply({}, Mp.remove("k")) == {}

    def test_apply_is_pure(self, map_spec):
        s = {"a": 1}
        map_spec.apply(s, Mp.put("b", 2))
        map_spec.apply(s, Mp.remove("a"))
        assert s == {"a": 1}

    def test_keys_and_snapshot(self, map_spec):
        s = map_spec.replay([Mp.put("a", 1), Mp.put("b", 2)])
        assert map_spec.observe(s, "keys") == frozenset({"a", "b"})
        assert map_spec.observe(s, "snapshot") == (("a", 1), ("b", 2))

    def test_solve_state_gets(self, map_spec):
        s = map_spec.solve_state([Mp.get("a", 1), Mp.get("b", Mp.ABSENT)])
        assert s == {"a": 1}

    def test_solve_state_conflicting_gets(self, map_spec):
        assert map_spec.solve_state([Mp.get("a", 1), Mp.get("a", 2)]) is None

    def test_solve_state_keys_constraint(self, map_spec):
        s = map_spec.solve_state([Mp.keys({"a"}), Mp.get("a", 1)])
        assert s == {"a": 1}
        assert map_spec.solve_state([Mp.keys(set()), Mp.get("a", 1)]) is None


class TestMapSolveStateDeterminism:
    """Regression for the uqlint SIM103 self-application fix: the solved
    dict's insertion order must not depend on the process hash seed."""

    def test_key_backfill_is_sorted(self, map_spec):
        s = map_spec.solve_state(
            [Mp.keys({"c", "a", "b"}), Mp.get("b", 7)]
        )
        assert s is not None
        # "b" is pinned by the get first, the backfilled keys follow sorted.
        assert list(s) == ["b", "a", "c"]
        assert s == {"a": None, "b": 7, "c": None}

    def test_solved_state_snapshot_is_stable(self, map_spec):
        s1 = map_spec.solve_state([Mp.keys({"x", "y", "z"})])
        s2 = map_spec.solve_state([Mp.keys({"z", "y", "x"})])
        assert s1 is not None and s2 is not None
        assert list(s1) == list(s2) == ["x", "y", "z"]
