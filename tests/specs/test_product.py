"""Tests for the product UQ-ADT (object composition)."""

from __future__ import annotations

import pytest

from repro.specs import CounterSpec, LogSpec, SetSpec
from repro.specs import counter as C
from repro.specs import log_spec as L
from repro.specs import set_spec as S
from repro.specs.product import ProductSpec, left, right


@pytest.fixture
def prod():
    return ProductSpec(SetSpec(), CounterSpec())


class TestBasics:
    def test_initial_state_is_pair(self, prod):
        assert prod.initial_state() == (frozenset(), 0)

    def test_updates_route_to_components(self, prod):
        s = prod.replay([left(S.insert(1)), right(C.inc(5)), left(S.insert(2))])
        assert s == (frozenset({1, 2}), 5)

    def test_queries_route(self, prod):
        s = (frozenset({1}), 3)
        assert prod.observe(s, "L.read") == frozenset({1})
        assert prod.observe(s, "R.read") == 3

    def test_language(self, prod):
        word = [
            left(S.insert(1)),
            left(S.read({1})),
            right(C.read(0)),
            right(C.inc(2)),
            right(C.read(2)),
        ]
        assert prod.recognizes(word)

    def test_untagged_operation_rejected(self, prod):
        with pytest.raises(ValueError, match="component tag"):
            prod.apply(prod.initial_state(), S.insert(1))

    def test_flags_lift_componentwise(self):
        from repro.specs import GSetSpec, MaxRegisterSpec

        both = ProductSpec(GSetSpec(), MaxRegisterSpec())
        assert both.commutative_updates
        mixed = ProductSpec(SetSpec(), MaxRegisterSpec())
        assert not mixed.commutative_updates
        inv = ProductSpec(CounterSpec(), LogSpec())
        assert inv.invertible_updates

    def test_unapply_routes(self):
        prod = ProductSpec(CounterSpec(), LogSpec())
        s = prod.replay([left(C.inc(3)), right(L.append("x"))])
        back = prod.unapply(s, right(L.append("x")))
        assert back == (3, ())

    def test_solve_state_componentwise(self, prod):
        s = prod.solve_state([left(S.read({1})), right(C.read(7))])
        assert s == (frozenset({1}), 7)

    def test_solve_state_conflict_in_one_component(self, prod):
        assert prod.solve_state([right(C.read(1)), right(C.read(2))]) is None

    def test_canonical(self, prod):
        assert prod.canonical(({1}, 2)) == (frozenset({1}), 2)

    def test_nesting(self):
        inner = ProductSpec(SetSpec(), CounterSpec())
        outer = ProductSpec(inner, LogSpec())
        op = left(left(S.insert(9)))
        s = outer.apply(outer.initial_state(), op)
        assert s == ((frozenset({9}), 0), ())


class TestReplication:
    def test_cross_object_ordering(self):
        """One log for both components: all replicas apply the set update
        and the counter update in the same agreed order, so a derived
        cross-object invariant (counter counts insertions) holds at every
        replica at quiescence."""
        from repro.analysis import update_consistent_convergence
        from repro.core.universal import UniversalReplica
        from repro.sim import Cluster
        from repro.sim.network import ExponentialLatency

        prod = ProductSpec(SetSpec(), CounterSpec())
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, prod),
                    latency=ExponentialLatency(4.0), seed=9)
        for i in range(9):
            pid = i % 3
            c.update(pid, left(S.insert(i)))
            c.update(pid, right(C.inc(1)))
        c.run()
        ok, state, _ = update_consistent_convergence(c, prod)
        assert ok
        assert len(state[0]) == state[1] == 9

    def test_criteria_checkers_on_product_histories(self):
        from repro.core.criteria import SUC, UC
        from repro.core.history import History

        prod = ProductSpec(SetSpec(), CounterSpec())
        h = History.from_processes(
            [
                [left(S.insert(1)), (left(S.read({1})), True)],
                [right(C.inc(2)), (right(C.read(2)), True)],
            ]
        )
        assert UC.check(h, prod)
        assert SUC.check(h, prod)
