"""Unit tests for the register and the Algorithm 2 memory specs."""

from __future__ import annotations

import pytest

from repro.specs import MemorySpec, RegisterSpec
from repro.specs import register as R


class TestRegister:
    def test_initial_value(self):
        assert RegisterSpec().initial_state() is None
        assert RegisterSpec(initial=7).initial_state() == 7

    def test_write_overwrites(self, register_spec):
        assert register_spec.apply(None, R.write("a")) == "a"
        assert register_spec.apply("a", R.write("b")) == "b"

    def test_read_observes(self, register_spec):
        assert register_spec.observe("x", "read") == "x"

    def test_language(self, register_spec):
        assert register_spec.recognizes([R.write(1), R.read(1), R.write(2), R.read(2)])
        assert not register_spec.recognizes([R.write(1), R.read(2)])

    def test_solve_state(self, register_spec):
        assert register_spec.solve_state([R.read("v")]) == "v"
        assert register_spec.solve_state([R.read("v"), R.read("w")]) is None
        assert register_spec.solve_state([]) is None  # the initial value

    def test_unknown_ops_rejected(self, register_spec):
        from repro.core.adt import Update

        with pytest.raises(ValueError):
            register_spec.apply(None, Update("cas", (1, 2)))
        with pytest.raises(ValueError):
            register_spec.observe(None, "swap")


class TestMemory:
    def test_initially_empty(self, memory_spec):
        assert memory_spec.initial_state() == {}

    def test_unwritten_register_reads_initial(self, memory_spec):
        assert memory_spec.observe({}, "read", ("x",)) is None

    def test_write_then_read(self, memory_spec):
        s = memory_spec.apply({}, R.mem_write("x", 5))
        assert memory_spec.observe(s, "read", ("x",)) == 5

    def test_registers_are_independent(self, memory_spec):
        s = memory_spec.apply({}, R.mem_write("x", 5))
        s = memory_spec.apply(s, R.mem_write("y", 6))
        assert memory_spec.observe(s, "read", ("x",)) == 5
        assert memory_spec.observe(s, "read", ("y",)) == 6

    def test_apply_is_pure(self, memory_spec):
        s = {}
        memory_spec.apply(s, R.mem_write("x", 1))
        assert s == {}

    def test_snapshot(self, memory_spec):
        s = memory_spec.apply({}, R.mem_write("x", 1))
        assert memory_spec.observe(s, "snapshot") == {"x": 1}

    def test_language(self, memory_spec):
        word = [
            R.mem_write("x", 1),
            R.mem_read("x", 1),
            R.mem_read("y", None),
            R.mem_write("x", 2),
            R.mem_read("x", 2),
        ]
        assert memory_spec.recognizes(word)

    def test_solve_state_pins_registers(self, memory_spec):
        s = memory_spec.solve_state([R.mem_read("x", 3), R.mem_read("y", 4)])
        assert s == {"x": 3, "y": 4}

    def test_solve_state_conflict(self, memory_spec):
        assert memory_spec.solve_state([R.mem_read("x", 3), R.mem_read("x", 4)]) is None

    def test_solve_state_initial_reads_cost_nothing(self, memory_spec):
        assert memory_spec.solve_state([R.mem_read("x", None)]) == {}

    def test_solve_state_snapshot_pins_whole_state(self, memory_spec):
        from repro.core.adt import Query

        snap = Query("snapshot", (), {"x": 1})
        assert memory_spec.solve_state([snap]) == {"x": 1}
        # A read of another register to a non-initial value contradicts it.
        assert memory_spec.solve_state([snap, R.mem_read("y", 2)]) is None


class TestInitialStateFreshness:
    """Regression tests for the uqlint UQ005 self-application fix: s0 must
    be fresh-or-immutable (Def. 1), even when a spec is configured with a
    mutable initial value."""

    def test_mutable_initial_is_not_shared_between_replays(self):
        spec = RegisterSpec(initial=["seed"])
        first = spec.initial_state()
        first.append("corruption")
        assert spec.initial_state() == ["seed"]

    def test_nested_mutable_initial_is_deep_fresh(self):
        spec = RegisterSpec(initial={"inner": []})
        first = spec.initial_state()
        first["inner"].append(1)
        assert spec.initial_state() == {"inner": []}

    def test_immutable_initial_still_cheap_identity(self):
        marker = object()  # opaque immutables pass through unchanged
        assert RegisterSpec(initial=marker).initial_state() is marker

    def test_fresh_state_helper_covers_container_shapes(self):
        from repro.core.adt import fresh_state

        value = {"k": [1, {2}, (3, [4])]}
        copy = fresh_state(value)
        assert copy == value
        copy["k"][1].add(99)
        copy["k"][2][1].append(5)
        assert value == {"k": [1, {2}, (3, [4])]}
