"""Property tests: every spec's ``solve_state`` is sound — a returned state
actually satisfies every constraint it was given.

(Completeness — returning a state whenever one exists — is spec-specific
and covered by the unit tests; soundness is what the SEC/EC checkers rely
on for never producing false positives.)
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.adt import Query
from repro.specs import (
    CounterSpec,
    FlagSpec,
    GSetSpec,
    LogSpec,
    MapSpec,
    MemorySpec,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    StackSpec,
)

_VALUES = st.integers(0, 3)
_SUBSETS = st.sets(_VALUES, max_size=4).map(frozenset)


set_constraints = st.lists(
    st.one_of(
        _SUBSETS.map(lambda s: Query("read", (), s)),
        st.tuples(_VALUES, st.booleans()).map(
            lambda t: Query("contains", (t[0],), t[1])
        ),
    ),
    max_size=4,
)

counter_constraints = st.lists(
    st.one_of(
        st.integers(-5, 5).map(lambda v: Query("read", (), v)),
        st.sampled_from([-1, 0, 1]).map(lambda s: Query("sign", (), s)),
    ),
    max_size=3,
)

memory_constraints = st.lists(
    st.tuples(st.sampled_from("xyz"), st.one_of(st.none(), st.integers(0, 3))).map(
        lambda t: Query("read", (t[0],), t[1])
    ),
    max_size=4,
)

log_constraints = st.lists(
    st.one_of(
        st.lists(_VALUES, max_size=3).map(lambda xs: Query("read", (), tuple(xs))),
        st.integers(0, 3).map(lambda n: Query("length", (), n)),
        st.tuples(st.integers(0, 3), _VALUES).map(
            lambda t: Query("at", (t[0],), t[1])
        ),
    ),
    max_size=3,
)

map_constraints = st.lists(
    st.one_of(
        st.tuples(st.sampled_from("ab"), st.one_of(st.just("<absent>"), _VALUES)).map(
            lambda t: Query("get", (t[0],), t[1])
        ),
        st.sets(st.sampled_from("ab"), max_size=2).map(
            lambda ks: Query("keys", (), frozenset(ks))
        ),
    ),
    max_size=3,
)

queue_constraints = st.lists(
    st.one_of(
        st.lists(_VALUES, max_size=3).map(lambda xs: Query("snapshot", (), tuple(xs))),
        st.integers(0, 3).map(lambda n: Query("size", (), n)),
        st.one_of(st.just("<empty>"), _VALUES).map(lambda v: Query("front", (), v)),
    ),
    max_size=3,
)

stack_constraints = st.lists(
    st.one_of(
        st.lists(_VALUES, max_size=3).map(lambda xs: Query("snapshot", (), tuple(xs))),
        st.integers(0, 3).map(lambda n: Query("size", (), n)),
        st.one_of(st.just("<empty>"), _VALUES).map(lambda v: Query("top", (), v)),
    ),
    max_size=3,
)


def _assert_sound(spec, constraints):
    state = spec.solve_state(constraints)
    if state is not None:
        for q in constraints:
            assert spec.satisfies(state, q), (state, q)


@given(set_constraints)
@settings(max_examples=150, deadline=None)
def test_set_solve_state_sound(cs):
    _assert_sound(SetSpec(), cs)


@given(set_constraints)
@settings(max_examples=100, deadline=None)
def test_gset_solve_state_sound(cs):
    _assert_sound(GSetSpec(), cs)


@given(counter_constraints)
@settings(max_examples=100, deadline=None)
def test_counter_solve_state_sound(cs):
    _assert_sound(CounterSpec(), cs)


@given(memory_constraints)
@settings(max_examples=100, deadline=None)
def test_memory_solve_state_sound(cs):
    _assert_sound(MemorySpec(), cs)


@given(st.lists(st.integers(0, 3).map(lambda v: Query("read", (), v)), max_size=3))
@settings(max_examples=60, deadline=None)
def test_register_solve_state_sound(cs):
    _assert_sound(RegisterSpec(), cs)


@given(log_constraints)
@settings(max_examples=100, deadline=None)
def test_log_solve_state_sound(cs):
    _assert_sound(LogSpec(), cs)


@given(map_constraints)
@settings(max_examples=100, deadline=None)
def test_map_solve_state_sound(cs):
    _assert_sound(MapSpec(), cs)


@given(queue_constraints)
@settings(max_examples=100, deadline=None)
def test_queue_solve_state_sound(cs):
    _assert_sound(QueueSpec(), cs)


@given(stack_constraints)
@settings(max_examples=100, deadline=None)
def test_stack_solve_state_sound(cs):
    _assert_sound(StackSpec(), cs)


@given(st.lists(st.booleans().map(lambda b: Query("read", (), b)), max_size=3))
@settings(max_examples=40, deadline=None)
def test_flag_solve_state_sound(cs):
    _assert_sound(FlagSpec(), cs)
