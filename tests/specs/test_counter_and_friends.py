"""Unit tests for counter, g-set, max-register and flag specs."""

from __future__ import annotations

import pytest

from repro.core.adt import Query, Update
from repro.specs import counter as C
from repro.specs import gset as G
from repro.specs import max_register as M
from repro.specs.flag import disable, enable
from repro.specs.flag import read as flag_read


class TestCounter:
    def test_inc_dec(self, counter_spec):
        s = counter_spec.apply(0, C.inc(3))
        s = counter_spec.apply(s, C.dec(1))
        assert s == 2

    def test_commutative_flag(self, counter_spec):
        assert counter_spec.commutative_updates

    def test_invertibility(self, counter_spec):
        s = counter_spec.apply(5, C.inc(3))
        assert counter_spec.unapply(s, C.inc(3)) == 5
        s = counter_spec.apply(5, C.dec(2))
        assert counter_spec.unapply(s, C.dec(2)) == 5

    def test_sign_query(self, counter_spec):
        assert counter_spec.observe(-4, "sign") == -1
        assert counter_spec.observe(0, "sign") == 0
        assert counter_spec.observe(9, "sign") == 1

    def test_solve_state(self, counter_spec):
        assert counter_spec.solve_state([C.read(5)]) == 5
        assert counter_spec.solve_state([C.read(5), C.read(6)]) is None
        assert counter_spec.solve_state([]) == 0

    def test_solve_state_signs(self, counter_spec):
        assert counter_spec.solve_state([Query("sign", (), 1)]) == 1
        two_signs = [Query("sign", (), 1), Query("sign", (), -1)]
        assert counter_spec.solve_state(two_signs) is None

    def test_solve_state_read_vs_sign(self, counter_spec):
        ok = [C.read(-3), Query("sign", (), -1)]
        bad = [C.read(-3), Query("sign", (), 1)]
        assert counter_spec.solve_state(ok) == -3
        assert counter_spec.solve_state(bad) is None


class TestGSet:
    def test_insert_only(self, gset_spec):
        s = gset_spec.apply(frozenset(), G.insert(1))
        assert s == frozenset({1})

    def test_no_delete(self, gset_spec):
        with pytest.raises(ValueError, match="no delete"):
            gset_spec.apply(frozenset({1}), Update("delete", (1,)))

    def test_commutative_flag(self, gset_spec):
        assert gset_spec.commutative_updates

    def test_solve_state(self, gset_spec):
        assert gset_spec.solve_state([G.read({1})]) == frozenset({1})
        assert gset_spec.solve_state([G.contains(2, True)]) == frozenset({2})


class TestMaxRegister:
    def test_keeps_maximum(self, max_register_spec):
        s = max_register_spec.apply(0, M.write_max(5))
        s = max_register_spec.apply(s, M.write_max(3))
        assert s == 5

    def test_floor(self):
        from repro.specs import MaxRegisterSpec

        spec = MaxRegisterSpec(floor=10)
        assert spec.apply(spec.initial_state(), M.write_max(3)) == 10

    def test_commutative_flag(self, max_register_spec):
        assert max_register_spec.commutative_updates

    def test_solve_state_below_floor_unsat(self, max_register_spec):
        assert max_register_spec.solve_state([M.read(-1)]) is None
        assert max_register_spec.solve_state([M.read(3)]) == 3


class TestFlag:
    def test_enable_disable(self, flag_spec):
        assert flag_spec.apply(False, enable()) is True
        assert flag_spec.apply(True, disable()) is False

    def test_not_commutative(self, flag_spec):
        assert not flag_spec.commutative_updates

    def test_language(self, flag_spec):
        assert flag_spec.recognizes([enable(), flag_read(True), disable(), flag_read(False)])
        assert not flag_spec.recognizes([enable(), flag_read(False)])

    def test_solve_state(self, flag_spec):
        assert flag_spec.solve_state([flag_read(True)]) is True
        assert flag_spec.solve_state([flag_read(True), flag_read(False)]) is None


class TestMaxRegisterInitialState:
    """Regression for the uqlint UQ005 self-application fix: the floor is
    coerced to a plain float so s0 is always immutable (Def. 1)."""

    def test_floor_is_coerced_to_float(self):
        from repro.specs import MaxRegisterSpec

        class EvilFloat(float):
            payload: list = []

        spec = MaxRegisterSpec(floor=EvilFloat(2.0))
        s0 = spec.initial_state()
        assert type(s0) is float and s0 == 2.0

    def test_initial_state_is_fresh_each_call(self):
        from repro.specs import MaxRegisterSpec

        spec = MaxRegisterSpec(floor=7)
        assert spec.initial_state() == spec.initial_state() == 7.0
