"""Property tests: ``apply_batch`` is observationally equal to folding
``apply`` — the contract every batch fast path must honour."""

from __future__ import annotations

import functools

from hypothesis import given, settings, strategies as st

from repro.specs import CounterSpec, LogSpec, MemorySpec, SetSpec
from repro.specs import counter as C
from repro.specs import log_spec as L
from repro.specs import register as R
from repro.specs import set_spec as S


def fold(spec, state, updates):
    return functools.reduce(spec.apply, updates, state)


set_updates = st.lists(
    st.tuples(st.booleans(), st.integers(0, 5)).map(
        lambda t: S.insert(t[1]) if t[0] else S.delete(t[1])
    ),
    max_size=30,
)
counter_updates = st.lists(
    st.tuples(st.booleans(), st.integers(1, 9)).map(
        lambda t: C.inc(t[1]) if t[0] else C.dec(t[1])
    ),
    max_size=200,
)
log_updates = st.lists(st.integers(0, 9).map(L.append), max_size=30)
memory_updates = st.lists(
    st.tuples(st.sampled_from("xyz"), st.integers(0, 9)).map(
        lambda t: R.mem_write(t[0], t[1])
    ),
    max_size=30,
)


@given(st.frozensets(st.integers(0, 5), max_size=5), set_updates)
@settings(max_examples=150, deadline=None)
def test_set_batch_equals_fold(state, updates):
    spec = SetSpec()
    assert spec.apply_batch(state, updates) == fold(spec, state, updates)


@given(st.integers(-50, 50), counter_updates)
@settings(max_examples=100, deadline=None)
def test_counter_batch_equals_fold(state, updates):
    spec = CounterSpec()
    assert spec.apply_batch(state, updates) == fold(spec, state, updates)


@given(st.lists(st.integers(0, 9), max_size=5).map(tuple), log_updates)
@settings(max_examples=100, deadline=None)
def test_log_batch_equals_fold(state, updates):
    spec = LogSpec()
    assert spec.apply_batch(state, updates) == fold(spec, state, updates)


@given(
    st.dictionaries(st.sampled_from("xyz"), st.integers(0, 9), max_size=3),
    memory_updates,
)
@settings(max_examples=100, deadline=None)
def test_memory_batch_equals_fold(state, updates):
    spec = MemorySpec()
    assert spec.apply_batch(state, updates) == fold(spec, state, updates)


def test_counter_batch_crosses_vectorization_threshold():
    spec = CounterSpec()
    updates = [C.inc(1)] * 100 + [C.dec(2)] * 50
    assert spec.apply_batch(0, updates) == 0 + 100 - 100


def test_default_batch_is_the_fold():
    from repro.specs import FlagSpec
    from repro.specs.flag import disable, enable

    spec = FlagSpec()
    assert spec.apply_batch(False, [enable(), disable(), enable()]) is True


def test_replica_batch_and_loop_agree():
    from repro.core.universal import UniversalReplica
    from repro.sim import Cluster
    from repro.sim.network import ExponentialLatency
    from repro.sim.workload import conflict_heavy_set_workload, run_workload

    spec = SetSpec()
    wl = conflict_heavy_set_workload(3, 50, seed=3)
    fast = Cluster(3, lambda p, n: UniversalReplica(p, n, spec, batch_replay=True),
                   latency=ExponentialLatency(3.0), seed=3)
    slow = Cluster(3, lambda p, n: UniversalReplica(p, n, spec, batch_replay=False),
                   latency=ExponentialLatency(3.0), seed=3)
    run_workload(fast, wl)
    run_workload(slow, wl)
    for pid in range(3):
        assert fast.query(pid, "read") == slow.query(pid, "read")
