"""Unit tests for the simulated network: delays, FIFO, holds, partitions."""

from __future__ import annotations

import numpy as np
import pytest

import heapq

from repro.sim.network import (
    ChannelInvariantError,
    DuplicatingNetwork,
    ExponentialLatency,
    FixedLatency,
    LossyNetwork,
    Message,
    Network,
    UniformLatency,
)


def drain(net):
    out = []
    while True:
        m = net.pop_next()
        if m is None:
            return out
        out.append(m)


class TestLatencyModels:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        assert FixedLatency(2.5).delay(0, 1, rng) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        m = UniformLatency(1.0, 3.0)
        for _ in range(100):
            assert 1.0 <= m.delay(0, 1, rng) <= 3.0

    def test_uniform_validates_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_exponential_positive(self):
        rng = np.random.default_rng(0)
        m = ExponentialLatency(2.0)
        assert all(m.delay(0, 1, rng) >= 0 for _ in range(100))

    def test_exponential_validates_scale(self):
        with pytest.raises(ValueError):
            ExponentialLatency(0)

    def test_determinism_from_seed(self):
        a = [UniformLatency().delay(0, 1, np.random.default_rng(7)) for _ in range(1)]
        b = [UniformLatency().delay(0, 1, np.random.default_rng(7)) for _ in range(1)]
        assert a == b


class TestSendAndDeliver:
    def test_delivery_in_time_order(self):
        net = Network(2, latency=FixedLatency(1.0))
        net.send(0, 1, "a", now=5.0)
        net.send(0, 1, "b", now=0.0)
        msgs = drain(net)
        assert [m.payload for m in msgs] == ["b", "a"]

    def test_self_send_is_instantaneous(self):
        net = Network(2, latency=FixedLatency(10.0))
        m = net.send(0, 0, "x", now=3.0)
        assert m.deliver_at == 3.0

    def test_broadcast_excludes_sender(self):
        net = Network(4)
        msgs = net.broadcast(1, "p", now=0.0)
        assert sorted(m.dst for m in msgs) == [0, 2, 3]

    def test_counters(self):
        net = Network(3)
        net.broadcast(0, "p", now=0.0)
        assert net.sent_count == 2
        drain(net)
        assert net.delivered_count == 2

    def test_tie_break_is_deterministic(self):
        net = Network(2, latency=FixedLatency(1.0))
        net.send(0, 1, "first", now=0.0)
        net.send(1, 0, "second", now=0.0)
        assert [m.payload for m in drain(net)] == ["first", "second"]

    def test_pid_bounds(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 5, "x", now=0.0)


class TestFifo:
    def test_fifo_preserves_per_channel_order(self):
        # Heavily random latencies, but FIFO must never reorder a channel.
        net = Network(2, latency=ExponentialLatency(5.0),
                      rng=np.random.default_rng(3), fifo=True)
        for i in range(50):
            net.send(0, 1, i, now=float(i) * 0.01)
        payloads = [m.payload for m in drain(net)]
        assert payloads == sorted(payloads)

    def test_non_fifo_can_reorder(self):
        net = Network(2, latency=ExponentialLatency(5.0),
                      rng=np.random.default_rng(3), fifo=False)
        for i in range(50):
            net.send(0, 1, i, now=float(i) * 0.01)
        payloads = [m.payload for m in drain(net)]
        assert payloads != sorted(payloads)  # seed chosen to exhibit reorder


class TestHoldsAndPartitions:
    def test_hold_parks_messages(self):
        net = Network(2)
        net.hold(0, 1)
        net.send(0, 1, "x", now=0.0)
        assert net.pop_next() is None
        assert net.pending_count() == 1

    def test_hold_catches_in_flight(self):
        net = Network(2, latency=FixedLatency(5.0))
        net.send(0, 1, "x", now=0.0)
        net.hold(0, 1)
        assert net.pop_next() is None

    def test_release_delivers_held(self):
        net = Network(2)
        net.hold(0, 1)
        net.send(0, 1, "x", now=0.0)
        net.release(0, 1, now=10.0)
        m = net.pop_next()
        assert m.payload == "x"
        assert m.deliver_at >= 10.0

    def test_hold_is_directional(self):
        net = Network(2)
        net.hold(0, 1)
        net.send(1, 0, "back", now=0.0)
        assert net.pop_next().payload == "back"

    def test_partition_blocks_both_ways(self):
        net = Network(4)
        net.partition([[0, 1], [2, 3]])
        net.send(0, 2, "x", now=0.0)
        net.send(3, 1, "y", now=0.0)
        net.send(0, 1, "inside", now=0.0)
        assert net.pop_next().payload == "inside"
        assert net.pop_next() is None

    def test_heal_restores_reliability(self):
        net = Network(2)
        net.partition([[0], [1]])
        net.send(0, 1, "x", now=0.0)
        net.heal(now=4.0)
        assert net.pop_next().payload == "x"

    def test_drop_messages(self):
        net = Network(2)
        net.send(0, 1, "a", now=0.0)
        net.send(1, 0, "b", now=0.0)
        dropped = net.drop_messages(lambda m: m.src == 0)
        assert dropped == 1
        assert [m.payload for m in drain(net)] == ["b"]

    def test_hold_rejects_self_channel(self):
        net = Network(2)
        with pytest.raises(ValueError, match="self-channel"):
            net.hold(1, 1)

    def test_partition_rejects_overlapping_groups(self):
        net = Network(4)
        with pytest.raises(ValueError, match="disjoint"):
            net.partition([[0, 1], [1, 2, 3]])

    def test_partition_validates_pids(self):
        net = Network(3)
        with pytest.raises(ValueError, match="out of range"):
            net.partition([[0], [1, 7]])


class TestFifoRegressions:
    """The hold/release/drop adversary actions must preserve per-channel
    FIFO order — regressions for the floor-corruption bugs."""

    def test_release_refloors_against_later_sends(self):
        # Regression: release() used to reschedule a parked message without
        # consulting or updating _last_fifo_deliver_at, so a message sent
        # on the channel afterwards (with an earlier `now`, as an adversary
        # replaying traffic may) could undercut it and be delivered first.
        net = Network(2, latency=FixedLatency(1.0), fifo=True)
        net.hold(0, 1)
        net.send(0, 1, "held", now=0.0)
        net.release(0, 1, now=10.0)          # parked message now due at 10
        net.send(0, 1, "later", now=2.0)     # must not sneak in before it
        assert [m.payload for m in drain(net)] == ["held", "later"]

    def test_release_keeps_channel_send_order(self):
        # Several messages parked on one channel: released in send order
        # even when their original delivery times were inverted by holds.
        net = Network(2, latency=ExponentialLatency(5.0),
                      rng=np.random.default_rng(3), fifo=True)
        net.hold(0, 1)
        for i in range(20):
            net.send(0, 1, i, now=float(i) * 0.01)
        net.release(0, 1, now=50.0)
        payloads = [m.payload for m in drain(net)]
        assert payloads == sorted(payloads)

    def test_release_updates_floor_for_future_sends(self):
        net = Network(2, latency=FixedLatency(1.0), fifo=True)
        net.hold(0, 1)
        net.send(0, 1, "a", now=0.0)
        net.release(0, 1, now=10.0)
        b = net.send(0, 1, "b", now=10.0)
        assert b.deliver_at >= 10.0

    def test_drop_refloors_channel(self):
        # Regression: a floor left pointing at a dropped message would keep
        # delaying the channel forever.
        net = Network(2, latency=ExponentialLatency(1.0), fifo=True)
        slow = Message(0, 1, "slow", 0.0, 1000.0, next(net._seq))
        net._last_fifo_deliver_at[(0, 1)] = slow.deliver_at
        net._commit(slow)
        net.drop_messages(lambda m: m.payload == "slow")
        fast = net.send(0, 1, "fast", now=1.0)
        assert fast.deliver_at < 1000.0
        assert [m.payload for m in drain(net)] == ["fast"]

    def test_drop_keeps_floor_above_deliveries(self):
        # After a drop the floor must still cover what was already
        # delivered on the channel.
        net = Network(2, latency=FixedLatency(5.0), fifo=True)
        net.send(0, 1, "a", now=0.0)
        net.send(0, 1, "b", now=1.0)
        assert net.pop_next().payload == "a"  # delivered at t=5
        net.drop_messages(lambda m: m.payload == "b")
        c = net.send(0, 1, "c", now=0.0)
        assert c.deliver_at >= 5.0
        drain(net)  # invariant checker would raise on a reorder

    def test_fifo_order_through_hold_release_cycles(self):
        net = Network(3, latency=ExponentialLatency(3.0),
                      rng=np.random.default_rng(11), fifo=True)
        for i in range(10):
            net.send(0, 1, i, now=float(i))
        net.hold(0, 1)
        for i in range(10, 20):
            net.send(0, 1, i, now=float(i))
        net.release(0, 1, now=25.0)
        for i in range(20, 30):
            net.send(0, 1, i, now=float(i) + 20.0)
        payloads = [m.payload for m in drain(net) if m.dst == 1]
        assert payloads == sorted(payloads)


class TestChannelInvariantChecker:
    def test_enabled_on_fifo_networks(self):
        assert Network(2, fifo=True).invariants is not None
        assert Network(2, fifo=False).invariants is None
        assert Network(2, fifo=True, check_invariants=False).invariants is None

    def test_catches_rogue_adversary(self):
        # An adversary that injects under the floor (bypassing send) is
        # caught at pop_next, not silently delivered.
        net = Network(2, latency=FixedLatency(1.0), fifo=True)
        net.send(0, 1, "a", now=10.0)  # due at 11
        rogue = Message(0, 1, "rogue", 0.0, 0.5, next(net._seq))
        heapq.heappush(net._heap, (rogue.sort_key(), rogue))
        assert net.pop_next().payload == "rogue"
        with pytest.raises(ChannelInvariantError, match="FIFO violation"):
            net.pop_next()

    def test_counts_observations(self):
        net = Network(3, fifo=True)
        net.broadcast(0, "x", now=0.0)
        drain(net)
        assert net.invariants.observed == 2
        assert net.invariants.last_delivery(0, 1) is not None


class TestFaultInjectionNetworks:
    def test_lossy_drops_messages(self):
        net = LossyNetwork(2, rng=np.random.default_rng(0),
                           drop_probability=0.5)
        for i in range(100):
            net.send(0, 1, i, now=float(i))
        assert 0 < net.lost_count < 100
        assert net.sent_count == 100
        assert len(drain(net)) == 100 - net.lost_count

    def test_lossy_never_drops_self_sends(self):
        net = LossyNetwork(2, rng=np.random.default_rng(0),
                           drop_probability=1.0)
        net.send(0, 0, "me", now=0.0)
        assert net.pop_next().payload == "me"

    def test_lossy_validates_probability(self):
        with pytest.raises(ValueError, match="probability"):
            LossyNetwork(2, drop_probability=1.5)

    def test_lossy_fifo_survivors_stay_ordered(self):
        net = LossyNetwork(2, latency=ExponentialLatency(4.0),
                           rng=np.random.default_rng(7), fifo=True,
                           drop_probability=0.3)
        for i in range(80):
            net.send(0, 1, i, now=float(i) * 0.1)
        payloads = [m.payload for m in drain(net)]
        assert payloads == sorted(payloads)  # gaps allowed, reorders not
        assert net.lost_count > 0

    def test_duplicating_redelivers(self):
        net = DuplicatingNetwork(2, rng=np.random.default_rng(1),
                                 duplicate_probability=0.5)
        for i in range(50):
            net.send(0, 1, i, now=float(i))
        msgs = drain(net)
        assert net.duplicated_count > 0
        assert len(msgs) == 50 + net.duplicated_count

    def test_duplicating_validates_probability(self):
        with pytest.raises(ValueError, match="probability"):
            DuplicatingNetwork(2, duplicate_probability=-0.1)

    def test_duplicate_arrives_after_original_on_fifo(self):
        net = DuplicatingNetwork(2, latency=ExponentialLatency(4.0),
                                 rng=np.random.default_rng(5), fifo=True,
                                 duplicate_probability=0.5)
        for i in range(60):
            net.send(0, 1, i, now=float(i) * 0.1)
        seen = []
        for m in drain(net):  # checker active: raises on any reorder
            if m.payload not in seen:
                seen.append(m.payload)
        assert seen == sorted(seen)
        assert net.duplicated_count > 0
