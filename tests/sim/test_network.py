"""Unit tests for the simulated network: delays, FIFO, holds, partitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.network import (
    ExponentialLatency,
    FixedLatency,
    Network,
    UniformLatency,
)


def drain(net):
    out = []
    while True:
        m = net.pop_next()
        if m is None:
            return out
        out.append(m)


class TestLatencyModels:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        assert FixedLatency(2.5).delay(0, 1, rng) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        m = UniformLatency(1.0, 3.0)
        for _ in range(100):
            assert 1.0 <= m.delay(0, 1, rng) <= 3.0

    def test_uniform_validates_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_exponential_positive(self):
        rng = np.random.default_rng(0)
        m = ExponentialLatency(2.0)
        assert all(m.delay(0, 1, rng) >= 0 for _ in range(100))

    def test_exponential_validates_scale(self):
        with pytest.raises(ValueError):
            ExponentialLatency(0)

    def test_determinism_from_seed(self):
        a = [UniformLatency().delay(0, 1, np.random.default_rng(7)) for _ in range(1)]
        b = [UniformLatency().delay(0, 1, np.random.default_rng(7)) for _ in range(1)]
        assert a == b


class TestSendAndDeliver:
    def test_delivery_in_time_order(self):
        net = Network(2, latency=FixedLatency(1.0))
        net.send(0, 1, "a", now=5.0)
        net.send(0, 1, "b", now=0.0)
        msgs = drain(net)
        assert [m.payload for m in msgs] == ["b", "a"]

    def test_self_send_is_instantaneous(self):
        net = Network(2, latency=FixedLatency(10.0))
        m = net.send(0, 0, "x", now=3.0)
        assert m.deliver_at == 3.0

    def test_broadcast_excludes_sender(self):
        net = Network(4)
        msgs = net.broadcast(1, "p", now=0.0)
        assert sorted(m.dst for m in msgs) == [0, 2, 3]

    def test_counters(self):
        net = Network(3)
        net.broadcast(0, "p", now=0.0)
        assert net.sent_count == 2
        drain(net)
        assert net.delivered_count == 2

    def test_tie_break_is_deterministic(self):
        net = Network(2, latency=FixedLatency(1.0))
        net.send(0, 1, "first", now=0.0)
        net.send(1, 0, "second", now=0.0)
        assert [m.payload for m in drain(net)] == ["first", "second"]

    def test_pid_bounds(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 5, "x", now=0.0)


class TestFifo:
    def test_fifo_preserves_per_channel_order(self):
        # Heavily random latencies, but FIFO must never reorder a channel.
        net = Network(2, latency=ExponentialLatency(5.0),
                      rng=np.random.default_rng(3), fifo=True)
        for i in range(50):
            net.send(0, 1, i, now=float(i) * 0.01)
        payloads = [m.payload for m in drain(net)]
        assert payloads == sorted(payloads)

    def test_non_fifo_can_reorder(self):
        net = Network(2, latency=ExponentialLatency(5.0),
                      rng=np.random.default_rng(3), fifo=False)
        for i in range(50):
            net.send(0, 1, i, now=float(i) * 0.01)
        payloads = [m.payload for m in drain(net)]
        assert payloads != sorted(payloads)  # seed chosen to exhibit reorder


class TestHoldsAndPartitions:
    def test_hold_parks_messages(self):
        net = Network(2)
        net.hold(0, 1)
        net.send(0, 1, "x", now=0.0)
        assert net.pop_next() is None
        assert net.pending_count() == 1

    def test_hold_catches_in_flight(self):
        net = Network(2, latency=FixedLatency(5.0))
        net.send(0, 1, "x", now=0.0)
        net.hold(0, 1)
        assert net.pop_next() is None

    def test_release_delivers_held(self):
        net = Network(2)
        net.hold(0, 1)
        net.send(0, 1, "x", now=0.0)
        net.release(0, 1, now=10.0)
        m = net.pop_next()
        assert m.payload == "x"
        assert m.deliver_at >= 10.0

    def test_hold_is_directional(self):
        net = Network(2)
        net.hold(0, 1)
        net.send(1, 0, "back", now=0.0)
        assert net.pop_next().payload == "back"

    def test_partition_blocks_both_ways(self):
        net = Network(4)
        net.partition([[0, 1], [2, 3]])
        net.send(0, 2, "x", now=0.0)
        net.send(3, 1, "y", now=0.0)
        net.send(0, 1, "inside", now=0.0)
        assert net.pop_next().payload == "inside"
        assert net.pop_next() is None

    def test_heal_restores_reliability(self):
        net = Network(2)
        net.partition([[0], [1]])
        net.send(0, 1, "x", now=0.0)
        net.heal(now=4.0)
        assert net.pop_next().payload == "x"

    def test_drop_messages(self):
        net = Network(2)
        net.send(0, 1, "a", now=0.0)
        net.send(1, 0, "b", now=0.0)
        dropped = net.drop_messages(lambda m: m.src == 0)
        assert dropped == 1
        assert [m.payload for m in drain(net)] == ["b"]
