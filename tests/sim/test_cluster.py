"""Unit tests for the cluster runtime: wait-freedom, crashes, traces."""

from __future__ import annotations

import pytest

from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.cluster import CrashedProcessError, OpRecord
from repro.sim.network import FixedLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S


def make(n=3, **kw):
    spec = SetSpec()
    kw.setdefault("latency", FixedLatency(1.0))
    return Cluster(n, lambda pid, total: UniversalReplica(pid, total, spec), **kw)


class TestWaitFreedom:
    def test_update_completes_without_delivery(self):
        c = make()
        c.update(0, S.insert(1))
        # The operation is done; messages are still in flight.
        assert c.network.pending_count() == 2
        assert c.query(0, "read") == frozenset({1})

    def test_query_never_advances_time_or_network(self):
        c = make()
        c.update(0, S.insert(1))
        pending = c.network.pending_count()
        t = c.now
        c.query(1, "read")
        assert c.network.pending_count() == pending
        assert c.now == t

    def test_operations_wait_free_under_total_isolation(self):
        c = make()
        c.partition([[0], [1], [2]])
        for i in range(10):
            c.update(0, S.insert(i))
        assert c.query(0, "read") == frozenset(range(10))


class TestDelivery:
    def test_step_advances_time(self):
        c = make()
        c.update(0, S.insert(1))
        assert c.step()
        assert c.now >= 1.0

    def test_run_drains_everything(self):
        c = make()
        c.update(0, S.insert(1))
        c.update(1, S.insert(2))
        steps = c.run()
        assert steps == 4  # two broadcasts to two peers each
        assert c.quiescent()

    def test_run_until_partial(self):
        c = make(latency=FixedLatency(10.0))
        c.update(0, S.insert(1))
        c.run_until(5.0)
        assert c.now == 5.0
        assert c.query(1, "read") == frozenset()
        c.run_until(10.0)
        assert c.query(1, "read") == frozenset({1})

    def test_run_guardrail(self):
        c = make()
        c.update(0, S.insert(1))
        with pytest.raises(RuntimeError, match="quiesce"):
            c.run(max_steps=1)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            make().advance(-1.0)


class TestCrashes:
    def test_crashed_process_rejects_operations(self):
        c = make()
        c.crash(1)
        with pytest.raises(CrashedProcessError):
            c.update(1, S.insert(1))
        with pytest.raises(CrashedProcessError):
            c.query(1, "read")

    def test_messages_to_crashed_are_dropped(self):
        c = make()
        c.update(0, S.insert(1))
        c.crash(1)
        c.run()
        assert c.dropped_to_crashed == 1
        assert c.query(2, "read") == frozenset({1})

    def test_crash_with_drop_outgoing_loses_in_flight(self):
        c = make()
        c.update(0, S.insert(1))
        c.crash(0, drop_outgoing=True)
        c.run()
        assert c.query(1, "read") == frozenset()

    def test_survivors_still_converge_after_crash(self):
        # Wait-freedom: any number of processes may crash.
        c = make(n=5)
        c.update(0, S.insert(1))
        c.run()
        c.crash(0)
        c.crash(1)
        c.update(2, S.insert(2))
        c.update(4, S.delete(1))
        c.run()
        states = {frozenset(s) for s in c.states().values()}
        assert len(states) == 1

    def test_alive_listing(self):
        c = make()
        c.crash(2)
        assert c.alive() == [0, 1]


class TestTrace:
    def test_records_all_operations_in_order(self):
        c = make()
        c.update(0, S.insert(1))
        c.query(1, "read")
        c.update(1, S.insert(2))
        assert len(c.trace) == 3
        assert [r.pid for r in c.trace] == [0, 1, 1]

    def test_query_record_captures_output(self):
        c = make()
        c.update(0, S.insert(1))
        out = c.query(0, "read")
        record = c.trace.records[-1]
        assert record.label.output == out

    def test_to_history_program_order(self):
        c = make()
        c.update(0, S.insert(1))
        c.update(1, S.insert(2))
        c.update(0, S.delete(1))
        h = c.trace.to_history()
        e0, e1, e2 = h.events
        assert h.precedes(e0, e2)
        assert not h.precedes(e0, e1)

    def test_suc_witness_requires_metadata(self):
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, SetSpec(), track_witness=False))
        c.update(0, S.insert(1))
        with pytest.raises(ValueError, match="timestamp"):
            c.trace.suc_witness()

    def test_updates_queries_split(self):
        c = make()
        c.update(0, S.insert(1))
        c.query(0, "read")
        assert len(c.trace.updates()) == 1
        assert len(c.trace.queries()) == 1

    def test_suc_witness_names_record_missing_timestamp(self):
        c = make()
        c.update(0, S.insert(1))
        record = c.trace.records[-1]
        meta = dict(record.meta)
        del meta["timestamp"]
        c.trace.records[-1] = OpRecord(
            record.eid, record.pid, record.label, record.time, meta
        )
        with pytest.raises(ValueError, match=rf"record {record.eid} lacks a timestamp"):
            c.trace.suc_witness()

    def test_suc_witness_requires_query_visibility(self):
        c = make()
        c.update(0, S.insert(1))
        c.query(0, "read")
        record = c.trace.records[-1]
        meta = dict(record.meta)
        del meta["visible"]
        c.trace.records[-1] = OpRecord(
            record.eid, record.pid, record.label, record.time, meta
        )
        with pytest.raises(
            ValueError, match=rf"query record {record.eid} lacks visibility"
        ):
            c.trace.suc_witness()

    def test_to_history_orders_every_process_chain(self):
        c = make()
        script = [(0, 1), (1, 2), (0, 3), (2, 4), (1, 5), (0, 6)]
        for pid, value in script:
            c.update(pid, S.insert(value))
        c.query(1, "read")
        h = c.trace.to_history()
        by_pid: dict[int, list] = {}
        for ev in h.events:
            by_pid.setdefault(ev.pid, []).append(ev)
        # Same process: totally ordered by invocation order (and only
        # forward — program order is irreflexive and antisymmetric).
        for chain in by_pid.values():
            for i, a in enumerate(chain):
                for b in chain[i + 1:]:
                    assert h.precedes(a, b)
                    assert not h.precedes(b, a)
        # Different processes: never ordered, regardless of wall order.
        for a in h.events:
            for b in h.events:
                if a.pid != b.pid:
                    assert not h.precedes(a, b)
