"""Small-scope model checking tests: properties over ALL schedules."""

from __future__ import annotations

import pytest

from repro.core.adt import _canonical
from repro.core.universal import UniversalReplica
from repro.objects.pipelined import FifoApplyReplica
from repro.sim.explore import ScheduleExplorer, explore_outcomes
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def universal(pid, n):
    return UniversalReplica(pid, n, SPEC, track_witness=False)


def fifo(pid, n):
    return FifoApplyReplica(pid, n, SPEC, record_applied=False)


class TestMechanics:
    def test_single_update_two_schedules_same_outcome(self):
        # One update, one message: deliver before or after "end" — but the
        # leaf requires drain, so there is exactly one leaf configuration.
        leaves, explorer = explore_outcomes(2, universal, [(0, S.insert(1))])
        assert len(leaves) >= 1
        for leaf in leaves:
            assert leaf.converged
            assert _canonical(leaf.states[0]) == frozenset({1})

    def test_memoization_prunes(self):
        script = [(0, S.insert(1)), (1, S.insert(2)), (0, S.delete(1))]
        _, explorer = explore_outcomes(2, universal, script)
        assert explorer.states_pruned > 0

    def test_leaf_budget_enforced(self):
        script = [(i % 2, S.insert(i)) for i in range(6)]
        with pytest.raises(RuntimeError, match="max_leaves"):
            explore_outcomes(2, universal, script, max_leaves=1)

    def test_fifo_restricts_choices(self):
        script = [(0, S.insert(1)), (0, S.insert(2))]
        plain, _ = explore_outcomes(2, universal, script, fifo=False)
        fifo_leaves, _ = explore_outcomes(2, universal, script, fifo=True)
        # FIFO forbids the reordering schedules, so it explores fewer or
        # equally many configurations.
        assert len(fifo_leaves) <= len(plain)


class TestAlgorithm1OverAllSchedules:
    @pytest.mark.parametrize("script", [
        [(0, S.insert(1)), (1, S.delete(1))],
        [(0, S.insert(1)), (1, S.insert(2)), (0, S.delete(2))],
        [(0, S.insert(1)), (0, S.delete(1)), (1, S.insert(1))],
    ])
    def test_every_schedule_converges(self, script):
        leaves, explorer = explore_outcomes(2, universal, script)
        assert explorer.leaves_seen == len(leaves) > 0
        for leaf in leaves:
            assert leaf.converged, leaf

    def test_every_leaf_state_is_an_update_linearization_state(self):
        from repro.core.history import History
        from repro.core.linearization import update_linearization_states

        # p1 inserts, p0 (lower pid) deletes concurrently: when the delete
        # is stamped without having seen the insert it ties at clock 1 and
        # the pid breaks the tie in the delete's favour (insert survives);
        # when p0 saw the insert first, the delete is causally later and
        # wins.  Both outcomes are update linearization states.
        script = [(1, S.insert(2)), (0, S.delete(2))]
        h = History.from_processes([[S.delete(2)], [S.insert(2)]])
        allowed = update_linearization_states(h, SPEC)
        leaves, _ = explore_outcomes(2, universal, script)
        reached = {_canonical(leaf.states[0]) for leaf in leaves}
        assert reached <= allowed
        # The adversary realizes more than one outcome (stamps depend on
        # the schedule), all of them legal.
        assert reached == {frozenset(), frozenset({2})}

    def test_three_processes_small_script(self):
        script = [(0, S.insert(1)), (1, S.delete(1)), (2, S.insert(2))]
        leaves, _ = explore_outcomes(3, universal, script, max_leaves=500_000)
        assert leaves
        assert all(leaf.converged for leaf in leaves)


class TestFifoBaselineOverAllSchedules:
    def test_divergence_is_schedule_robust(self):
        # Prop. 1's mechanism: for the concurrent conflict, SOME schedule
        # diverges — and with FIFO apply it is in fact most of them.
        script = [(0, S.insert(3)), (1, S.delete(3))]
        leaves, _ = explore_outcomes(2, fifo, script, fifo=True)
        assert any(not leaf.converged for leaf in leaves)

    def test_causally_ordered_scripts_always_converge(self):
        # No concurrency: every schedule of a single-writer script agrees.
        script = [(0, S.insert(1)), (0, S.delete(1)), (0, S.insert(2))]
        leaves, _ = explore_outcomes(2, fifo, script, fifo=True)
        assert all(leaf.converged for leaf in leaves)
        assert all(
            _canonical(leaf.states[1]) == frozenset({2}) for leaf in leaves
        )
