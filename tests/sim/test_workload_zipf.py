"""Tests for the Zipf-skewed workload generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis import update_consistent_convergence
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import run_workload, zipf_set_workload
from repro.specs import SetSpec


class TestGenerator:
    def test_determinism(self):
        assert zipf_set_workload(3, 50, seed=1) == zipf_set_workload(3, 50, seed=1)

    def test_skew_concentrates_on_hot_keys(self):
        wl = zipf_set_workload(3, 500, support=100, zipf_a=1.3, seed=2)
        keys = Counter(
            (w.op.args[0] if w.is_update else w.query_args[0]) for w in wl
        )
        hot = sum(c for _, c in keys.most_common(5))
        assert hot / 500 > 0.5  # top-5 keys take most of the traffic

    def test_keys_within_support(self):
        wl = zipf_set_workload(2, 200, support=10, seed=3)
        for w in wl:
            key = w.op.args[0] if w.is_update else w.query_args[0]
            assert 0 <= key < 10

    def test_flatter_exponent_spreads_load(self):
        def top1(a):
            wl = zipf_set_workload(2, 500, support=50, zipf_a=a, seed=4)
            keys = Counter(
                (w.op.args[0] if w.is_update else w.query_args[0]) for w in wl
            )
            return keys.most_common(1)[0][1]

        assert top1(3.0) > top1(1.2)

    def test_exponent_validated(self):
        with pytest.raises(ValueError):
            zipf_set_workload(2, 10, zipf_a=1.0)

    def test_contains_queries_emitted(self):
        wl = zipf_set_workload(2, 300, p_query=0.5, seed=5)
        assert any(not w.is_update and w.query == "contains" for w in wl)


class TestEndToEnd:
    def test_uc_convergence_under_skew(self):
        spec = SetSpec()
        c = Cluster(4, lambda p, n: UniversalReplica(p, n, spec),
                    latency=ExponentialLatency(3.0), seed=6)
        run_workload(c, zipf_set_workload(4, 150, support=8, seed=6))
        ok, _, _ = update_consistent_convergence(c, spec)
        assert ok
