"""The fault-injection suite: crash-recovery, lossy/duplicating channels,
anti-entropy repair, and the convergence watchdog.

The paper's Section VII-A assumes crash-stop processes over reliable
channels.  These tests exercise the simulator *beyond* that envelope —
crash-with-recovery from a durable log, seeded message loss and
duplication — and check that the documented upgrades (epidemic relay,
anti-entropy sync) restore convergence, while their absence demonstrably
does not.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ConvergenceWatchdog,
    converged,
    log_divergence,
)
from repro.core.adt import _canonical
from repro.core.checkpoint import GarbageCollectedReplica, StabilityViolation
from repro.core.universal import UniversalReplica
from repro.sim import Cluster, DuplicatingNetwork, LossyNetwork
from repro.sim.network import FixedLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def cluster(n=4, *, relay=False, **kw):
    return Cluster(
        n, lambda pid, total: UniversalReplica(pid, total, SPEC, relay=relay), **kw
    )


def states_of(c):
    return {_canonical(s) for s in c.states().values()}


class TestCrashSemantics:
    """Satellite: crash must interact cleanly with holds and partitions."""

    def test_crash_dissolves_holds_involving_victim(self):
        c = cluster()
        c.hold(0, 1)
        c.hold(2, 0)
        c.hold(2, 3)
        c.crash(0)
        assert c.network._holds == {(2, 3)}

    def test_heal_does_not_inflate_dropped_to_crashed(self):
        # Regression: messages parked toward a pid that then crashed used
        # to be re-queued by heal() and counted at delivery time; they are
        # now dropped (and counted) once, at crash time.
        c = cluster()
        c.partition([[0, 1], [2, 3]])
        c.update(2, S.insert(9))     # 2→0 and 2→1 are parked
        c.crash(0)
        before = c.dropped_to_crashed
        assert before == 1           # the parked 2→0 copy, counted at crash
        c.heal()
        c.run()
        assert c.dropped_to_crashed == before
        assert c.query(1, "read") == frozenset({9})

    def test_crashed_pid_rejected_as_hold_endpoint(self):
        c = cluster()
        c.crash(2)
        with pytest.raises(ValueError, match="crashed"):
            c.hold(2, 0)
        with pytest.raises(ValueError, match="crashed"):
            c.hold(1, 2)

    def test_partition_filters_crashed_pids(self):
        c = cluster()
        c.crash(3)
        c.partition([[0, 1], [2, 3]])    # 3 silently excluded: it is dead
        assert all(3 not in pair for pair in c.network._holds)

    def test_outbound_in_flight_survives_crash(self):
        # Reliability: messages the victim already sent are delivered.
        c = cluster(n=3)
        c.hold(0, 2)
        c.update(0, S.insert(1))
        c.crash(0)                        # hold dissolved, 0→2 released
        c.run()
        assert c.query(2, "read") == frozenset({1})

    def test_crash_is_idempotent(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.crash(1)
        first = c.dropped_to_crashed
        c.crash(1)
        assert c.dropped_to_crashed == first


class TestCrashRecovery:
    def test_recover_requires_a_crash(self):
        c = cluster()
        with pytest.raises(ValueError, match="not crashed"):
            c.recover(0)

    def test_recover_restores_full_log(self):
        c = cluster(n=3)
        c.update(0, S.insert(1))
        c.update(0, S.insert(2))
        c.run()
        c.crash(0)
        c.update(1, S.insert(3))
        c.run()
        c.recover(0)
        c.run()
        assert c.recovered_count == 1
        # The recovered replica kept its own updates and pulled the missed one.
        assert c.query(0, "read") == frozenset({1, 2, 3})
        assert converged(c)

    def test_recover_with_amnesia_pulls_from_peers(self):
        # fsync_point=0: the log is gone, but peers received the broadcasts
        # and the sync handshake restores everything.
        c = cluster(n=3)
        c.update(0, S.insert(1))
        c.update(1, S.insert(2))
        c.run()
        c.crash(0)
        c.recover(0, fsync_point=0)
        c.run()
        assert c.query(0, "read") == frozenset({1, 2})
        assert converged(c)

    def test_clock_survives_amnesia_no_timestamp_reuse(self):
        # The Lamport clock is write-ahead persisted: even with a truncated
        # log the recovered process must not re-issue a (clock, pid) stamp
        # that copies of its pre-crash broadcasts still carry.
        c = cluster(n=3)
        c.update(0, S.insert(1))
        old_clock = c.replicas[0].clock.value
        c.crash(0)
        fresh = c.recover(0, fsync_point=0)
        assert fresh.clock.value >= old_clock
        c.update(0, S.insert(2))          # stamps above everything pre-crash
        c.run()
        assert converged(c)
        assert c.query(1, "read") == frozenset({1, 2})

    def test_recovered_own_lost_update_spreads_back(self):
        # Crash mid-broadcast with message loss: only the durable log still
        # has the update.  Recovery + sync hand it back to the peers.
        c = cluster(n=3)
        c.update(0, S.insert(7))
        c.crash(0, drop_outgoing=True)    # nobody received it
        c.run()
        assert c.query(1, "read") == frozenset()
        c.recover(0)                      # durable log survived in full
        c.anti_entropy()
        assert converged(c)
        assert c.query(1, "read") == frozenset({7})

    def test_recovered_process_accepts_operations(self):
        c = cluster(n=3)
        c.crash(2)
        c.recover(2)
        c.update(2, S.insert(5))          # must not raise
        c.run()
        assert converged(c)

    def test_crash_recover_converge_under_lossy_and_duplicating(self):
        # Acceptance scenario: crash a replica mid-broadcast, recover it
        # from its persisted log, heal the network — identical states on
        # all replicas under both fault-injection networks with relay=True.
        for network_cls, kwargs in [
            (LossyNetwork, {"drop_probability": 0.2}),
            (DuplicatingNetwork, {"duplicate_probability": 0.3}),
        ]:
            c = cluster(
                n=4, relay=True, seed=2,
                network_cls=network_cls, network_kwargs=kwargs,
            )
            for i in range(6):
                c.update(i % 4, S.insert(i))
            c.partition([[0, 1], [2, 3]])
            c.update(0, S.insert(10))
            c.crash(0, drop_outgoing=True)   # mid-broadcast, copies lost
            c.update(2, S.insert(11))
            c.run()
            c.recover(0)                     # durable log has insert(10)
            c.heal()
            c.run()
            c.anti_entropy(rounds=8)
            assert len(states_of(c)) == 1, network_cls.__name__
            # insert(10) survived only in p0's durable log, yet spread.
            assert c.query(3, "read") >= frozenset({10, 11}), network_cls.__name__


class TestLossAndRelay:
    """ISSUE tentpole: relay=True converges under seeded loss while
    relay=False demonstrably does not (same seed, same workload)."""

    def run_lossy(self, relay):
        c = cluster(n=4, relay=relay, seed=2,
                    network_cls=LossyNetwork,
                    network_kwargs={"drop_probability": 0.25})
        for i in range(12):
            c.update(i % 4, S.insert(i))
        c.run()
        return c

    def test_relay_converges_under_loss(self):
        c = self.run_lossy(relay=True)
        assert c.network.lost_count > 0
        assert len(states_of(c)) == 1

    def test_no_relay_diverges_under_loss(self):
        c = self.run_lossy(relay=False)
        assert c.network.lost_count > 0
        assert len(states_of(c)) > 1

    def test_anti_entropy_repairs_even_without_relay(self):
        c = self.run_lossy(relay=False)
        assert len(states_of(c)) > 1
        c.anti_entropy(rounds=10)
        assert len(states_of(c)) == 1

    def test_duplicates_are_harmless(self):
        c = cluster(n=3, seed=0,
                    network_cls=DuplicatingNetwork,
                    network_kwargs={"duplicate_probability": 0.5})
        for i in range(10):
            c.update(i % 3, S.insert(i))
        c.run()
        assert c.network.duplicated_count > 0
        assert len(states_of(c)) == 1
        # Deduplication: no replica applied an update twice.
        assert all(r.log_length == 10 for r in c.replicas)


class TestConvergenceWatchdog:
    def test_reports_agreement_time(self):
        c = cluster(n=3, latency=FixedLatency(1.0))
        c.update(0, S.insert(1))
        report = ConvergenceWatchdog(c).watch()
        assert report.converged and report.quiescent
        assert not report.flagged
        assert report.steps == 2
        assert report.time_to_agreement == 1.0
        assert report.final_divergence == {0: 0, 1: 0, 2: 0}
        assert "converged" in report.summary()

    def test_flags_divergent_run(self):
        c = self_lossy = cluster(n=4, seed=2,
                                 network_cls=LossyNetwork,
                                 network_kwargs={"drop_probability": 0.25})
        for i in range(12):
            c.update(i % 4, S.insert(i))
        report = ConvergenceWatchdog(self_lossy).watch()
        assert report.quiescent and not report.converged
        assert report.flagged
        assert report.distinct_states > 1
        assert max(report.final_divergence.values()) > 0
        assert "DIVERGED" in report.summary()

    def test_flags_non_quiescent_run(self):
        c = cluster(n=3)
        for i in range(5):
            c.update(0, S.insert(i))
        report = ConvergenceWatchdog(c).watch(max_steps=3)
        assert not report.quiescent
        assert report.flagged
        assert report.undelivered > 0
        assert "NON-QUIESCENT" in report.summary()

    def test_log_divergence_counts_missing_entries(self):
        c = cluster(n=3)
        c.network.hold(0, 2)
        c.update(0, S.insert(1))
        c.run()
        div = log_divergence(c)
        assert div[2] == 1 and div[0] == 0 and div[1] == 0

    def test_check_every_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ConvergenceWatchdog(cluster(), check_every=0)


class TestGCUnderPartition:
    """Satellite: GarbageCollectedReplica on FIFO channels survives a
    partition/heal cycle — no spurious StabilityViolation, and it
    converges to the same state as plain Algorithm 1."""

    def script(self):
        ops = []
        for i in range(40):
            v = i % 7
            ops.append((i % 3, S.insert(v) if i % 3 else S.delete(v)))
        return ops

    def drive(self, factory):
        c = Cluster(3, factory, fifo=True, seed=5)
        ops = self.script()
        for i, (pid, op) in enumerate(ops):
            c.update(pid, op)
            if i == 10:
                c.partition([[0], [1, 2]])
            if i == 25:
                c.heal()
            if i % 4 == 0:
                c.run()
        c.heal()
        c.run()
        return c

    def test_partition_heal_cycle_no_spurious_violation(self):
        gc = self.drive(
            lambda p, n: GarbageCollectedReplica(
                p, n, SPEC, gc_interval=8, checkpoint_interval=8,
                track_witness=False,
            )
        )  # would raise StabilityViolation on a FIFO regression
        plain = self.drive(
            lambda p, n: UniversalReplica(p, n, SPEC, track_witness=False)
        )
        assert len(states_of(gc)) == 1
        assert states_of(gc) == states_of(plain)
        # The test is only meaningful if GC actually collected entries.
        assert sum(r.collected for r in gc.replicas) > 0

    def test_violation_still_detected_on_raw_reorder(self):
        # The detector itself still works: a non-FIFO message under the
        # collected frontier raises rather than silently diverging.
        r = GarbageCollectedReplica(0, 2, SPEC, gc_interval=1)
        r.on_message(1, (5, 1, S.insert(1)))
        r.heard = [5, 5]
        r.collect_garbage()
        with pytest.raises(StabilityViolation):
            r.on_message(1, (2, 1, S.insert(2)))


class TestGCUnderHoldsAndCrashes:
    """Satellite: frontier safety under hold/release schedules and
    crashed-peer heartbeats (the claims GC's stability argument rests on
    must survive every FIFO-preserving adversary move)."""

    def gc_cluster(self, n=3, **kw):
        return Cluster(
            n,
            lambda pid, total: GarbageCollectedReplica(
                pid, total, SPEC, gc_interval=8, track_witness=False
            ),
            fifo=True,
            **kw,
        )

    def test_hold_release_cycle_no_spurious_violation(self):
        c = self.gc_cluster(seed=11)
        for i in range(40):
            c.update(i % 3, S.insert(i % 7) if i % 2 else S.delete(i % 7))
            if i == 8:
                c.hold(0, 1)
                c.hold(2, 1)
            if i == 24:
                c.release(0, 1)
                c.release(2, 1)
            if i % 4 == 0:
                c.run()  # would raise StabilityViolation on a regression
        c.heal()
        c.run()
        c.anti_entropy()
        assert len(states_of(c)) == 1
        assert sum(r.collected for r in c.replicas) > 0

    def test_held_heartbeats_cannot_outrun_their_updates(self):
        # A held channel parks updates and heartbeats alike; releasing
        # must deliver them in send order, so heard never claims a clock
        # whose update is still parked on the same channel.
        c = self.gc_cluster(seed=3)
        c.update(0, S.insert(1))
        c.run()
        c.hold(0, 1)
        c.update(0, S.insert(2))
        c.network.broadcast(0, c.replicas[0].heartbeat(), c.now)
        hb_clock = c.replicas[0].clock.value
        c.run()
        # The heartbeat is parked with its update: p1 heard nothing new.
        assert c.replicas[1].heard[0] < hb_clock
        c.release(0, 1)
        c.run()
        assert c.replicas[1].heard[0] >= hb_clock
        c.heal()
        c.run()
        assert len(states_of(c)) == 1

    def test_crashed_peer_heartbeats_dropped_not_counted(self):
        # An in-flight heartbeat from a peer that crashes mid-broadcast
        # (drop_outgoing) must be dropped, not advance heard: counting it
        # would let the frontier pass updates the crash destroyed.
        c = self.gc_cluster(seed=9)
        for _ in range(2):
            for pid in range(3):
                c.update(pid, S.insert(pid))
            c.run()
        heard_before = list(c.replicas[0].heard)
        c.update(2, S.insert(6))  # in flight, then lost with the crash
        c.network.broadcast(2, c.replicas[2].heartbeat(), c.now)
        c.crash(2, drop_outgoing=True)
        c.run()
        assert c.replicas[0].heard[2] == heard_before[2]

    def test_heartbeats_to_crashed_process_dropped(self):
        c = self.gc_cluster(seed=9)
        c.crash(2)
        c.network.broadcast(0, c.replicas[0].heartbeat(), c.now)
        before = c.dropped_to_crashed
        c.run()
        assert c.dropped_to_crashed > before


class TestGCStateTransferScenario:
    """Satellite: the CI chaos scenario — GC + crash + fsync-truncated
    recovery + partition/heal — must exercise state transfer and
    converge (see :func:`repro.sim.fuzz.gc_state_transfer_scenario`)."""

    def test_scenario_converges_and_transfers(self):
        from repro.sim.fuzz import gc_state_transfer_scenario

        stats = gc_state_transfer_scenario(0)
        assert stats["state_transfers"] >= 1
        assert stats["state_installs"] >= 1

    def test_scenario_across_seeds(self):
        from repro.sim.fuzz import gc_state_transfer_scenario

        for seed in range(1, 4):
            gc_state_transfer_scenario(seed)

    def test_gc_smoke_budget_loop(self):
        from repro.sim.fuzz import gc_chaos_smoke

        ticks = iter([0.0, 100.0, 200.0])
        stats = gc_chaos_smoke(50.0, clock=lambda: next(ticks))
        assert stats["runs"] == 1  # fake clock: one run, then budget spent
