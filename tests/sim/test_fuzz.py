"""Fuzzed adversarial schedules: the strongest empirical evidence that
Algorithm 1's guarantees hold under *any* schedule, not just i.i.d.
latencies."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import update_consistent_convergence
from repro.core.adt import _canonical
from repro.core.criteria.witness import verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.fuzz import AdversaryFuzzer
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def script(n_ops: int, n_procs: int, seed: int):
    import numpy as np

    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        pid = int(rng.integers(n_procs))
        v = int(rng.integers(4))
        ops.append((pid, S.insert(v) if rng.random() < 0.6 else S.delete(v)))
    return ops


class TestFuzzerMechanics:
    def test_determinism(self):
        def one_run():
            c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC), seed=1)
            fz = AdversaryFuzzer(c, seed=42, crash_budget=1)
            fz.run_workload(script(20, 3, 7))
            return fz.report.moves, {p: frozenset(s) for p, s in c.states().items()}

        assert one_run() == one_run()

    def test_report_counts_moves(self):
        c = Cluster(4, lambda p, n: UniversalReplica(p, n, SPEC), seed=1)
        fz = AdversaryFuzzer(c, seed=5, crash_budget=2)
        report = fz.run_workload(script(60, 4, 5))
        assert len(report.moves) == (
            report.holds + report.releases + report.partitions
            + report.heals + report.crashes + report.recoveries
        )
        assert report.summary()

    def test_recoveries_disabled_by_default(self):
        c = Cluster(4, lambda p, n: UniversalReplica(p, n, SPEC), seed=1)
        fz = AdversaryFuzzer(c, seed=5, crash_budget=2)
        report = fz.run_workload(script(60, 4, 5))
        assert report.recoveries == 0

    def test_recoveries_happen_when_enabled(self):
        # With a generous probability a crash is eventually recovered.
        for seed in range(20):
            c = Cluster(4, lambda p, n: UniversalReplica(p, n, SPEC), seed=seed)
            fz = AdversaryFuzzer(c, seed=seed, crash_budget=3,
                                 recover_probability=0.5)
            report = fz.run_workload(script(80, 4, seed))
            if report.recoveries > 0:
                assert c.recovered_count == report.recoveries
                assert any(m.startswith("recover p") for m in report.moves)
                break
        else:  # pragma: no cover - would indicate a probability bug
            raise AssertionError("no recovery across 20 seeds")

    def test_never_crashes_last_process(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SPEC), seed=1)
        fz = AdversaryFuzzer(c, seed=9, crash_budget=10)
        fz.run_workload(script(80, 2, 9))
        assert len(c.alive()) >= 1

    def test_crashes_respect_budget(self):
        c = Cluster(5, lambda p, n: UniversalReplica(p, n, SPEC), seed=1)
        fz = AdversaryFuzzer(c, seed=11, crash_budget=2)
        fz.run_workload(script(100, 5, 11))
        assert len(c.crashed) <= 2

    def test_no_message_loss_by_default(self):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC), seed=1)
        fz = AdversaryFuzzer(c, seed=3, crash_budget=3)
        assert not fz.allow_message_loss


class TestFuzzedGuarantees:
    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_convergence_under_any_schedule(self, seed):
        c = Cluster(4, lambda p, n: UniversalReplica(p, n, SPEC), seed=seed)
        fz = AdversaryFuzzer(c, seed=seed, crash_budget=2)
        fz.run_workload(script(25, 4, seed))
        ok, _, states = update_consistent_convergence(c, SPEC)
        assert ok, (fz.report.summary(), states)

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_witness_verifies_under_any_schedule(self, seed):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC), seed=seed)
        fz = AdversaryFuzzer(c, seed=seed)
        fz.run_workload(script(15, 3, seed), queries_per_op=0.5)
        for pid in c.alive():
            c.query(pid, "read")
        h = c.trace.to_history()
        res = verify_suc_witness(h, SPEC, c.trace.suc_witness(h))
        assert res, res.reason

    @given(st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_relay_restores_agreement_under_message_loss(self, seed):
        """With crash-with-loss adversaries, relay replicas' survivors
        still agree among themselves (uniform reliable broadcast)."""
        c = Cluster(
            4, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=seed
        )
        fz = AdversaryFuzzer(c, seed=seed, crash_budget=2, allow_message_loss=True)
        fz.run_workload(script(25, 4, seed))
        states = {_canonical(s) for s in c.states().values()}
        assert len(states) == 1, fz.report.summary()

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_convergence_with_crash_recovery(self, seed):
        """Crash-recovery chaos: recovered processes rejoin from their
        durable logs and the whole cluster still agrees after anti-entropy."""
        c = Cluster(
            4, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=seed
        )
        fz = AdversaryFuzzer(c, seed=seed, crash_budget=2,
                             allow_message_loss=True, recover_probability=0.3)
        fz.run_workload(script(25, 4, seed), anti_entropy_rounds=5)
        states = {_canonical(s) for s in c.states().values()}
        assert len(states) == 1, fz.report.summary()

    @given(st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None)
    def test_convergence_under_lossy_network(self, seed):
        from repro.sim import LossyNetwork

        c = Cluster(
            4, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=seed,
            network_cls=LossyNetwork, network_kwargs={"drop_probability": 0.2},
        )
        fz = AdversaryFuzzer(c, seed=seed)
        fz.run_workload(script(20, 4, seed), anti_entropy_rounds=5)
        states = {_canonical(s) for s in c.states().values()}
        assert len(states) == 1, fz.report.summary()

    @given(st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None)
    def test_convergence_under_duplicating_network(self, seed):
        from repro.sim import DuplicatingNetwork

        c = Cluster(
            4, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=seed,
            network_cls=DuplicatingNetwork,
            network_kwargs={"duplicate_probability": 0.3},
        )
        fz = AdversaryFuzzer(c, seed=seed)
        fz.run_workload(script(20, 4, seed), anti_entropy_rounds=5)
        ok, _, states = update_consistent_convergence(c, SPEC)
        assert ok, (fz.report.summary(), states)


class TestChaosSmoke:
    def test_chaos_smoke_short_budget(self):
        from repro.sim.fuzz import chaos_smoke

        out = chaos_smoke(budget_seconds=1.0, procs=3, ops=10)
        assert out["runs"] >= 1
        assert out["first_seed"] == 0


class TestRelay:
    def test_relay_floods_partial_broadcasts(self):
        # p0's broadcast reaches only p1 before the crash loses the rest;
        # relay makes p1 re-broadcast, so p2 still learns the update.
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=0)
        c.network.hold(0, 2)  # p0 -> p2 parked
        c.update(0, S.insert(1))
        c.run()  # p1 received and relayed
        c.crash(0, drop_outgoing=True)  # the parked copy is lost
        assert c.query(2, "read") == frozenset({1})

    def test_without_relay_partial_broadcast_diverges(self):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC), seed=0)
        c.network.hold(0, 2)
        c.update(0, S.insert(1))
        c.run()
        c.crash(0, drop_outgoing=True)
        assert c.query(2, "read") == frozenset()  # p2 never learns

    def test_relay_deduplicates(self):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=0)
        c.update(0, S.insert(1))
        c.run()
        # Every replica saw the update exactly once despite the flood.
        assert all(r.log_length == 1 for r in c.replicas)

    def test_relay_message_overhead(self):
        c = Cluster(4, lambda p, n: UniversalReplica(p, n, SPEC, relay=True), seed=0)
        c.update(0, S.insert(1))
        c.run()
        # Flooding: the original n-1 sends plus each receiver's relay.
        assert c.network.sent_count == 3 + 3 * 3

    def test_gc_refuses_relay(self):
        import pytest

        from repro.core.checkpoint import GarbageCollectedReplica

        with pytest.raises(ValueError, match="relay"):
            GarbageCollectedReplica(0, 2, SPEC, relay=True)


class TestChaosSmokeClockInjection:
    """Regression for the uqlint SIM101 self-application fix: the wall
    clock only bounds how many seeded runs happen and is injectable, so
    the smoke itself can be driven deterministically."""

    def test_injected_clock_bounds_runs_deterministically(self):
        from repro.sim.fuzz import chaos_smoke

        ticks = iter(range(100))

        def fake_clock() -> float:
            return float(next(ticks) * 40.0)  # 40 "seconds" per observation

        # deadline = t0 + budget = 50; loop checks observe t=40 (< 50, run)
        # then t=80 (>= 50, stop): exactly two seeds complete.
        out = chaos_smoke(budget_seconds=50.0, procs=3, ops=8, clock=fake_clock)
        assert out["runs"] == 2

    def test_injected_clock_always_completes_one_run(self):
        from repro.sim.fuzz import chaos_smoke

        out = chaos_smoke(budget_seconds=-1.0, procs=3, ops=8, clock=lambda: 0.0)
        assert out["runs"] == 1

    def test_fuzz_module_has_no_wall_clock_calls(self):
        """The linter guards the fix: SIM101 must stay clean on fuzz.py
        (the only wall-clock *reference* is the injection default)."""
        from pathlib import Path

        from repro.lint import lint_source
        from repro.sim import fuzz as fuzz_module

        source = Path(fuzz_module.__file__).read_text()
        assert [f.render() for f in lint_source(source, "fuzz.py")] == []

    def test_removing_the_injection_would_be_caught(self):
        """Anti-regression: a direct wall-clock call in the budget loop is
        exactly what SIM101 flags."""
        from repro.lint import lint_source

        source = (
            "import time\n"
            "def chaos(budget):\n"
            "    deadline = time.monotonic() + budget\n"
            "    while time.monotonic() < deadline:\n"
            "        pass\n"
        )
        codes = [f.code for f in lint_source(source)]
        assert codes == ["SIM101", "SIM101"]
