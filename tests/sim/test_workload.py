"""Unit tests for the workload generators and runner."""

from __future__ import annotations

from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import (
    WorkloadOp,
    collab_edit_workload,
    conflict_heavy_set_workload,
    counter_workload,
    random_set_workload,
    register_workload,
    run_workload,
)
from repro.specs import CounterSpec, LogSpec, MemorySpec, SetSpec
from repro.specs import set_spec as S


class TestGenerators:
    def test_determinism(self):
        a = random_set_workload(3, 50, seed=9)
        b = random_set_workload(3, 50, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_set_workload(3, 50, seed=1) != random_set_workload(3, 50, seed=2)

    def test_sizes(self):
        wl = random_set_workload(3, 40, seed=0)
        assert len(wl) == 40
        assert all(0 <= w.pid < 3 for w in wl)

    def test_times_sorted_within_horizon(self):
        wl = random_set_workload(2, 30, horizon=10.0, seed=0)
        times = [w.time for w in wl]
        assert times == sorted(times)
        assert all(0 <= t <= 10.0 for t in times)

    def test_conflict_heavy_has_tiny_support(self):
        wl = conflict_heavy_set_workload(2, 100, support=2, seed=0)
        values = {w.op.args[0] for w in wl}
        assert values <= {0, 1}

    def test_register_workload_targets_register_space(self):
        wl = register_workload(2, 50, registers=4, seed=0)
        for w in wl:
            x = w.op.args[0] if w.is_update else w.query_args[0]
            assert 0 <= x < 4

    def test_counter_workload_amounts_positive(self):
        wl = counter_workload(2, 50, seed=0)
        for w in wl:
            if w.is_update:
                assert w.op.args[0] >= 1

    def test_collab_edit_per_author_numbering(self):
        wl = collab_edit_workload(2, 20, seed=0)
        per_author = {}
        for w in wl:
            author, idx = w.op.args[0].split(".")
            assert int(idx) == per_author.get(author, 0)
            per_author[author] = int(idx) + 1


class TestRunner:
    def test_returns_query_outputs_in_order(self):
        spec = SetSpec()
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, spec))
        wl = [
            WorkloadOp(0.0, 0, op=S.insert(1)),
            WorkloadOp(1.0, 0, query="read"),
            WorkloadOp(2.0, 1, query="read"),
        ]
        outs = run_workload(c, wl)
        assert outs[0] == frozenset({1})
        assert outs[1] == frozenset({1})  # delivered by t=2 (unit latency)

    def test_drains_by_default(self):
        spec = SetSpec()
        c = Cluster(3, lambda pid, n: UniversalReplica(pid, n, spec),
                    latency=ExponentialLatency(4.0), seed=2)
        run_workload(c, random_set_workload(3, 30, seed=2))
        assert c.quiescent()

    def test_no_drain_leaves_messages(self):
        spec = SetSpec()
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, spec),
                    latency=ExponentialLatency(50.0), seed=2)
        run_workload(c, [WorkloadOp(0.0, 0, op=S.insert(1))], drain=False)
        assert not c.quiescent()

    def test_skips_crashed_processes(self):
        spec = SetSpec()
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, spec))
        c.crash(1)
        wl = [
            WorkloadOp(0.0, 1, op=S.insert(9)),
            WorkloadOp(1.0, 0, query="read"),
        ]
        outs = run_workload(c, wl)
        assert outs == [frozenset()]

    def test_end_to_end_convergence_on_all_specs(self):
        from repro.analysis import converged

        cases = [
            (SetSpec(), random_set_workload(3, 60, seed=4)),
            (MemorySpec(), register_workload(3, 60, seed=4)),
            (CounterSpec(), counter_workload(3, 60, seed=4)),
            (LogSpec(), collab_edit_workload(3, 40, seed=4)),
        ]
        for spec, wl in cases:
            c = Cluster(3, lambda pid, n, spec=spec: UniversalReplica(pid, n, spec),
                        latency=ExponentialLatency(3.0), seed=4)
            run_workload(c, wl)
            assert converged(c), spec.name
