"""Tests for trace persistence (JSON round-trips)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adt import Query, Update
from repro.core.criteria.witness import verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.persist import (
    decode_value,
    encode_value,
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, 42, -1.5, "text",
        (1, 2), frozenset({1, "a"}), {1: "x", (2, 3): frozenset()},
        Update("insert", (7,)),
        Query("read", (), frozenset({1})),
        [(1,), frozenset({2})],
        ((), (((),),)),
    ])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_types_preserved(self):
        out = decode_value(encode_value((1, 2)))
        assert isinstance(out, tuple)
        out = decode_value(encode_value(frozenset({1})))
        assert isinstance(out, frozenset)
        out = decode_value(encode_value({"k": 1}))
        assert isinstance(out, dict)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown tag"):
            decode_value({"@": "pickle", "data": "..."})

    values = st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-9, 9), st.text(max_size=4)),
        lambda inner: st.one_of(
            st.tuples(inner, inner),
            st.frozensets(inner, max_size=3),
        ),
        max_leaves=8,
    )

    @given(values)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_property(self, value):
        assert decode_value(encode_value(value)) == value


class TestTraceRoundTrip:
    def make_trace(self):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC),
                    latency=ExponentialLatency(3.0), seed=5)
        for i in range(12):
            c.update(i % 3, S.insert(i % 4) if i % 2 else S.delete(i % 4))
            if i % 3 == 0:
                c.query((i + 1) % 3, "read")
        c.run()
        c.query(0, "read")
        return c.trace

    def test_json_round_trip(self):
        trace = self.make_trace()
        loaded = trace_from_json(trace_to_json(trace))
        assert len(loaded) == len(trace)
        for a, b in zip(trace.records, loaded.records):
            assert (a.eid, a.pid, a.time, a.label) == (b.eid, b.pid, b.time, b.label)
            assert dict(a.meta) == dict(b.meta)

    def test_loaded_trace_supports_witness_check(self):
        trace = self.make_trace()
        loaded = trace_from_json(trace_to_json(trace))
        h = loaded.to_history()
        res = verify_suc_witness(h, SPEC, loaded.suc_witness(h))
        assert res, res.reason

    def test_file_round_trip(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "run.trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)

    def test_output_is_deterministic(self):
        a = trace_to_json(self.make_trace())
        b = trace_to_json(self.make_trace())
        assert a == b

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="repro-trace"):
            trace_from_json('{"format": "something-else", "records": []}')

    def test_non_operation_label_rejected(self):
        import json

        doc = {
            "format": "repro-trace-v1",
            "records": [{"eid": 0, "pid": 0, "time": 0.0,
                         "label": 42, "meta": {"@": "dict", "items": []}}],
        }
        with pytest.raises(ValueError, match="not an operation"):
            trace_from_json(json.dumps(doc))
