"""Tests for trace persistence (JSON round-trips)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adt import Query, Update
from repro.core.criteria.witness import verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.persist import (
    decode_value,
    encode_value,
    load_trace,
    replica_snapshot,
    restore_replica,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, 42, -1.5, "text",
        (1, 2), frozenset({1, "a"}), {1: "x", (2, 3): frozenset()},
        Update("insert", (7,)),
        Query("read", (), frozenset({1})),
        [(1,), frozenset({2})],
        ((), (((),),)),
    ])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_types_preserved(self):
        out = decode_value(encode_value((1, 2)))
        assert isinstance(out, tuple)
        out = decode_value(encode_value(frozenset({1})))
        assert isinstance(out, frozenset)
        out = decode_value(encode_value({"k": 1}))
        assert isinstance(out, dict)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown tag"):
            decode_value({"@": "pickle", "data": "..."})

    values = st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-9, 9), st.text(max_size=4)),
        lambda inner: st.one_of(
            st.tuples(inner, inner),
            st.frozensets(inner, max_size=3),
        ),
        max_leaves=8,
    )

    @given(values)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_property(self, value):
        assert decode_value(encode_value(value)) == value


class TestTraceRoundTrip:
    def make_trace(self):
        c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC),
                    latency=ExponentialLatency(3.0), seed=5)
        for i in range(12):
            c.update(i % 3, S.insert(i % 4) if i % 2 else S.delete(i % 4))
            if i % 3 == 0:
                c.query((i + 1) % 3, "read")
        c.run()
        c.query(0, "read")
        return c.trace

    def test_json_round_trip(self):
        trace = self.make_trace()
        loaded = trace_from_json(trace_to_json(trace))
        assert len(loaded) == len(trace)
        for a, b in zip(trace.records, loaded.records):
            assert (a.eid, a.pid, a.time, a.label) == (b.eid, b.pid, b.time, b.label)
            assert dict(a.meta) == dict(b.meta)

    def test_loaded_trace_supports_witness_check(self):
        trace = self.make_trace()
        loaded = trace_from_json(trace_to_json(trace))
        h = loaded.to_history()
        res = verify_suc_witness(h, SPEC, loaded.suc_witness(h))
        assert res, res.reason

    def test_file_round_trip(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "run.trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)

    def test_output_is_deterministic(self):
        a = trace_to_json(self.make_trace())
        b = trace_to_json(self.make_trace())
        assert a == b

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="repro-trace"):
            trace_from_json('{"format": "something-else", "records": []}')

    def test_non_operation_label_rejected(self):
        import json

        doc = {
            "format": "repro-trace-v1",
            "records": [{"eid": 0, "pid": 0, "time": 0.0,
                         "label": 42, "meta": {"@": "dict", "items": []}}],
        }
        with pytest.raises(ValueError, match="not an operation"):
            trace_from_json(json.dumps(doc))


class TestReplicaSnapshot:
    """The durable log behind crash-recovery (fsync-point truncation)."""

    def make_replica(self, n_updates=4):
        r = UniversalReplica(0, 3, SPEC)
        for i in range(n_updates):
            r.on_update(S.insert(i))
        r.on_message(1, (100, 1, S.insert(99)))
        return r

    def test_round_trip_restores_log_and_clock(self):
        old = self.make_replica()
        text = replica_snapshot(old)
        fresh = UniversalReplica(0, 3, SPEC)
        loaded = restore_replica(fresh, text)
        assert loaded == 5
        assert fresh.log_length == old.log_length
        assert fresh.clock.value == old.clock.value
        assert fresh.on_query("read") == old.on_query("read")

    def test_fsync_point_truncates_log_but_not_clock(self):
        old = self.make_replica()
        text = replica_snapshot(old, fsync_point=2)
        fresh = UniversalReplica(0, 3, SPEC)
        loaded = restore_replica(fresh, text)
        assert loaded == 2
        assert fresh.log_length == 2
        # WAL-cell model: the clock cell survives even when entries do not,
        # so the recovered process can never reuse a pre-crash timestamp.
        assert fresh.clock.value == old.clock.value

    def test_fsync_point_zero_means_full_amnesia(self):
        old = self.make_replica()
        fresh = UniversalReplica(0, 3, SPEC)
        assert restore_replica(fresh, replica_snapshot(old, fsync_point=0)) == 0
        assert fresh.log_length == 0
        assert fresh.clock.value == old.clock.value

    def test_fsync_point_validated(self):
        with pytest.raises(ValueError, match="non-negative"):
            replica_snapshot(self.make_replica(), fsync_point=-1)

    def test_pid_mismatch_rejected(self):
        text = replica_snapshot(self.make_replica())
        other = UniversalReplica(2, 3, SPEC)
        with pytest.raises(ValueError, match="belongs to process 0"):
            restore_replica(other, text)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="repro-replica-log"):
            restore_replica(
                UniversalReplica(0, 3, SPEC),
                '{"format": "nope", "pid": 0, "clock": 0, "entries": []}',
            )

    def test_restore_is_idempotent_per_update(self):
        # Restoring on top of a replica that already knows some entries
        # only loads the missing ones.
        old = self.make_replica()
        text = replica_snapshot(old)
        fresh = UniversalReplica(0, 3, SPEC)
        fresh.on_message(1, (100, 1, S.insert(99)))  # already knows one
        assert restore_replica(fresh, text) == 4
        assert fresh.log_length == 5

    def test_snapshot_is_plain_json(self):
        import json

        doc = json.loads(replica_snapshot(self.make_replica()))
        assert doc["format"].startswith("repro-replica-log")
        assert doc["pid"] == 0
        assert len(doc["entries"]) == 5

    def test_non_dict_meta_rejected(self):
        import json

        doc = {
            "format": "repro-trace-v1",
            "records": [{"eid": 3, "pid": 0, "time": 0.0,
                         "label": encode_value(S.insert(1)),
                         "meta": [1, 2]}],
        }
        with pytest.raises(ValueError, match="record 3: meta is not a mapping"):
            trace_from_json(json.dumps(doc))


class TestJournalImage:
    """The v3 digest-chained image (what the storage engine persists)."""

    def make_replica(self, n_updates=4):
        r = UniversalReplica(0, 3, SPEC)
        for i in range(n_updates):
            r.on_update(S.insert(i))
        r.on_message(1, (100, 1, S.insert(99)))
        return r

    def test_round_trip_restores_log_and_clock(self):
        old = self.make_replica()
        text = replica_snapshot(old, version=3)
        fresh = UniversalReplica(0, 3, SPEC)
        assert restore_replica(fresh, text) == 5
        assert fresh.log_length == old.log_length
        assert fresh.clock.value == old.clock.value
        assert fresh.on_query("read") == old.on_query("read")

    def test_gc_replica_round_trip_restores_base_and_heard(self):
        from repro.core.checkpoint import GarbageCollectedReplica

        old = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
        for i in range(8):
            old.on_update(S.insert(i))
        old.collect_garbage()
        fresh = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
        restore_replica(fresh, replica_snapshot(old, version=3))
        assert fresh.local_state() == old.local_state()
        assert fresh.gc_clock_floor == old.gc_clock_floor
        assert tuple(fresh.heard) == tuple(old.heard)

    def test_fsync_point_semantics_match_v2(self):
        old = self.make_replica()
        for version in (2, 3):
            fresh = UniversalReplica(0, 3, SPEC)
            restore_replica(
                fresh, replica_snapshot(old, fsync_point=2, version=version)
            )
            assert fresh.log_length == 2
            assert fresh.clock.value == old.clock.value

    def test_tampered_record_breaks_the_chain(self):
        import json

        doc = json.loads(replica_snapshot(self.make_replica(), version=3))
        for rec in doc["records"]:
            if rec["r"] == "clock":
                rec["value"] += 1  # CRC-level tools would miss this
        with pytest.raises(ValueError, match="digest chain"):
            restore_replica(UniversalReplica(0, 3, SPEC), json.dumps(doc))

    def test_tampered_top_level_digest_rejected(self):
        import json

        doc = json.loads(replica_snapshot(self.make_replica(), version=3))
        doc["digest"] = "0" * len(doc["digest"])
        with pytest.raises(ValueError, match="digest mismatch"):
            restore_replica(UniversalReplica(0, 3, SPEC), json.dumps(doc))

    def test_reordered_records_rejected(self):
        import json

        doc = json.loads(replica_snapshot(self.make_replica(), version=3))
        doc["records"][-1], doc["records"][-2] = (
            doc["records"][-2], doc["records"][-1],
        )
        with pytest.raises(ValueError, match="digest chain"):
            restore_replica(UniversalReplica(0, 3, SPEC), json.dumps(doc))

    def test_heard_record_supersedes_the_base_copy(self):
        import json

        from repro.core.checkpoint import GarbageCollectedReplica
        from repro.proto.wire import (
            chain_record,
            genesis_digest,
            journal_image,
            journal_records,
        )

        old = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
        for i in range(4):
            old.on_update(S.insert(i))
        records, _ = journal_records(old)
        # the engine appends heard advances between compactions; the
        # freshest record must win over the base segment's stale copy
        newer = (old.clock.value,)
        records.append({"r": "heard", "c": 99, "h": encode_value(newer)})
        digest = genesis_digest(0)
        stamped = []
        for rec in records:
            digest, rec = chain_record(digest, rec)
            stamped.append(rec)
        fresh = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
        restore_replica(fresh, journal_image(0, stamped, digest.hex()))
        assert tuple(fresh.heard) == newer

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            replica_snapshot(self.make_replica(), version=7)
