"""Tests for the replica outbox protocol (directed sends)."""

from __future__ import annotations

from repro.core.adt import Update
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.replica import Replica
from repro.specs import SetSpec
from repro.specs import set_spec as S


class EchoReplica(Replica):
    """Test double: replies point-to-point to every message; updates
    queue a broadcast through the outbox instead of the return channel."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.received: list = []

    def on_update(self, update: Update):
        self.send_to(None, ("bcast", update.args))
        return ()

    def on_message(self, src: int, payload):
        self.received.append((src, payload))
        if payload[0] == "bcast":
            self.send_to(src, ("ack", self.pid))
        return ()

    def on_query(self, name, args=()):
        self.send_to((self.pid + 1) % self.n, ("probe", name))
        return len(self.received)

    def local_state(self):
        return tuple(self.received)


def make(n=3):
    return Cluster(n, lambda pid, total: EchoReplica(pid, total))


class TestOutbox:
    def test_update_outbox_broadcasts(self):
        c = make()
        c.update(0, Update("ping", (7,)))
        c.run()
        for pid in (1, 2):
            assert (0, ("bcast", (7,))) in c.replicas[pid].received

    def test_replies_are_point_to_point(self):
        c = make()
        c.update(0, Update("ping", (7,)))
        c.run()
        acks = [p for _, p in c.replicas[0].received if p[0] == "ack"]
        assert sorted(a[1] for a in acks) == [1, 2]
        # Non-targets never see the acks.
        assert not any(p[0] == "ack" for _, p in c.replicas[1].received)

    def test_query_outbox_drained(self):
        c = make()
        c.query(0, "whatever")
        assert c.network.pending_count() == 1
        c.run()
        assert c.replicas[1].received == [(0, ("probe", "whatever"))]

    def test_outbox_cleared_after_drain(self):
        c = make()
        c.update(0, Update("ping", (1,)))
        assert c.replicas[0].outbox == []

    def test_replicas_without_outbox_usage_unaffected(self):
        from repro.core.universal import UniversalReplica
        from repro.specs import SetSpec
        from repro.specs import set_spec as S

        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SetSpec()))
        c.update(0, S.insert(1))
        c.run()
        assert c.query(1, "read") == frozenset({1})


class PullOnRestoreReplica(UniversalReplica):
    """Test double: its restore path queues a directed send (a state pull
    aimed at one peer), the way a smarter recovery protocol would."""

    def load_log(self, entries):
        count = super().load_log(entries)
        self.send_to((self.pid + 1) % self.n, ("pull", self.pid))
        return count

    def on_message(self, src: int, payload):
        if isinstance(payload, tuple) and payload and payload[0] == "pull":
            self.pulls_seen.append((src, payload))
            return ()
        return super().on_message(src, payload)

    @property
    def pulls_seen(self) -> list:
        if not hasattr(self, "_pulls_seen"):
            self._pulls_seen = []
        return self._pulls_seen


class TestRecoverDrainsOutbox:
    """Regression: ``Cluster.recover`` never drained the fresh replica's
    outbox, so sends queued by restore hooks sat stranded until the
    replica's next (unrelated) hook call."""

    def make(self, n=3):
        spec = SetSpec()
        return Cluster(n, lambda p, total: PullOnRestoreReplica(p, total, spec))

    def test_restore_time_sends_are_shipped(self):
        c = self.make()
        c.update(0, S.insert(1))
        c.run()
        c.crash(0)
        fresh = c.recover(0)
        assert fresh.outbox == []
        c.run()
        assert (0, ("pull", 0)) in c.replicas[1].pulls_seen

    def test_pull_not_delivered_to_bystanders(self):
        c = self.make()
        c.update(0, S.insert(1))
        c.run()
        c.crash(0)
        c.recover(0)
        c.run()
        assert c.replicas[2].pulls_seen == []
