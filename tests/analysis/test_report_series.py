"""Tests for the series renderer and remaining report helpers."""

from __future__ import annotations

from repro.analysis.report import format_series, format_table


class TestFormatSeries:
    def test_renders_columns(self):
        out = format_series(
            "growth", [(1, 10), (2, 20)], x_label="ops", y_label="bits"
        )
        lines = out.splitlines()
        assert lines[0] == "growth"
        assert "ops" in lines[1] and "bits" in lines[1]
        assert "10" in out and "20" in out

    def test_empty_series(self):
        out = format_series("empty", [])
        assert "empty" in out


class TestFormatTableEdges:
    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert out.splitlines()[0].startswith("a")
        assert len(out.splitlines()) == 2  # header + separator

    def test_wide_cells_drive_alignment(self):
        out = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        header, sep, *rows = out.splitlines()
        assert len(sep) >= len("a-much-longer-cell")
        assert all(len(line) <= len(sep) + 2 for line in rows)

    def test_mixed_types(self):
        out = format_table(
            ["v"], [[None], [1.5], [True], [frozenset({3})], [("t",)]]
        )
        assert "None" in out
        assert "1.5" in out
        assert "yes" in out
        assert "{3}" in out
