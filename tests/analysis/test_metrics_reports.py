"""Tests for message accounting, classification matrices and reports."""

from __future__ import annotations

import pytest

from repro.analysis import (
    classification_matrix,
    collect_message_stats,
    format_table,
    payload_size_bits,
    timestamp_growth,
)
from repro.core.adt import Query, Update
from repro.core.universal import UniversalReplica
from repro.paper import FIG1_BUILDERS
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


class TestPayloadSize:
    def test_integers_cost_bit_length(self):
        assert payload_size_bits(255) == 8
        assert payload_size_bits(256) == 9

    def test_negative_integers_cost_sign_bit(self):
        assert payload_size_bits(-255) == 9

    def test_small_values(self):
        assert payload_size_bits(0) == 1
        assert payload_size_bits(None) == 1
        assert payload_size_bits(True) == 1

    def test_strings_utf8(self):
        assert payload_size_bits("ab") == 16

    def test_float(self):
        assert payload_size_bits(1.5) == 64

    def test_containers_sum(self):
        assert payload_size_bits((1, 1)) == 2
        assert payload_size_bits({"a": 1}) == 9

    def test_operations(self):
        u = Update("insert", (1,))
        assert payload_size_bits(u) == 8 * len("insert") + 1
        q = Query("read", (), frozenset())
        assert payload_size_bits(q) == 8 * len("read")

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_size_bits(object())


class TestMessageStats:
    def make_run(self, n=3, updates=5):
        c = Cluster(n, lambda pid, total: UniversalReplica(pid, total, SPEC))
        for i in range(updates):
            c.update(i % n, S.insert(i))
        c.query(0, "read")
        c.run()
        return c

    def test_one_broadcast_per_update(self):
        c = self.make_run(n=4, updates=6)
        stats = collect_message_stats(c)
        assert stats.messages_sent == 6 * 3
        assert stats.sends_per_update == 3.0
        assert stats.broadcast_optimal()

    def test_queries_send_nothing(self):
        c = Cluster(3, lambda pid, total: UniversalReplica(pid, total, SPEC))
        c.query(0, "read")
        c.query(1, "read")
        stats = collect_message_stats(c)
        assert stats.messages_sent == 0
        assert stats.broadcast_optimal()

    def test_counts(self):
        c = self.make_run()
        stats = collect_message_stats(c)
        assert stats.updates == 5
        assert stats.queries == 1
        assert stats.processes == 3

    def test_timestamp_bits_grow_slowly(self):
        c = self.make_run(updates=40)
        stats = collect_message_stats(c)
        # 40 sequential-ish updates: clock ≤ ~40 -> ≤ 6 bits + pid bits.
        assert stats.max_timestamp_bits <= 8

    def test_timestamp_growth_series(self):
        c = self.make_run(updates=10)
        series = timestamp_growth(c)
        assert len(series) == 11  # 10 updates + 1 query
        assert all(bits >= 2 for _, bits in series)
        xs = [x for x, _ in series]
        assert xs == sorted(xs)


class TestClassificationMatrix:
    def test_fig1_matrix(self):
        table, raw = classification_matrix(
            {name: builder for name, builder in FIG1_BUILDERS.items()}, SPEC
        )
        assert raw["1a"] == {"EC": True, "SEC": False, "UC": False, "SUC": False, "PC": False}
        assert raw["1d"]["SUC"] and not raw["1d"]["PC"]
        assert "history" in table and "1a" in table

    def test_accepts_prebuilt_histories(self):
        h = FIG1_BUILDERS["1c"]()
        _, raw = classification_matrix({"x": h}, SPEC, criteria=("EC", "UC"))
        assert raw["x"] == {"EC": True, "UC": True}


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[1].index("value".replace("value", "-")) or True
        assert "long-name" in out

    def test_title(self):
        out = format_table(["c"], [[True]], title="T")
        assert out.startswith("T\n")
        assert "yes" in out

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789]])
        assert "1.23" in out and "1.23456789" not in out

    def test_frozenset_rendering(self):
        out = format_table(["s"], [[frozenset({2, 1})]])
        assert "{1, 2}" in out
