"""Tests for the staleness metrics."""

from __future__ import annotations

import pytest

from repro.analysis.staleness import inclusion_latencies, staleness_report
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import FixedLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def cluster(latency=5.0, n=2):
    return Cluster(n, lambda p, total: UniversalReplica(p, total, SPEC),
                   latency=FixedLatency(latency))


class TestStalenessReport:
    def test_no_queries(self):
        c = cluster()
        c.update(0, S.insert(1))
        rep = staleness_report(c.trace)
        assert rep.queries == 0
        assert rep.fresh_fraction() == 1.0

    def test_fresh_query(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.run()
        c.query(1, "read")
        rep = staleness_report(c.trace)
        assert rep.queries == 1
        assert rep.stale_queries == 0
        assert rep.max_version_lag == 0

    def test_stale_query_counts_missing_updates(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.update(0, S.insert(2))
        c.query(1, "read")  # saw neither
        rep = staleness_report(c.trace)
        assert rep.stale_queries == 1
        assert rep.max_version_lag == 2
        assert rep.fresh_fraction() == 0.0

    def test_time_lag_measures_oldest_missing(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.advance(7.0)  # message needs 5.0 but is only due at t=5 < 7... still pending until run
        c.query(1, "read")
        rep = staleness_report(c.trace)
        assert rep.max_time_lag == pytest.approx(7.0)

    def test_own_updates_never_stale(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.query(0, "read")
        rep = staleness_report(c.trace)
        assert rep.stale_queries == 0

    def test_mean_aggregation(self):
        c = cluster()
        c.update(0, S.insert(1))
        c.query(1, "read")   # lag 1
        c.run()
        c.query(1, "read")   # lag 0
        rep = staleness_report(c.trace)
        assert rep.mean_version_lag == pytest.approx(0.5)

    def test_requires_metadata(self):
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SPEC, track_witness=False))
        c.update(0, S.insert(1))
        c.query(0, "read")
        with pytest.raises(ValueError, match="timestamp"):
            staleness_report(c.trace)

    def test_lower_latency_means_fresher(self):
        from repro.sim.network import ExponentialLatency
        from repro.sim.workload import random_set_workload, run_workload

        reports = {}
        for latency in (0.1, 20.0):
            c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC),
                        latency=ExponentialLatency(latency), seed=4)
            run_workload(c, random_set_workload(3, 80, seed=4), drain=False)
            reports[latency] = staleness_report(c.trace)
            c.run()
        assert reports[0.1].mean_version_lag < reports[20.0].mean_version_lag


class TestInclusionLatency:
    def test_measures_until_seen_everywhere(self):
        c = cluster(latency=5.0)
        c.update(0, S.insert(1))
        c.query(0, "read")  # issuer sees immediately
        c.run()             # deliver at t=5
        c.query(1, "read")  # p1 confirms at t=5
        lats = inclusion_latencies(c.trace)
        assert len(lats) == 1
        (latency,) = lats.values()
        assert latency == pytest.approx(5.0)

    def test_unconfirmed_updates_omitted(self):
        c = cluster()
        c.update(0, S.insert(1))  # p1 never queries
        assert inclusion_latencies(c.trace) == {}
