"""Tests for the convergence analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    agreed_state,
    converged,
    divergence_degree,
    expected_final_state,
    update_consistent_convergence,
)
from repro.core.universal import UniversalReplica
from repro.objects.pipelined import FifoApplyReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def uc_cluster(n=3, **kw):
    return Cluster(n, lambda pid, total: UniversalReplica(pid, total, SPEC), **kw)


class TestConverged:
    def test_fresh_cluster_converged(self):
        assert converged(uc_cluster())

    def test_in_flight_updates_diverge(self):
        c = uc_cluster()
        c.update(0, S.insert(1))
        assert not converged(c)
        assert divergence_degree(c) == 2

    def test_drained_cluster_converges(self):
        c = uc_cluster()
        c.update(0, S.insert(1))
        c.run()
        assert converged(c)
        assert divergence_degree(c) == 1

    def test_crashed_replicas_excluded(self):
        c = uc_cluster()
        c.update(0, S.insert(1))
        c.crash(1)  # p1 will never learn — but it is not "correct"
        c.crash(2)
        c.run()
        assert converged(c)

    def test_agreed_state(self):
        c = uc_cluster()
        c.update(0, S.insert(1))
        c.run()
        assert frozenset(agreed_state(c)) == frozenset({1})

    def test_agreed_state_raises_on_divergence(self):
        c = uc_cluster()
        c.update(0, S.insert(1))
        with pytest.raises(ValueError, match="diverge"):
            agreed_state(c)


class TestExpectedFinalState:
    def test_timestamp_order_replay(self):
        c = uc_cluster(n=2)
        c.update(0, S.insert(1))  # (1, 0)
        c.update(1, S.delete(1))  # (1, 1): deletes after in (cl, pid) order
        expected = expected_final_state(c.trace, SPEC)
        assert expected == frozenset()

    def test_requires_timestamps(self):
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, SPEC, track_witness=False))
        c.update(0, S.insert(1))
        with pytest.raises(ValueError, match="timestamp"):
            expected_final_state(c.trace, SPEC)

    def test_full_uc_check_positive(self):
        c = uc_cluster(latency=ExponentialLatency(4.0), seed=3)
        for i in range(10):
            c.update(i % 3, S.insert(i) if i % 2 else S.delete(i - 1))
        c.run()
        ok, expected, states = update_consistent_convergence(c, SPEC)
        assert ok
        assert set(states) == {0, 1, 2}

    def test_full_uc_check_negative_on_diverging_baseline(self):
        # The FIFO baseline stamps its updates too, but its replicas do not
        # follow the timestamp order — on a conflict they fail the check.
        c = Cluster(2, lambda pid, n: FifoApplyReplica(pid, n, SPEC),
                    fifo=True, latency=ExponentialLatency(100.0), seed=0)
        c.update(0, S.insert(3))
        c.update(1, S.delete(3))
        c.run()
        ok, _, _ = update_consistent_convergence(c, SPEC)
        assert not ok
