"""The asyncio backend end to end: replication, crash, recovery.

Real sockets on loopback, real timers — these are integration tests of
the effect interpreter, kept short (sub-second sync intervals) so the
suite stays fast.  Protocol semantics are pinned by the proto unit tests
and the sim↔net differential test; here we check the *backend*: frames
arrive, links repair, durable images survive a kill.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.universal import UniversalReplica
from repro.net.harness import LocalCluster
from repro.net.node import NodeStoppedError
from repro.specs.set_spec import SetSpec, insert


def make_cluster(tmp_path=None, *, http: bool = False, n: int = 3) -> LocalCluster:
    spec = SetSpec()
    return LocalCluster(
        n,
        lambda pid, k: UniversalReplica(pid, k, spec),
        data_dir=None if tmp_path is None else str(tmp_path),
        sync_interval=0.05,
        http=http,
    )


def test_updates_replicate_across_the_mesh():
    async def scenario():
        cluster = make_cluster()
        await cluster.start()
        try:
            for pid in range(3):
                cluster.submit(pid, insert(pid))
            await cluster.settle(timeout=10)
            assert cluster.states() == {0: {0, 1, 2}, 1: {0, 1, 2}, 2: {0, 1, 2}}
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_submit_returns_witness_metadata():
    async def scenario():
        cluster = make_cluster()
        await cluster.start()
        try:
            meta = cluster.submit(0, insert(9))
            assert meta["timestamp"] == (1, 0)
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_kill_then_restart_recovers_from_disk(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path)
        await cluster.start()
        try:
            for v in range(6):
                cluster.submit(v % 3, insert(v))
            await cluster.settle(timeout=10)
            # let the flusher write node 2's durable image, then crash it
            await asyncio.sleep(0.2)
            cluster.kill(2)
            with pytest.raises(NodeStoppedError):
                cluster.nodes[2].submit(insert(99))
            cluster.submit(0, insert(100))  # progress while one replica is down
            node = await cluster.restart(2)
            await cluster.settle(timeout=10)
            expected = set(range(6)) | {100}
            assert cluster.states() == {0: expected, 1: expected, 2: expected}
            assert node.core.log_length == len(expected)
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_restart_without_disk_rejoins_via_anti_entropy():
    async def scenario():
        cluster = make_cluster()  # no data_dir: recovery is pure gossip
        await cluster.start()
        try:
            cluster.submit(0, insert(1))
            await cluster.settle(timeout=10)
            cluster.kill(1)
            cluster.submit(2, insert(2))
            await cluster.restart(1)
            await cluster.settle(timeout=10)
            assert cluster.states()[1] == {1, 2}
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_dead_node_is_not_queryable():
    async def scenario():
        cluster = make_cluster()
        await cluster.start()
        try:
            cluster.kill(0)
            with pytest.raises(RuntimeError):
                cluster.submit(0, insert(1))
            assert cluster.alive() == [1, 2]
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_background_task_exception_is_surfaced():
    """A dying background task must not vanish: the done-callback records
    the exception, bumps the metric and logs it (regression for silently
    swallowed task errors — a dead sync loop looked exactly like health)."""

    async def scenario():
        cluster = make_cluster(n=2)
        await cluster.start()
        node = cluster.nodes[0]
        try:
            async def failing_timer():
                raise RuntimeError("timer exploded")

            node._spawn(failing_timer())
            for _ in range(3):  # let the task run and the callback fire
                await asyncio.sleep(0)
            assert [type(e) for e in node.task_errors] == [RuntimeError]
            assert str(node.task_errors[0]) == "timer exploded"
            assert node.registry.value("repro_net_task_errors_total") == 1
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_cancelled_tasks_are_not_errors():
    """Shutdown cancellation is the normal path, not a surfaced failure."""

    async def scenario():
        cluster = make_cluster(n=2)
        await cluster.start()
        node = cluster.nodes[0]
        await cluster.stop()  # cancels the sync/flush loops
        await asyncio.sleep(0)
        assert node.task_errors == []

    asyncio.run(scenario())
