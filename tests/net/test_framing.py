"""Framing: length-prefixed frames survive the wire intact."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.adt import Update
from repro.net.framing import (
    MAX_FRAME,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
)


def test_round_trip_with_rest():
    payload = ("msg", 0, (1, 0, Update("insert", (7,))))
    data = encode_frame(payload) + b"trailing"
    value, rest = decode_frame(data)
    assert value == payload
    assert rest == b"trailing"


def test_back_to_back_frames():
    data = encode_frame(1) + encode_frame(2)
    first, rest = decode_frame(data)
    second, rest = decode_frame(rest)
    assert (first, second, rest) == (1, 2, b"")


def test_truncated_prefix_raises():
    with pytest.raises(FrameError):
        decode_frame(b"\x00\x00")


def test_truncated_body_raises():
    data = encode_frame("hello")
    with pytest.raises(FrameError):
        decode_frame(data[:-1])


def test_oversized_length_rejected_before_allocation():
    bogus = (MAX_FRAME + 1).to_bytes(4, "big") + b"x"
    with pytest.raises(FrameError):
        decode_frame(bogus)


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_read_frame_from_stream():
    async def scenario():
        reader = _feed(encode_frame({"a": 1}) + encode_frame({"b": 2}))
        assert await read_frame(reader) == {"a": 1}
        assert await read_frame(reader) == {"b": 2}
        assert await read_frame(reader) is None  # clean EOF

    asyncio.run(scenario())


def test_read_frame_mid_frame_eof_raises():
    async def scenario():
        reader = _feed(encode_frame("payload")[:-2])
        with pytest.raises(FrameError):
            await read_frame(reader)

    asyncio.run(scenario())
