"""Trace propagation across the networked backend.

The tentpole invariant: one client update issued at one HTTP front-end
yields a single causally-linked span tree — front-end parse, local apply,
peer broadcast, remote applies, visibility — under ONE trace id, across
every node of the cluster, mergeable into one Perfetto timeline.  Plus
the wire-level guarantees that make that safe to ship: untraced frames
are byte-identical to the pre-header format, and unknown header fields
never break a link (forward compatibility).
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.core.adt import Update
from repro.core.universal import UniversalReplica
from repro.net.framing import (
    decode_frame,
    encode_frame,
    split_headers,
    with_headers,
    write_frame,
)
from repro.net.harness import LocalCluster
from repro.net.node import MSG
from repro.obs.wall import trace_ids
from repro.proto.effects import Broadcast
from repro.proto.wire import (
    decode_trace_headers,
    decode_ts_key,
    encode_trace_headers,
    encode_ts_key,
)
from repro.specs.set_spec import SetSpec


def run(coro):
    return asyncio.run(coro)


def make_cluster(**kwargs):
    return LocalCluster(
        3,
        lambda pid, n: UniversalReplica(pid, n, SetSpec()),
        sync_interval=0.05,
        **kwargs,
    )


# -- the merged-timeline acceptance criterion -----------------------------------------


def test_one_update_links_spans_across_all_nodes():
    async def body():
        cluster = make_cluster(trace=True)
        await cluster.start()
        try:
            client = cluster.client(0)
            doc = await client.update("insert", 42)
            trace_id = doc["trace"]
            assert trace_id  # minted at the front-end, returned to the client
            await cluster.settle(timeout=10)
            await client.close()
        finally:
            await cluster.stop()
        merged = cluster.merged_trace()
        events = trace_ids(merged)[trace_id]
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], set()).add(e["pid"])
        # Front-end + local apply at the submitting node...
        assert by_name["http.update"] == {0}
        assert by_name["update.local_apply"] == {0}
        # ...remote applies at BOTH other nodes...
        assert by_name["update.remote_apply"] == {1, 2}
        # ...and a visibility event everywhere.
        assert by_name["update.visible"] == {0, 1, 2}

    run(body())


def test_client_supplied_trace_id_is_honoured():
    async def body():
        cluster = make_cluster(trace=True)
        await cluster.start()
        try:
            client = cluster.client(1)
            status, headers, payload = await client.request_full(
                "POST", "/update",
                {"name": "insert", "args": [7]},
                headers={"X-Trace-Id": "client-chose-this"},
            )
            assert status == 200
            assert headers["x-trace-id"] == "client-chose-this"
            await cluster.settle(timeout=10)
            await client.close()
        finally:
            await cluster.stop()
        groups = trace_ids(cluster.merged_trace())
        assert {e["pid"] for e in groups["client-chose-this"]} == {0, 1, 2}

    run(body())


def test_trace_survives_kill_and_restart():
    """An update broadcast while a node is down still reaches that node's
    span tree: the anti-entropy sync response carries the trace context,
    and the restarted incarnation records its own remote apply."""

    async def body():
        with tempfile.TemporaryDirectory() as data_dir:
            cluster = make_cluster(trace=True, data_dir=data_dir)
            await cluster.start()
            try:
                cluster.kill(2)  # victim is down before the update exists
                client = cluster.client(0)
                doc = await client.update("insert", 9)
                trace_id = doc["trace"]
                await client.close()
                await cluster.restart(2)
                await cluster.settle(timeout=10)
            finally:
                await cluster.stop()
            events = trace_ids(cluster.merged_trace())[trace_id]
            remote_pids = {
                e["pid"] for e in events if e["name"] == "update.remote_apply"
            }
            visible_pids = {
                e["pid"] for e in events if e["name"] == "update.visible"
            }
            # The restarted node joined the tree via the sync response.
            assert 2 in remote_pids and visible_pids == {0, 1, 2}
            # And a killed node records nothing after its crash: exactly
            # one visibility per node.
            visible = [e for e in events if e["name"] == "update.visible"]
            assert len(visible) == 3

    run(body())


def test_convergence_lag_recorded_per_node():
    async def body():
        cluster = make_cluster(trace=True)
        await cluster.start()
        try:
            client = cluster.client(0)
            await client.update("insert", 1)
            await cluster.settle(timeout=10)
            await client.close()
        finally:
            await cluster.stop()
        hist = cluster.registry.get("repro_net_convergence_lag_seconds")
        counts = {s.labels[0]: s.count for s in hist.series()}
        assert all(counts.get(str(pid), 0) >= 1 for pid in range(3))

    run(body())


# -- wire format ----------------------------------------------------------------------


def test_msg_frame_headers_round_trip():
    traces = {(3, 1): ("t1-3", 1754700000.25), (7, 0): ("t0-7", 1754700001.5)}
    frame = with_headers((MSG, 1, ["payload"]), encode_trace_headers(traces))
    value, rest = decode_frame(encode_frame(frame))
    assert rest == b""
    kind, src = value[0], value[1]
    payload, headers = split_headers(value[2:])
    assert (kind, src, payload) == (MSG, 1, ["payload"])
    assert decode_trace_headers(headers) == traces


def test_untraced_frames_are_byte_identical_to_legacy():
    legacy = encode_frame((MSG, 0, {"k": 1}))
    headerless = encode_frame(with_headers((MSG, 0, {"k": 1}), None))
    empty = encode_frame(with_headers((MSG, 0, {"k": 1}), {}))
    assert legacy == headerless == empty


def test_unknown_header_fields_are_ignored():
    headers = {
        "traces": {"5.2": ["t2-5", 100.0]},
        "baggage": {"zone": "us-east"},           # a future field
        "compression": "zstd",                    # another future field
    }
    assert decode_trace_headers(headers) == {(5, 2): ("t2-5", 100.0)}
    # Malformed entries inside traces are skipped, not fatal.
    headers = {"traces": {"not-a-ts": ["x", 1.0], "1.0": "not-a-pair",
                          "2.1": ["ok", 3.0]}}
    assert decode_trace_headers(headers) == {(2, 1): ("ok", 3.0)}
    # Entirely foreign headers decode to "no traces".
    assert decode_trace_headers({"whatever": 1}) == {}
    assert decode_trace_headers("junk") == {}


def test_nodes_ignore_unknown_header_fields_on_the_wire():
    """A newer node's extra header fields must not kill replication."""

    async def body():
        cluster = make_cluster()
        await cluster.start()
        try:
            node0, node1 = cluster.nodes[0], cluster.nodes[1]
            # Build the payload a real broadcast would carry...
            effects = node0.core.submit(Update("insert", (11,)))
            payload = next(
                e.payload for e in effects if isinstance(e, Broadcast)
            )
            # ...and ship it with headers from "the future".
            frame = (MSG, 0, payload,
                     {"traces": {"1.0": ["t0-1", 1.0]},
                      "hologram": {"v": 2}})
            reader, writer = await asyncio.open_connection(
                node1.host, node1.peer_port
            )
            write_frame(writer, frame)
            await writer.drain()
            for _ in range(100):
                if 11 in node1.local_state():
                    break
                await asyncio.sleep(0.02)
            assert 11 in node1.local_state()
            writer.close()
        finally:
            await cluster.stop()

    run(body())


def test_ts_key_codec():
    assert encode_ts_key((12, 3)) == "12.3"
    assert decode_ts_key("12.3") == (12, 3)
    assert decode_ts_key(encode_ts_key((0, 0))) == (0, 0)


def test_sim_differential_unaffected_by_direct_submit():
    """Direct (non-HTTP) submits attach no headers — the property the
    sim↔net differential test's byte-identical frames rely on."""

    async def body():
        cluster = make_cluster(trace=True)
        await cluster.start()
        try:
            shipped = []
            node = cluster.nodes[0]
            original = node._ship
            node._ship = lambda dst, payload, traces=None: shipped.append(
                (dst, traces)
            ) or original(dst, payload, traces)
            cluster.submit(0, Update("insert", (5,)))
            assert shipped and all(traces is None for _, traces in shipped)
        finally:
            await cluster.stop()

    run(body())
