"""Unit tests for the load harness's bounded-memory accounting.

The harness itself (simulated users over real sockets) runs in the CI
net-smoke job; what belongs in the tier-1 suite is the arithmetic that
must stay correct for any run length: the deterministic stride-decimation
reservoir that bounds the raw-latency memory, the exact window
percentiles, and the report document shape.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.obs.report import validate_net_report

_PATH = pathlib.Path(__file__).parents[2] / "benchmarks" / "load_harness.py"
_SPEC = importlib.util.spec_from_file_location("load_harness", _PATH)
load_harness = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(load_harness)

Reservoir = load_harness.Reservoir
RunStats = load_harness.RunStats
percentile = load_harness.percentile


class TestReservoir:
    def test_short_stream_kept_verbatim(self):
        r = Reservoir(cap=16)
        for i in range(10):
            r.add(float(i))
        assert r.samples == [float(i) for i in range(10)]
        assert r.seen == 10 and r.stride == 1

    def test_memory_is_bounded_for_any_stream_length(self):
        r = Reservoir(cap=64)
        for i in range(100_000):
            r.add(float(i))
        assert len(r.samples) < 64
        assert r.seen == 100_000

    def test_decimation_keeps_a_roughly_even_subsample(self):
        r = Reservoir(cap=8)
        for i in range(32):
            r.add(float(i))
        # Survivors arrive in order and spread across the whole stream —
        # gaps stay within half a stride of uniform (halving boundaries
        # shift the phase slightly; nothing ever clusters).
        assert r.samples == sorted(r.samples)
        gaps = [b - a for a, b in zip(r.samples, r.samples[1:])]
        assert all(r.stride / 2 <= g <= r.stride * 1.5 for g in gaps)
        assert r.samples[0] < 8 and r.samples[-1] >= 32 - r.stride

    def test_deterministic_no_rng(self):
        a, b = Reservoir(cap=32), Reservoir(cap=32)
        for i in range(10_000):
            a.add(i * 0.001)
            b.add(i * 0.001)
        assert a.samples == b.samples and a.stride == b.stride

    def test_percentiles_track_the_full_stream(self):
        r = Reservoir(cap=256)
        n = 50_000
        for i in range(n):
            r.add(float(i))
        # Exact p99 of 0..n-1 is ~0.99*n; the decimated sample must agree
        # within one stride's worth of resolution.
        approx = percentile(r.samples, 0.99)
        assert abs(approx - 0.99 * n) < n * 0.02

    def test_rejects_degenerate_cap(self):
        with pytest.raises(ValueError, match="cap must be >= 2"):
            Reservoir(cap=1)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_exact_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_input_not_mutated(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 0.5)
        assert samples == [3.0, 1.0, 2.0]


class TestRunStats:
    def test_observe_feeds_window_and_reservoir(self):
        stats = RunStats()
        for dt in (0.001, 0.005, 0.003):
            stats.observe(dt)
        assert stats.ops == 3
        assert stats.max_latency == 0.005
        assert stats.window_lats == [0.001, 0.005, 0.003]
        assert stats.reservoir.seen == 3

    def test_take_window_drains_without_touching_totals(self):
        stats = RunStats()
        stats.observe(0.002)
        stats.window_errors = 1
        lats, errs = stats.take_window()
        assert (lats, errs) == ([0.002], 1)
        assert stats.window_lats == [] and stats.window_errors == 0
        assert stats.ops == 1 and stats.reservoir.seen == 1
        assert stats.take_window() == ([], 0)


class TestHarnessEndToEnd:
    def test_soak_run_emits_valid_report(self):
        report = load_harness.run_load(
            users=8, duration=1.2, ramp=0.2, replicas=2,
            sync_interval=0.05, soak=True, report_interval=0.4,
        )
        assert validate_net_report(report) == []
        assert report["kind"] == "soak"
        summary = report["summary"]
        assert summary["ops"] > 0
        assert summary["ops"] == summary["updates"] + summary["queries"]
        assert summary["errors"] == 0 and summary["task_errors"] == 0
        assert summary["converged"] is True
        # The soak series produced at least one whole window, and its op
        # counts are a partition of (a prefix of) the run's total.
        assert len(report["series"]) >= 1
        assert sum(row["ops"] for row in report["series"]) <= summary["ops"]
        assert summary["latency_samples_kept"] <= load_harness.RESERVOIR_CAP
