"""Crash consistency of the networked backend's storage engine.

The journal/engine unit tests (``tests/storage``) pin the byte-level
contract; here the same fates — torn tail, bit rot, interrupted
compaction, legacy images — hit a *running node*: recovery must feed the
survivors' state back through anti-entropy, corruption must surface as a
typed error (or a quarantine + empty rejoin), and ``/healthz`` must tell
the operator which of those happened.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.universal import UniversalReplica
from repro.net.harness import LocalCluster
from repro.proto.wire import replica_snapshot
from repro.specs.set_spec import SetSpec, insert
from repro.storage import CorruptImageError

SPEC = SetSpec()


def make_cluster(tmp_path, *, http=False, n=3, **node_kwargs):
    return LocalCluster(
        n,
        lambda pid, k: UniversalReplica(pid, k, SPEC),
        data_dir=str(tmp_path),
        sync_interval=0.05,
        http=http,
        node_kwargs=node_kwargs or None,
    )


async def seed_and_flush(cluster, values):
    """Spread ``values`` across the cluster and let every flusher write."""
    for i, v in enumerate(values):
        cluster.submit(i % cluster.n, insert(v))
    await cluster.settle(timeout=10)
    await asyncio.sleep(0.2)  # dirty-flag flush interval


def journal_of(tmp_path, pid):
    return str(tmp_path / f"replica-{pid}.journal")


def test_torn_journal_tail_recovers_prefix_and_rejoins(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path)
        await cluster.start()
        try:
            await seed_and_flush(cluster, range(6))
            cluster.kill(2)
            # a crash that beat the last fsync: chop mid-record
            path = journal_of(tmp_path, 2)
            with open(path, "r+b") as fh:
                fh.truncate(os.path.getsize(path) - 5)
            node = await cluster.restart(2)
            await cluster.settle(timeout=10)
            # the torn record was truncated, the survivors repaired the gap
            assert node.storage_info()["journal"]["truncated_tail"]
            assert cluster.states() == {p: set(range(6)) for p in range(3)}
            assert node.storage_info()["corrupt_image"] is None
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_corrupt_journal_raises_typed_error_at_boot(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path)
        await cluster.start()
        try:
            await seed_and_flush(cluster, range(6))
            cluster.kill(2)
            path = journal_of(tmp_path, 2)
            raw = bytearray(open(path, "rb").read())
            raw[20] ^= 0xFF  # early frame, fsynced long ago — not a tear
            open(path, "wb").write(bytes(raw))
            with pytest.raises(CorruptImageError) as info:
                await cluster.restart(2)
            assert info.value.path == path
            cluster.kill(2)  # discard the half-booted node
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_quarantine_mode_sets_file_aside_and_rejoins_empty(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path, http=True, on_corrupt="quarantine")
        await cluster.start()
        client = None
        try:
            await seed_and_flush(cluster, range(6))
            cluster.kill(2)
            path = journal_of(tmp_path, 2)
            raw = bytearray(open(path, "rb").read())
            raw[20] ^= 0xFF
            open(path, "wb").write(bytes(raw))
            node = await cluster.restart(2)
            # the evidence was set aside, a fresh journal took its place
            assert os.path.exists(path + ".corrupt")
            assert node.corrupt_image is not None
            await cluster.settle(timeout=10)
            assert cluster.states() == {p: set(range(6)) for p in range(3)}
            # the operator can see what happened
            client = cluster.client(2)
            status, doc = await client.request("GET", "/healthz")
            assert status == 200
            storage = doc["storage"]
            assert storage["corrupt_image"]["path"] == path
            assert "CRC" in storage["corrupt_image"]["reason"]
            assert storage["backend"] == "journal"
        finally:
            if client is not None:
                await client.close()
            await cluster.stop()

    asyncio.run(scenario())


def test_legacy_json_image_migrates_into_the_journal(tmp_path):
    # a pre-journal data dir: node 0 has only a v2 JSON snapshot
    offline = UniversalReplica(0, 3, SPEC)
    for v in (10, 11, 12):
        offline.on_update(insert(v))
    legacy = tmp_path / "replica-0.json"
    legacy.write_text(replica_snapshot(offline, version=2), encoding="utf-8")

    async def scenario():
        cluster = make_cluster(tmp_path)
        await cluster.start()
        try:
            await cluster.settle(timeout=10)
            # the legacy state came back and replicated out
            assert cluster.states() == {p: {10, 11, 12} for p in range(3)}
            # ... and was migrated: the journal now exists and wins
            assert os.path.exists(journal_of(tmp_path, 0))
            assert os.path.exists(legacy)  # evidence left untouched
            await asyncio.sleep(0.2)
            cluster.kill(0)
            node = await cluster.restart(0)
            await cluster.settle(timeout=10)
            assert node.storage_info()["backend"] == "journal"
            assert cluster.states()[0] == {10, 11, 12}
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_corrupt_legacy_image_is_a_typed_error_too(tmp_path):
    (tmp_path / "replica-1.json").write_text(
        '{"format": "repro-replica-v2", "pid": 1, "clock": troll',
        encoding="utf-8",
    )

    async def scenario():
        cluster = make_cluster(tmp_path)
        with pytest.raises(CorruptImageError) as info:
            await cluster.start()
        assert info.value.path.endswith("replica-1.json")
        for pid in range(cluster.n):
            cluster.kill(pid)

    asyncio.run(scenario())


def test_stale_compaction_tmp_is_discarded_at_boot(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path)
        await cluster.start()
        try:
            await seed_and_flush(cluster, range(4))
            cluster.kill(1)
            # crash between writing journal.tmp and the rename
            tmp = journal_of(tmp_path, 1) + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(b"half-written next generation")
            await cluster.restart(1)
            await cluster.settle(timeout=10)
            assert not os.path.exists(tmp)
            assert cluster.states() == {p: set(range(4)) for p in range(3)}
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_flushes_append_instead_of_rewriting(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path)
        await cluster.start()
        try:
            await seed_and_flush(cluster, range(3))
            grown = [os.path.getsize(journal_of(tmp_path, 0))]
            for v in (100, 101, 102):
                cluster.submit(0, insert(v))
                await cluster.settle(timeout=10)
                await asyncio.sleep(0.2)
                grown.append(os.path.getsize(journal_of(tmp_path, 0)))
            # strictly growing (appends), and each step is a few cells,
            # not a whole-image rewrite
            steps = [b - a for a, b in zip(grown, grown[1:])]
            assert all(s > 0 for s in steps)
            assert max(steps) < grown[0]
            info = cluster.nodes[0].storage_info()["journal"]
            assert info["compactions"] == 0
            assert info["records"] == info["appends"]
        finally:
            await cluster.stop()

    asyncio.run(scenario())


def test_healthz_reports_journal_storage(tmp_path):
    async def scenario():
        cluster = make_cluster(tmp_path, http=True)
        await cluster.start()
        client = None
        try:
            await seed_and_flush(cluster, range(3))
            client = cluster.client(0)
            status, doc = await client.request("GET", "/healthz")
            assert status == 200
            storage = doc["storage"]
            assert storage["backend"] == "journal"
            assert storage["corrupt_image"] is None
            assert storage["journal"]["records"] > 0
            assert storage["journal"]["digest"]
            # the reported digest is the journal's real rolling digest
            assert storage["journal"]["digest"] == \
                cluster.nodes[0]._store.digest_hex
        finally:
            if client is not None:
                await client.close()
            await cluster.stop()

    asyncio.run(scenario())
