"""The HTTP object front-end: routes, codecs, error shapes."""

from __future__ import annotations

import asyncio
import json

from repro.core.universal import UniversalReplica
from repro.net.harness import LocalCluster
from repro.net.http import PROM_CONTENT_TYPE
from repro.proto.wire import decode_value
from repro.specs.map_spec import MapSpec
from repro.specs.set_spec import SetSpec


def run(coro):
    return asyncio.run(coro)


def with_cluster(spec_factory, scenario):
    async def body():
        cluster = LocalCluster(
            3,
            lambda pid, n: UniversalReplica(pid, n, spec_factory()),
            sync_interval=0.05,
            http=True,
        )
        await cluster.start()
        clients = [cluster.client(pid) for pid in range(3)]
        try:
            await scenario(cluster, clients)
        finally:
            for c in clients:
                await c.close()
            await cluster.stop()

    run(body())


def test_update_then_query_through_http():
    async def scenario(cluster, clients):
        doc = await clients[0].update("insert", 5)
        assert doc["ok"] is True
        assert doc["timestamp"] == [1, 0]  # JSON has no tuples on this path
        assert await clients[0].query("contains", 5) is True
        assert await clients[0].query("read") == {5}

    with_cluster(SetSpec, scenario)


def test_updates_at_one_front_end_reach_the_others():
    async def scenario(cluster, clients):
        await clients[0].update("insert", 1)
        await cluster.settle(timeout=10)
        assert await clients[1].query("contains", 1) is True
        assert await clients[2].state() == {1}

    with_cluster(SetSpec, scenario)


def test_map_object_round_trips_structured_values():
    async def scenario(cluster, clients):
        await clients[0].update("put", "k", 7)
        assert await clients[0].query("get", "k") == 7
        assert await clients[0].query("keys") == frozenset({"k"})

    with_cluster(MapSpec, scenario)


def test_healthz_witness_and_metrics_routes():
    async def scenario(cluster, clients):
        status, doc = await clients[1].request("GET", "/healthz")
        assert (status, doc["ok"], doc["pid"], doc["n"]) == (200, True, 1, 3)
        # POST /update claims its own witness in the response, so probe
        # /witness after a query (queries leave theirs unclaimed)
        await clients[1].update("insert", 3)
        await clients[1].query("read")
        status, doc = await clients[1].request("GET", "/witness")
        witness = decode_value(doc["witness"])
        assert status == 200 and "timestamp" in witness
        status, doc = await clients[1].request("GET", "/metrics")
        assert status == 200 and isinstance(doc["metrics"], dict)

    with_cluster(SetSpec, scenario)


def test_unknown_route_and_bad_body():
    async def scenario(cluster, clients):
        status, _ = await clients[0].request("GET", "/nope")
        assert status == 404
        status, doc = await clients[0].request("POST", "/update", {"args": [1]})
        assert status == 400 and "error" in doc
        status, _ = await clients[0].request("POST", "/update",
                                             {"name": "no_such_op", "args": []})
        assert status == 400

    with_cluster(SetSpec, scenario)


def test_zero_arg_query_shorthand():
    async def scenario(cluster, clients):
        await clients[0].update("insert", 2)
        status, doc = await clients[0].request("GET", "/query/read")
        assert status == 200
        assert doc["output"] == {"@": "frozenset", "items": [2]}

    with_cluster(SetSpec, scenario)


def test_metrics_prometheus_text_via_accept_header():
    async def scenario(cluster, clients):
        await clients[0].update("insert", 1)
        status, headers, body = await clients[0].request_full(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["content-type"] == PROM_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE repro_net_frames_sent_total counter" in text
        assert 'repro_net_convergence_lag_seconds_bucket{pid="0",le=' in text

    with_cluster(SetSpec, scenario)


def test_metrics_prometheus_text_via_query_param():
    async def scenario(cluster, clients):
        status, headers, body = await clients[0].request_full(
            "GET", "/metrics?format=text"
        )
        assert status == 200
        assert headers["content-type"] == PROM_CONTENT_TYPE
        assert b"# TYPE" in body
        # Without negotiation the JSON document is unchanged.
        status, headers, body = await clients[0].request_full("GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert "metrics" in json.loads(body.decode("utf-8"))

    with_cluster(SetSpec, scenario)


def test_metrics_text_escapes_label_values():
    async def scenario(cluster, clients):
        gauge = cluster.registry.gauge(
            "repro_test_escaping", "label escaping probe", label_names=("path",)
        )
        gauge.labels(path='C:\\tmp\n"quoted"').set(1)
        _, _, body = await clients[0].request_full(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        line = next(
            ln for ln in body.decode("utf-8").splitlines()
            if ln.startswith("repro_test_escaping{")
        )
        assert line == 'repro_test_escaping{path="C:\\\\tmp\\n\\"quoted\\""} 1'

    with_cluster(SetSpec, scenario)


def test_healthz_surfaces_task_errors():
    async def scenario(cluster, clients):
        status, doc = await clients[2].request("GET", "/healthz")
        assert status == 200
        assert doc["task_errors"] == {"count": 0, "last": None}
        # A crashed background task shows up in the health document.
        node = cluster.nodes[2]
        node.task_errors.append(RuntimeError("sync loop died"))
        status, doc = await clients[2].request("GET", "/healthz")
        assert doc["ok"] is True  # health reports, it does not flap
        assert doc["task_errors"]["count"] == 1
        assert "sync loop died" in doc["task_errors"]["last"]

    with_cluster(SetSpec, scenario)


def test_update_returns_trace_id_header():
    async def scenario(cluster, clients):
        status, headers, body = await clients[0].request_full(
            "POST", "/update", {"name": "insert", "args": [4]}
        )
        assert status == 200
        doc = json.loads(body.decode("utf-8"))
        assert doc["trace"] == headers["x-trace-id"]
        # Distinct updates get distinct minted ids.
        _, headers2, _ = await clients[0].request_full(
            "POST", "/update", {"name": "insert", "args": [5]}
        )
        assert headers2["x-trace-id"] != headers["x-trace-id"]

    with_cluster(SetSpec, scenario)
