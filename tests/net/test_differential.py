"""Sim↔net differential test: two backends, one protocol, one witness.

The refactor's core claim is that the deterministic simulator and the
asyncio transport interpret the *same* :class:`repro.proto.core.
ProtocolCore` without adding semantics.  This test drives an identical
seeded workload through both backends and asserts:

1. both converge to the identical canonical state, and
2. the per-process witness streams (the ``witness_meta`` after every
   locally issued operation — timestamps, visibility) serialize to
   **byte-identical** :func:`repro.proto.wire.encode_payload` bytes.

Determinism across a real network hinges on one structural property:
each burst of submissions happens synchronously, in one event-loop turn
(``submit`` never awaits), so no delivery can interleave with stamping —
every replica stamps against the clock value it converged to after the
previous burst, same as the simulator.  Between bursts both backends run
to full convergence, which equalizes the Lamport clocks again.
"""

from __future__ import annotations

import asyncio

from repro.core.adt import Update, _canonical
from repro.core.universal import UniversalReplica
from repro.net.harness import LocalCluster
from repro.proto.wire import encode_payload
from repro.sim.cluster import Cluster
from repro.specs.counter import CounterSpec
from repro.specs.set_spec import SetSpec

N = 3

#: the seeded workload: bursts of (pid, update-or-query) operations.
#: Within a burst nothing is delivered; between bursts both backends
#: converge fully.  Queries are (pid, name, args) triples.
SET_WORKLOAD = [
    [(0, Update("insert", (1,))), (1, Update("insert", (2,))),
     (2, Update("insert", (3,)))],
    [(0, Update("delete", (2,))), (1, Update("insert", (4,))),
     (0, ("read", ())), (2, ("contains", (1,)))],
    [(2, Update("insert", (5,))), (2, Update("delete", (5,))),
     (1, ("read", ()))],
    [(0, Update("insert", (6,))), (1, Update("delete", (1,))),
     (2, Update("insert", (7,))), (0, ("read", ())), (1, ("read", ())),
     (2, ("read", ()))],
]

COUNTER_WORKLOAD = [
    [(0, Update("inc", (5,))), (1, Update("dec", (2,))),
     (2, Update("inc", (1,)))],
    [(0, ("read", ())), (1, Update("inc", (10,))), (2, ("sign", ()))],
    [(2, Update("dec", (3,))), (0, Update("inc", (2,))), (1, ("read", ()))],
]


def run_sim(spec_factory, workload):
    """The workload through the virtual-time backend."""
    spec = spec_factory()
    cluster = Cluster(N, lambda pid, n: UniversalReplica(pid, n, spec))
    witness = {pid: [] for pid in range(N)}
    for burst in workload:
        for pid, op in burst:
            if isinstance(op, Update):
                cluster.update(pid, op)
            else:
                cluster.query(pid, op[0], op[1])
            # witness_meta() is consuming and the Cluster already claimed
            # it for the trace — read it back from the trace record.
            witness[pid].append(dict(cluster.trace.records[-1].meta))
        cluster.run()
        cluster.anti_entropy()
    return {pid: _canonical(s) for pid, s in cluster.states().items()}, witness


def run_net(spec_factory, workload):
    """The same workload through real sockets on loopback."""

    async def scenario():
        spec = spec_factory()
        cluster = LocalCluster(
            N, lambda pid, n: UniversalReplica(pid, n, spec),
            sync_interval=0.05, http=False,
        )
        await cluster.start()
        witness = {pid: [] for pid in range(N)}
        try:
            for burst in workload:
                # one synchronous turn: no delivery interleaves stamping
                for pid, op in burst:
                    if isinstance(op, Update):
                        # submit() claims the (consuming) witness itself
                        witness[pid].append(cluster.submit(pid, op))
                    else:
                        cluster.query(pid, op[0], op[1])
                        witness[pid].append(cluster.nodes[pid].witness_meta())
                await cluster.settle(timeout=15)
            states = {pid: _canonical(s) for pid, s in cluster.states().items()}
            return states, witness
        finally:
            await cluster.stop()

    return asyncio.run(scenario())


def assert_backends_agree(spec_factory, workload):
    sim_states, sim_witness = run_sim(spec_factory, workload)
    net_states, net_witness = run_net(spec_factory, workload)
    # 1. identical converged states, and converged at all
    assert len(set(sim_states.values())) == 1
    assert sim_states == net_states
    # 2. byte-identical witness streams, per process
    for pid in range(N):
        sim_bytes = [encode_payload(m) for m in sim_witness[pid]]
        net_bytes = [encode_payload(m) for m in net_witness[pid]]
        assert sim_bytes == net_bytes, (
            f"witness stream diverged at pid {pid}: "
            f"{sim_witness[pid]} != {net_witness[pid]}"
        )


def test_set_workload_is_backend_invariant():
    assert_backends_agree(SetSpec, SET_WORKLOAD)


def test_counter_workload_is_backend_invariant():
    assert_backends_agree(CounterSpec, COUNTER_WORKLOAD)


def test_witness_streams_are_nonempty_and_stamped():
    _, witness = run_sim(SetSpec, SET_WORKLOAD)
    metas = [m for stream in witness.values() for m in stream]
    assert metas and all("timestamp" in m for m in metas)
