"""Unit tests for Lamport clocks, timestamps and vector clocks."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.clocks import LamportClock, Timestamp, VectorClock


class TestTimestamp:
    def test_lexicographic_order_clock_first(self):
        assert Timestamp(1, 5) < Timestamp(2, 0)

    def test_lexicographic_order_pid_breaks_ties(self):
        assert Timestamp(3, 1) < Timestamp(3, 2)

    def test_equal_iff_same_components(self):
        assert Timestamp(2, 3) == Timestamp(2, 3)
        assert Timestamp(2, 3) != Timestamp(2, 4)

    def test_negative_clock_rejected(self):
        with pytest.raises(ValueError):
            Timestamp(-1, 0)

    def test_negative_pid_rejected(self):
        with pytest.raises(ValueError):
            Timestamp(0, -2)

    def test_encoded_size_grows_logarithmically(self):
        small = Timestamp(1, 0).encoded_size_bits()
        big = Timestamp(1 << 20, 0).encoded_size_bits()
        # 2^20 times more operations cost ~20 extra bits, not 2^20.
        assert big - small == 20

    def test_encoded_size_counts_both_components(self):
        assert Timestamp(255, 255).encoded_size_bits() == 16

    @given(
        st.tuples(st.integers(0, 10**6), st.integers(0, 100)),
        st.tuples(st.integers(0, 10**6), st.integers(0, 100)),
    )
    def test_order_matches_tuple_order(self, a, b):
        ta, tb = Timestamp(*a), Timestamp(*b)
        assert (ta < tb) == (a < b)


class TestLamportClock:
    def test_starts_at_initial(self):
        assert LamportClock(0).value == 0
        assert LamportClock(0, initial=7).value == 7

    def test_tick_increments_and_stamps(self):
        c = LamportClock(3)
        ts = c.tick()
        assert ts == Timestamp(1, 3)
        assert c.value == 1

    def test_successive_ticks_strictly_increase(self):
        c = LamportClock(0)
        stamps = [c.tick() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_merge_raises_to_received_value(self):
        c = LamportClock(0)
        c.merge(10)
        assert c.value == 10

    def test_merge_never_decreases(self):
        c = LamportClock(0, initial=20)
        c.merge(3)
        assert c.value == 20

    def test_merge_accepts_timestamp(self):
        c = LamportClock(0)
        c.merge(Timestamp(9, 4))
        assert c.value == 9

    def test_merge_then_tick_exceeds_received(self):
        # The happened-before containment of the (clock, pid) order hinges
        # on this: an event after a receipt outranks the sent stamp.
        c = LamportClock(1)
        c.merge(5)
        assert c.tick() > Timestamp(5, 0)

    def test_negative_pid_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(-1)

    def test_negative_merge_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(0).merge(-5)

    def test_peek_does_not_advance(self):
        c = LamportClock(2)
        c.tick()
        before = c.peek()
        assert c.peek() == before
        assert c.value == 1

    @given(st.lists(st.integers(0, 1000), max_size=50))
    def test_clock_monotone_under_any_merge_sequence(self, merges):
        c = LamportClock(0)
        last = c.value
        for m in merges:
            c.merge(m)
            assert c.value >= last
            last = c.value
            assert c.tick().clock == c.value


class TestVectorClock:
    def test_initially_zero(self):
        assert VectorClock(3).as_tuple() == (0, 0, 0)

    def test_needs_at_least_one_process(self):
        with pytest.raises(ValueError):
            VectorClock(0)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_tick_increments_one_component(self):
        v = VectorClock(3).tick(1)
        assert v.as_tuple() == (0, 1, 0)

    def test_merge_is_componentwise_max(self):
        a = VectorClock([3, 0, 1])
        b = VectorClock([1, 2, 1])
        assert a.merge(b).as_tuple() == (3, 2, 1)

    def test_partial_order(self):
        assert VectorClock([1, 0]) < VectorClock([1, 1])
        assert not VectorClock([1, 0]) < VectorClock([0, 2])

    def test_concurrency(self):
        assert VectorClock([1, 0]).concurrent_with(VectorClock([0, 1]))
        assert not VectorClock([1, 0]).concurrent_with(VectorClock([2, 0]))

    def test_equality_and_hash(self):
        assert VectorClock([1, 2]) == VectorClock([1, 2])
        assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            VectorClock(2).merge(VectorClock(3))

    def test_pid_bounds_checked(self):
        with pytest.raises(IndexError):
            VectorClock(2).tick(5)

    def test_causally_ready_next_message(self):
        local = VectorClock([1, 0])
        stamp = VectorClock([2, 0])  # sender 0's next event
        assert stamp.causally_ready(0, local)

    def test_not_ready_when_gap_in_sender(self):
        local = VectorClock([0, 0])
        stamp = VectorClock([2, 0])  # skipped message 1
        assert not stamp.causally_ready(0, local)

    def test_not_ready_when_depends_on_unseen_third_party(self):
        local = VectorClock([0, 0, 0])
        stamp = VectorClock([1, 0, 3])  # sender 0, but saw 3 events of p2
        assert not stamp.causally_ready(0, local)

    def test_copy_is_independent(self):
        a = VectorClock([1, 1])
        b = a.copy()
        b.tick(0)
        assert a.as_tuple() == (1, 1)

    @given(st.lists(st.integers(0, 5), min_size=2, max_size=5),
           st.lists(st.integers(0, 5), min_size=2, max_size=5))
    def test_merge_is_lub(self, xs, ys):
        n = min(len(xs), len(ys))
        a, b = VectorClock(xs[:n]), VectorClock(ys[:n])
        m = a.copy().merge(b)
        assert a <= m and b <= m
        assert m.as_tuple() == tuple(max(x, y) for x, y in zip(xs[:n], ys[:n]))
