"""Unit tests for deterministic id allocation."""

from __future__ import annotations

from repro.util.ids import IdAllocator, fresh_token


class TestIdAllocator:
    def test_sequential_within_namespace(self):
        alloc = IdAllocator()
        assert alloc.fresh("p0") == ("p0", 0)
        assert alloc.fresh("p0") == ("p0", 1)

    def test_namespaces_are_independent(self):
        alloc = IdAllocator()
        alloc.fresh("a")
        assert alloc.fresh("b") == ("b", 0)

    def test_no_collisions_across_namespaces(self):
        alloc = IdAllocator()
        ids = {alloc.fresh(ns) for ns in ("a", "b") for _ in range(10)}
        assert len(ids) == 20

    def test_determinism(self):
        a, b = IdAllocator(), IdAllocator()
        seq_a = [a.fresh(i % 3) for i in range(20)]
        seq_b = [b.fresh(i % 3) for i in range(20)]
        assert seq_a == seq_b

    def test_peek_reports_allocation_count(self):
        alloc = IdAllocator()
        assert alloc.peek("x") == 0
        alloc.fresh("x")
        alloc.fresh("x")
        assert alloc.peek("x") == 2

    def test_default_namespace(self):
        alloc = IdAllocator()
        assert alloc.fresh() == (0, 0)


def test_fresh_token_is_unique():
    tokens = {fresh_token("t") for _ in range(100)}
    assert len(tokens) == 100
