"""Unit and property tests for the relation/poset helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.util import ordering as o


def rel(*edges, nodes=()):
    r = o.empty_relation(nodes)
    for a, b in edges:
        o.add_edge(r, a, b)
    return r


class TestAcyclicity:
    def test_empty_is_acyclic(self):
        assert o.is_acyclic({})

    def test_chain_is_acyclic(self):
        assert o.is_acyclic(rel((1, 2), (2, 3)))

    def test_cycle_detected(self):
        assert not o.is_acyclic(rel((1, 2), (2, 3), (3, 1)))

    def test_self_loop_is_a_cycle(self):
        assert not o.is_acyclic(rel((1, 1)))

    def test_strip_reflexive_removes_self_loops(self):
        r = o.strip_reflexive(rel((1, 1), (1, 2)))
        assert o.is_acyclic(r)
        assert r[1] == {2}


class TestClosure:
    def test_transitive_closure_of_chain(self):
        c = o.relation_closure(rel((1, 2), (2, 3)))
        assert c[1] == {2, 3}
        assert c[2] == {3}

    def test_closure_of_diamond(self):
        c = o.relation_closure(rel(("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")))
        assert c["a"] == {"b", "c", "d"}

    def test_closure_idempotent(self):
        r = rel((1, 2), (2, 3), (1, 4))
        once = o.relation_closure(r)
        twice = o.relation_closure(once)
        assert once == twice

    def test_restrict_keeps_induced_edges(self):
        r = o.relation_closure(rel((1, 2), (2, 3)))
        sub = o.restrict(r, {1, 3})
        assert sub == {1: {3}, 3: set()}

    def test_union_merges_universes(self):
        u = o.union(rel((1, 2)), rel((3, 4)))
        assert set(u) == {1, 2, 3, 4}

    def test_contains(self):
        big = rel((1, 2), (2, 3), (1, 3))
        small = rel((1, 3), nodes=(2,))
        assert o.contains(big, small)
        assert not o.contains(small, big)


class TestTotalOrder:
    def test_chain_is_total(self):
        assert o.is_total_order(rel((1, 2), (2, 3)))

    def test_antichain_is_not_total(self):
        assert not o.is_total_order(rel(nodes=(1, 2)))

    def test_cycle_is_not_total(self):
        assert not o.is_total_order(rel((1, 2), (2, 1)))

    def test_reflexive_edges_tolerated(self):
        assert o.is_total_order(rel((1, 1), (1, 2), (2, 2)))


class TestTopologicalSorts:
    def test_antichain_yields_all_permutations(self):
        sorts = list(o.topological_sorts(rel(nodes=(1, 2, 3))))
        assert len(sorts) == 6
        assert len(set(sorts)) == 6

    def test_chain_yields_one(self):
        sorts = list(o.topological_sorts(rel((1, 2), (2, 3))))
        assert sorts == [(1, 2, 3)]

    def test_two_chains_interleavings_are_binomial(self):
        # Two independent chains of lengths 2 and 3: C(5,2) = 10 orders.
        r = rel(("a1", "a2"), ("b1", "b2"), ("b2", "b3"))
        assert len(list(o.topological_sorts(r))) == math.comb(5, 2)

    def test_every_sort_respects_the_relation(self):
        r = rel((1, 2), (1, 3), (3, 4))
        for seq in o.topological_sorts(r):
            assert o.sequence_respects(r, seq)

    def test_empty_relation_single_empty_sort(self):
        assert list(o.topological_sorts({})) == [()]

    def test_enumeration_is_deterministic(self):
        r = rel(("x", "y"), nodes=("z",))
        assert list(o.topological_sorts(r)) == list(o.topological_sorts(r))


class TestSequenceRespects:
    def test_accepts_valid_linear_extension(self):
        r = rel((1, 2))
        assert o.sequence_respects(r, (1, 2))

    def test_rejects_violating_order(self):
        r = rel((1, 2))
        assert not o.sequence_respects(r, (2, 1))

    def test_rejects_wrong_universe(self):
        r = rel((1, 2))
        assert not o.sequence_respects(r, (1,))
        assert not o.sequence_respects(r, (1, 2, 3))

    def test_checks_transitive_consequences(self):
        r = rel((1, 2), (2, 3))
        assert not o.sequence_respects(r, (3, 1, 2))


class TestMaximalChains:
    def test_two_process_history_shape(self):
        r = rel(("a1", "a2"), ("b1", "b2"))
        chains = o.maximal_chains(r)
        assert sorted(chains) == [("a1", "a2"), ("b1", "b2")]

    def test_diamond_has_two_chains(self):
        r = rel(("s", "l"), ("s", "r"), ("l", "t"), ("r", "t"))
        chains = o.maximal_chains(r)
        assert sorted(chains) == [("s", "l", "t"), ("s", "r", "t")]

    def test_isolated_node_is_its_own_chain(self):
        assert o.maximal_chains(rel(nodes=("x",))) == [("x",)]

    def test_empty(self):
        assert o.maximal_chains({}) == []


class TestCounting:
    def test_linear_extension_count_matches_enumeration(self):
        r = rel((1, 2), nodes=(3,))
        assert o.linear_extension_count(r) == 3

    def test_count_respects_limit(self):
        r = rel(nodes=tuple(range(6)))
        assert o.linear_extension_count(r, limit=10) == 10


@st.composite
def random_dags(draw):
    n = draw(st.integers(1, 6))
    nodes = list(range(n))
    r = o.empty_relation(nodes)
    # Only forward edges i -> j with i < j: guaranteed acyclic.
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                o.add_edge(r, i, j)
    return r


class TestProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_all_topological_sorts_are_linear_extensions(self, r):
        count = 0
        for seq in o.topological_sorts(r):
            assert o.sequence_respects(r, seq)
            count += 1
            if count > 200:
                break
        assert count >= 1  # a DAG always has at least one sort

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_closure_contains_original(self, r):
        c = o.relation_closure(r)
        assert o.contains(c, r)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_maximal_chains_are_chains_and_maximal(self, r):
        closure = o.relation_closure(r)
        for chain in o.maximal_chains(r):
            for a, b in zip(chain, chain[1:]):
                assert b in closure[a]
            first, last = chain[0], chain[-1]
            assert not any(first in closure[m] for m in r if m != first)
            assert not closure[last]
