"""Integration: the Section VI case study — OR-set vs the UC set.

* The OR-set converges to {1,2} on the Fig. 1b scenario: eventually
  consistent for the Insert-wins concurrent spec, but NOT update
  consistent (no linearization of the updates ends there).
* The universal construction converges to a state some update
  linearization explains (here: exactly one of ∅, {1}, {2}).
* Proposition 3 on real traces: the UC set's behaviour is acceptable to
  an Insert-wins user (checked via the exact Def. 10 checker on the small
  gadget histories).
"""

from __future__ import annotations

from repro.core.criteria import UC
from repro.core.criteria.insert_wins import InsertWinsSEC
from repro.core.linearization import update_linearization_states
from repro.core.universal import UniversalReplica
from repro.crdt import ORSetReplica
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
IW = InsertWinsSEC()


def fig_1b_run(replica_factory):
    c = Cluster(2, replica_factory)
    c.partition([[0], [1]])
    c.update(0, S.insert(1))
    c.update(0, S.delete(2))
    c.update(1, S.insert(2))
    c.update(1, S.delete(1))
    c.heal()
    c.run()
    return c, (c.query(0, "read"), c.query(1, "read"))


def to_omega_history(cluster):
    """The run's history with final reads flagged ω (read forever)."""
    from tests.integration.test_proposition1 import flag_final_reads_omega

    return flag_final_reads_omega(cluster)


class TestORSetBehaviour:
    def test_converges_to_insert_wins_state(self):
        _, reads = fig_1b_run(lambda pid, n: ORSetReplica(pid, n))
        assert reads == (frozenset({1, 2}), frozenset({1, 2}))

    def test_that_state_is_not_update_consistent(self):
        c, _ = fig_1b_run(lambda pid, n: ORSetReplica(pid, n))
        h = to_omega_history(c)
        assert not UC.check(h, SPEC)

    def test_but_it_is_insert_wins_sec(self):
        c, _ = fig_1b_run(lambda pid, n: ORSetReplica(pid, n))
        h = to_omega_history(c)
        assert IW.check(h, SPEC)


class TestUCSetBehaviour:
    def test_converges_to_a_linearization_state(self):
        c, reads = fig_1b_run(lambda pid, n: UniversalReplica(pid, n, SPEC))
        assert reads[0] == reads[1]
        history = c.trace.to_history()
        allowed = update_linearization_states(
            history.restrict(history.updates), SPEC
        )
        assert SPEC.canonical(reads[0]) in allowed
        assert reads[0] != frozenset({1, 2})  # never the OR-set's state

    def test_history_is_update_consistent(self):
        c, _ = fig_1b_run(lambda pid, n: UniversalReplica(pid, n, SPEC))
        h = to_omega_history(c)
        assert UC.check(h, SPEC)

    def test_proposition_3_uc_trace_is_insert_wins_acceptable(self):
        c, _ = fig_1b_run(lambda pid, n: UniversalReplica(pid, n, SPEC))
        h = to_omega_history(c)
        assert IW.check(h, SPEC)
