"""Integration: wait-freedom under faults — "any number of nodes may crash".

The universal construction's availability claim: every operation completes
locally regardless of crashes, partitions and delays; survivors converge.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import converged, update_consistent_convergence
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def cluster(n=5, **kw):
    return Cluster(n, lambda pid, total: UniversalReplica(pid, total, SPEC), **kw)


class TestCrashTolerance:
    def test_all_but_one_process_may_crash(self):
        c = cluster(n=5)
        c.update(0, S.insert(1))
        c.run()
        for pid in range(4):
            c.crash(pid)
        # The last process keeps operating alone — wait-freedom.
        c.update(4, S.insert(2))
        c.update(4, S.delete(1))
        assert c.query(4, "read") == frozenset({2})
        assert converged(c)

    def test_crash_during_partition(self):
        c = cluster(n=4)
        c.partition([[0, 1], [2, 3]])
        c.update(0, S.insert(1))
        c.update(2, S.insert(2))
        c.run()
        c.crash(0)
        c.heal()
        c.run()
        # p0's pre-crash broadcast was in flight: reliability delivers it.
        for pid in (1, 2, 3):
            assert c.query(pid, "read") == frozenset({1, 2})

    def test_crash_mid_broadcast_partial_knowledge(self):
        # Adversarial: the crasher's messages are lost; survivors simply
        # never see that update, and still agree with each other.
        c = cluster(n=3)
        c.update(0, S.insert(99))
        c.crash(0, drop_outgoing=True)
        c.update(1, S.insert(1))
        c.run()
        assert c.query(1, "read") == c.query(2, "read") == frozenset({1})

    @given(
        st.integers(0, 5000),
        st.sets(st.integers(0, 3), max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_crashes_never_block_survivors(self, seed, crashers):
        c = cluster(n=4, latency=ExponentialLatency(3.0), seed=seed)
        for i in range(10):
            c.update(i % 4, S.insert(i))
        for pid in crashers:
            c.crash(pid)
        survivors = c.alive()
        for pid in survivors:
            c.update(pid, S.insert(100 + pid))  # must not raise
        c.run()
        ok, _, states = update_consistent_convergence(c, SPEC)
        # Survivors agree among themselves; the timestamp-order replay of
        # *all issued* updates only matches when every message that was
        # sent got delivered to every survivor — which crashes with
        # drop_outgoing=False guarantee here.
        assert ok
        assert set(states) == set(survivors)
