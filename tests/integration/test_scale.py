"""Scale sanity: the guarantees hold (and stay affordable) beyond toy sizes."""

from __future__ import annotations

from repro.analysis import (
    collect_message_stats,
    staleness_report,
    update_consistent_convergence,
)
from repro.core.checkpoint import CheckpointedReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import run_workload, zipf_set_workload
from repro.specs import SetSpec

SPEC = SetSpec()


class TestSixteenProcesses:
    def test_uc_convergence_at_n16(self):
        c = Cluster(16, lambda p, n: UniversalReplica(p, n, SPEC),
                    latency=ExponentialLatency(2.0), seed=12)
        wl = zipf_set_workload(16, 600, support=20, seed=12)
        run_workload(c, wl)
        ok, _, states = update_consistent_convergence(c, SPEC)
        assert ok
        assert len(states) == 16

    def test_message_complexity_at_scale(self):
        c = Cluster(16, lambda p, n: UniversalReplica(p, n, SPEC),
                    latency=ExponentialLatency(2.0), seed=13)
        wl = [w for w in zipf_set_workload(16, 300, seed=13) if w.is_update]
        run_workload(c, wl)
        stats = collect_message_stats(c)
        assert stats.broadcast_optimal()
        assert stats.sends_per_update == 15.0
        # Timestamp stays tiny even at 300 ops x 16 processes.
        assert stats.max_timestamp_bits <= 14


class TestLongRun:
    def test_two_thousand_operations(self):
        c = Cluster(
            4,
            lambda p, n: CheckpointedReplica(
                p, n, SPEC, checkpoint_interval=128, track_witness=True
            ),
            latency=ExponentialLatency(1.5), seed=14,
        )
        wl = zipf_set_workload(4, 2000, support=30, seed=14)
        run_workload(c, wl)
        ok, _, _ = update_consistent_convergence(c, SPEC)
        assert ok
        report = staleness_report(c.trace)
        assert report.queries > 0
        # Post-drain there are no permanently stale reads: the trace's
        # stale ones were all transient (bounded version lag).
        assert report.max_version_lag < 2000

    def test_crash_storm_at_scale(self):
        c = Cluster(8, lambda p, n: UniversalReplica(p, n, SPEC),
                    latency=ExponentialLatency(2.0), seed=15)
        wl = [w for w in zipf_set_workload(8, 300, seed=15) if w.is_update]
        for i, item in enumerate(sorted(wl, key=lambda w: w.time)):
            if item.pid in c.crashed:
                continue
            c.run_until(item.time)
            c.update(item.pid, item.op)
            if i in (60, 120, 180) and len(c.alive()) > 2:
                c.crash(max(c.alive()))
        c.run()
        ok, _, states = update_consistent_convergence(c, SPEC)
        assert ok
        assert len(states) == len(c.alive()) >= 2
