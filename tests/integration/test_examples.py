"""Smoke tests: every example script runs to completion and prints its
headline results.  Examples are documentation that executes — they must
never rot."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "witness verification: PASS" in out
    assert "exactly one broadcast per update: True" in out


def test_collaborative_editing(capsys):
    out = run_example("collaborative_editing", capsys)
    assert "intention preservation (each author's own order kept): True" in out
    assert "NEVER reconcile" in out  # the causal baseline diverges


def test_replicated_kv_store(capsys):
    out = run_example("replicated_kv_store", capsys)
    assert "ALL nodes agree" in out
    assert "survivors agree" in out


def test_crdt_showdown(capsys):
    out = run_example("crdt_showdown", capsys)
    assert "UC-Set (Alg. 1)" in out
    assert "re-insert worked" in out


def test_consistency_audit(capsys):
    out = run_example("consistency_audit", capsys)
    assert "VIOLATED" in out  # the buggy implementation is caught
    assert "PASS" in out


def test_social_network(capsys):
    out = run_example("social_network", capsys)
    assert "converged to an agreed linearization: True" in out
    assert "structural invariant (edges only between members): True" in out


def test_task_queue(capsys):
    out = run_example("task_queue", capsys)
    assert "queue converged" in out
    assert "split front/pop protocol" in out


def test_model_checking(capsys):
    out = run_example("model_checking", capsys)
    assert "converged in EVERY schedule" in out
    assert "Proposition 1 is structural" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "collaborative_editing",
        "replicated_kv_store",
        "crdt_showdown",
        "consistency_audit",
        "social_network",
        "task_queue",
        "model_checking",
    ],
)
def test_examples_have_docstrings_and_main(name):
    path = EXAMPLES / f"{name}.py"
    text = path.read_text()
    assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""'))
    assert "def main()" in text
