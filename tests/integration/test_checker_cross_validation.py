"""Cross-validation: the exact criterion checkers against the witness path.

Two independent implementations of Definition 9 — exhaustive search and
polynomial witness verification — must agree wherever both apply:

* every small Algorithm-1 trace carries a valid witness, so the *exact*
  SUC checker must also accept its history (the search must find at least
  the witness the algorithm built);
* if the exact checker returns a witness, that witness must pass the
  polynomial verifier (the searcher's output is a real witness);
* corrupting a valid witness must be caught by the verifier AND the
  corrupted structures must not be reproducible by the searcher on
  contradictory histories.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.criteria import SUC
from repro.core.criteria.witness import SUCWitness, verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def tiny_run(seed: int):
    """A small Algorithm 1 run (≤ 8 events keeps the exact search fast)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    c = Cluster(2, lambda p, n: UniversalReplica(p, n, SPEC),
                latency=ExponentialLatency(3.0), seed=seed)
    for _ in range(6):
        pid = int(rng.integers(2))
        roll = rng.random()
        if roll < 0.4:
            c.query(pid, "read")
        else:
            v = int(rng.integers(2))
            c.update(pid, S.insert(v) if roll < 0.8 else S.delete(v))
        if rng.random() < 0.5:
            c.run_until(c.now + 1.0)
    c.run()
    return c


class TestExactAgreesWithWitness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_exact_checker_accepts_algorithm1_traces(self, seed):
        c = tiny_run(seed)
        h = c.trace.to_history()
        # The witness path accepts (Proposition 4)...
        witness = c.trace.suc_witness(h)
        assert verify_suc_witness(h, SPEC, witness)
        # ...so the exhaustive search must find SOME witness too.
        assert SUC.check(h, SPEC)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_search_witness_passes_the_verifier(self, seed):
        c = tiny_run(seed)
        h = c.trace.to_history()
        result = SUC.check(h, SPEC)
        assert result
        searched = SUCWitness(
            order=tuple(result.witness["order"]),
            visibility=dict(result.witness["visibility"]),
        )
        res = verify_suc_witness(h, SPEC, searched)
        assert res, res.reason

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_corrupted_query_output_rejected_by_both(self, seed):
        from dataclasses import replace

        from repro.core.adt import Query
        from repro.core.history import Event, History
        from repro.util import ordering

        c = tiny_run(seed)
        h = c.trace.to_history()
        queries = [e for e in h.events if e.is_query]
        updates = [e for e in h.events if e.is_update]
        if not queries or not updates:
            return
        # Corrupt one read to an impossible value (outside the support).
        victim = queries[0]
        bad_label = Query("read", (), frozenset({"impossible"}))
        events = [
            Event(e.eid, bad_label if e is victim else e.label, e.pid, e.omega)
            for e in h.events
        ]
        mapping = dict(zip(h.events, events))
        po = ordering.empty_relation(events)
        for a, succs in h.program_order.items():
            for b in succs:
                ordering.add_edge(po, mapping[a], mapping[b])
        bad_history = History(events, po)
        assert not SUC.check(bad_history, SPEC)
