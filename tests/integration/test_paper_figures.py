"""Integration: the Fig. 1 / Fig. 2 classification matrix must match the
paper's caption exactly — the repo's primary ground truth."""

from __future__ import annotations

import pytest

from repro.core.criteria import classify
from repro.paper import (
    FIG1_BUILDERS,
    FIG1_EXPECTED,
    FIG2_EXPECTED,
    fig_2,
)
from repro.specs import SetSpec

SPEC = SetSpec()


@pytest.mark.parametrize("name", list(FIG1_BUILDERS))
def test_fig1_matches_caption(name):
    results = classify(FIG1_BUILDERS[name](), SPEC)
    for criterion, expected in FIG1_EXPECTED[name].items():
        assert bool(results[criterion]) == expected, (
            f"Fig. {name}: {criterion} expected {expected}, "
            f"got {results[criterion]}"
        )


def test_fig2_matches_caption():
    results = classify(fig_2(), SPEC, criteria=("PC", "EC"))
    for criterion, expected in FIG2_EXPECTED.items():
        assert bool(results[criterion]) == expected


def test_fig2_w1_w2_are_valid_witnesses():
    """The paper exhibits w1 and w2 explicitly; both must be recognized
    and cover all updates plus the respective chain."""
    from repro.specs import set_spec as S

    w1 = [
        S.insert(1), S.insert(3), S.read({1, 3}), S.insert(2),
        S.read({1, 2, 3}), S.delete(3),
    ]
    # ... followed by R/{1,2}^ω: final state must be {1,2}.
    assert SPEC.recognizes(w1)
    assert SPEC.replay(w1) == frozenset({1, 2})

    w2 = [
        S.insert(2), S.delete(3), S.read({2}), S.insert(1),
        S.read({1, 2}), S.insert(3),
    ]
    assert SPEC.recognizes(w2)
    assert SPEC.replay(w2) == frozenset({1, 2, 3})
