"""Integration: every Section VII-C optimization is observationally
equivalent to plain Algorithm 1 — same queries, same answers, same final
states, under identical adversarial schedules.

(The per-pair equivalences also live next to each optimization's unit
tests; this is the all-at-once cross-check including the convergence
certificate.)
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import update_consistent_convergence
from repro.core.checkpoint import CheckpointedReplica, GarbageCollectedReplica
from repro.core.commutative import CommutativeReplica
from repro.core.undo import UndoReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import (
    collab_edit_workload,
    conflict_heavy_set_workload,
    counter_workload,
    run_workload,
)
from repro.specs import CounterSpec, LogSpec, SetSpec


def run(replica_factory, wl, seed, n=3, fifo=False):
    c = Cluster(n, replica_factory, latency=ExponentialLatency(4.0),
                seed=seed, fifo=fifo)
    outputs = run_workload(c, wl)
    finals = [c.query(pid, "read") for pid in range(n)]
    return outputs, finals, c


class TestSetStrategies:
    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_universal_vs_checkpoint_vs_gc(self, seed):
        spec = SetSpec()
        wl = conflict_heavy_set_workload(3, 30, seed=seed)
        base = run(lambda p, n: UniversalReplica(p, n, spec), wl, seed)
        ck = run(
            lambda p, n: CheckpointedReplica(p, n, spec, checkpoint_interval=3),
            wl, seed,
        )
        assert base[0] == ck[0]
        assert base[1] == ck[1]
        # FIFO changes delivery times, hence Lamport stamps, hence the
        # agreed linearization — so the GC variant is compared against the
        # plain construction on the *same* FIFO schedule.
        base_fifo = run(lambda p, n: UniversalReplica(p, n, spec), wl, seed, fifo=True)
        gc = run(
            lambda p, n: GarbageCollectedReplica(
                p, n, spec, gc_interval=5, track_witness=True
            ),
            wl, seed, fifo=True,
        )
        assert base_fifo[0] == gc[0]
        assert base_fifo[1] == gc[1]
        ok, _, _ = update_consistent_convergence(gc[2], spec)
        assert ok


class TestInvertibleStrategies:
    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_counter_all_four_agree(self, seed):
        spec = CounterSpec()
        wl = counter_workload(3, 30, seed=seed)
        base = run(lambda p, n: UniversalReplica(p, n, spec), wl, seed)
        ck = run(lambda p, n: CheckpointedReplica(p, n, spec), wl, seed)
        un = run(lambda p, n: UndoReplica(p, n, spec), wl, seed)
        fast = run(lambda p, n: CommutativeReplica(p, n, spec), wl, seed)
        assert base[0] == ck[0] == un[0] == fast[0]
        assert base[1] == ck[1] == un[1] == fast[1]

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_log_undo_agrees(self, seed):
        spec = LogSpec()
        wl = collab_edit_workload(3, 25, seed=seed)
        base = run(lambda p, n: UniversalReplica(p, n, spec), wl, seed)
        un = run(lambda p, n: UndoReplica(p, n, spec), wl, seed)
        assert base[1] == un[1]
        # The converged document interleaves the authors' edit streams in
        # each author's own order (intention preservation).
        doc = base[1][0]
        for author in range(3):
            own = [e for e in doc if e.startswith(f"a{author}.")]
            assert own == sorted(own, key=lambda s: int(s.split(".")[1]))
