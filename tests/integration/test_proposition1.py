"""Integration: Proposition 1 — pipelined convergence is not wait-free.

Testing cannot prove a universally quantified impossibility, but it can
reproduce the paper's own proof gadget and verify that each implementation
exhibits exactly the predicted dichotomy:

* the FIFO (pipelined consistent) baseline returns {1,3} / {2} at the
  isolated first reads — and then *never converges*;
* Algorithm 1 (eventually/update consistent) also returns {1,3} / {2}
  while isolated (wait-freedom forces it: it cannot distinguish a slow
  network from a crashed peer) — and converges after healing, at the
  price of violating pipelined consistency on the full history.
"""

from __future__ import annotations

from repro.core.criteria import EC, PC
from repro.core.universal import UniversalReplica
from repro.objects.pipelined import FifoApplyReplica
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def run_gadget(replica_cls, fifo=False):
    """The Fig. 2 program with total message isolation until both first
    reads, then a healed network."""
    c = Cluster(2, lambda pid, n: replica_cls(pid, n, SPEC), fifo=fifo)
    c.network.hold(0, 1)
    c.network.hold(1, 0)
    c.update(0, S.insert(1))
    c.update(0, S.insert(3))
    c.update(1, S.insert(2))
    c.update(1, S.delete(3))
    first_reads = (c.query(0, "read"), c.query(1, "read"))
    c.network.release(0, 1, c.now)
    c.network.release(1, 0, c.now)
    c.run()
    final_reads = (c.query(0, "read"), c.query(1, "read"))
    return c, first_reads, final_reads


class TestWaitFreedomForcesLocalAnswers:
    def test_fifo_baseline_first_reads(self):
        _, first, _ = run_gadget(FifoApplyReplica, fifo=True)
        assert first == (frozenset({1, 3}), frozenset({2}))

    def test_algorithm1_first_reads(self):
        _, first, _ = run_gadget(UniversalReplica)
        assert first == (frozenset({1, 3}), frozenset({2}))


class TestTheDichotomy:
    def test_pc_implementation_never_converges(self):
        c, _, final = run_gadget(FifoApplyReplica, fifo=True)
        # p0 applied D(3) after I(3): {1,2}. p1 applied I(3) after D(3):
        # {1,2,3}.  Quiescent and different: divergence is permanent.
        assert c.quiescent()
        assert final[0] == frozenset({1, 2})
        assert final[1] == frozenset({1, 2, 3})

    def test_pc_implementation_history_is_pc_not_ec(self):
        c, _, _ = run_gadget(FifoApplyReplica, fifo=True)
        # Mark the final reads ω by re-reading forever (encode via history
        # surgery: rebuild with the last query of each process flagged).
        h = flag_final_reads_omega(c)
        assert PC.check(h, SPEC)
        assert not EC.check(h, SPEC)

    def test_uc_implementation_converges_but_violates_pc(self):
        c, _, final = run_gadget(UniversalReplica)
        assert final[0] == final[1] == frozenset({1, 2})
        h = flag_final_reads_omega(c)
        assert EC.check(h, SPEC)
        assert not PC.check(h, SPEC)


def flag_final_reads_omega(cluster):
    """Rebuild the trace history with each process's last read flagged ω
    (the processes 'read forever' from the converged/diverged state)."""
    from repro.core.history import Event, History
    from repro.util import ordering

    records = cluster.trace.records
    last_query_eid = {}
    for r in records:
        if not r.is_update:
            last_query_eid[r.pid] = r.eid
    events = [
        Event(
            eid=r.eid,
            label=r.label,
            pid=r.pid,
            omega=(r.eid == last_query_eid.get(r.pid)),
        )
        for r in records
    ]
    by_pid = {}
    for ev in events:
        by_pid.setdefault(ev.pid, []).append(ev)
    po = ordering.empty_relation(events)
    for chain in by_pid.values():
        for a, b in zip(chain, chain[1:]):
            ordering.add_edge(po, a, b)
    return History(events, po)
