"""Tracers and the Chrome-trace-event (Perfetto) export."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import (
    CLUSTER_TRACK,
    NULL_TRACER,
    NullTracer,
    SimTracer,
    TraceRecord,
    chrome_trace_json,
    to_chrome_trace,
    write_chrome_trace,
)


class TestNullTracer:
    def test_is_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event("message.send", 1.0, pid=0, attrs={"dst": 1})
        NULL_TRACER.span("op.query", 1.0, 2.0, pid=0)
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.counts() == {}

    def test_has_no_instance_dict(self):
        # The hot-path guard relies on the no-op tracer staying this cheap.
        with pytest.raises(AttributeError):
            NullTracer().stash = 1


class TestSimTracer:
    def test_records_events_and_spans(self):
        t = SimTracer()
        assert t.enabled is True
        t.event("replica.crash", 3.0, pid=2, attrs={"drop_outgoing": True})
        t.span("message.deliver", 1.0, 4.0, pid=0, attrs={"src": 1})
        assert len(t) == 2
        crash, deliver = t.records()
        assert not crash.is_span and crash.end is None
        assert crash.category == "replica"
        assert deliver.is_span and deliver.end == 4.0
        assert deliver.attrs == {"src": 1}

    def test_span_must_not_end_before_start(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            SimTracer().span("x", 5.0, 4.0)

    def test_zero_length_span_allowed(self):
        t = SimTracer()
        t.span("anti_entropy.round", 2.0, 2.0)
        assert t.records()[0].is_span

    def test_counts_and_filtered_iteration(self):
        t = SimTracer()
        t.event("message.send", 1.0, pid=0)
        t.event("message.send", 2.0, pid=1)
        t.event("op.update", 2.0, pid=0)
        assert t.counts() == {"message.send": 2, "op.update": 1}
        assert [r.start for r in t.iter_records("message.send")] == [1.0, 2.0]

    def test_default_pid_is_cluster_track(self):
        t = SimTracer()
        t.event("channel.partition", 0.0)
        assert t.records()[0].pid == CLUSTER_TRACK


class TestChromeExport:
    def make(self) -> SimTracer:
        t = SimTracer()
        t.event("op.update", 2.0, pid=1, attrs={"update": "ins(3)"})
        t.span("message.deliver", 1.0, 3.0, pid=0, attrs={"src": 1, "seq": 0})
        t.event("replica.crash", 0.5, pid=1)
        return t

    def test_structure(self):
        doc = to_chrome_trace(self.make())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        # One process_name record per track, sorted by pid.
        assert [m["pid"] for m in meta] == [0, 1]
        assert all(m["name"] == "process_name" for m in meta)
        body = [e for e in events if e["ph"] != "M"]
        # Non-metadata events are ordered by virtual start time.
        assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)
        instants = [e for e in body if e["ph"] == "i"]
        spans = [e for e in body if e["ph"] == "X"]
        assert len(instants) == 2 and all(e["s"] == "p" for e in instants)
        (span,) = spans
        assert span["ts"] == pytest.approx(1.0 * 1e6)
        assert span["dur"] == pytest.approx(2.0 * 1e6)
        assert span["args"] == {"src": 1, "seq": 0}
        assert span["cat"] == "message"
        assert doc["otherData"]["clock"] == "virtual"

    def test_cluster_track_labeled(self):
        t = SimTracer()
        t.event("channel.heal", 1.0)
        doc = to_chrome_trace(t)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["pid"] == CLUSTER_TRACK
        assert meta[0]["args"]["name"] == "cluster"

    def test_time_scale(self):
        doc = to_chrome_trace(self.make(), time_scale=10.0)
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert body[0]["ts"] == pytest.approx(5.0)

    def test_json_helpers_round_trip(self, tmp_path):
        t = self.make()
        doc = json.loads(chrome_trace_json(t))
        assert doc == json.loads(json.dumps(to_chrome_trace(t)))
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), t)
        assert json.loads(path.read_text())["traceEvents"]
        with open(tmp_path / "fh.json", "w") as fh:
            write_chrome_trace(fh, t)
        assert json.loads((tmp_path / "fh.json").read_text()) == doc

    def test_null_tracer_exports_empty(self):
        assert to_chrome_trace(NULL_TRACER)["traceEvents"] == []


class TestTraceRecord:
    def test_frozen(self):
        record = TraceRecord("op.query", 1.0, None, 0)
        with pytest.raises(AttributeError):
            record.start = 2.0
