"""Wall-clock tracing: WallTracer, the merged export, structured logging."""

from __future__ import annotations

import io
import json
import logging

from repro.obs import log as obs_log
from repro.obs.wall import (
    TraceContext,
    WallTracer,
    merge_chrome_traces,
    trace_ids,
    wall_chrome_trace,
)


class TestWallTracer:
    def test_is_an_enabled_tracer_with_epoch_origin(self, monkeypatch):
        monkeypatch.setattr("repro.obs.wall.wall_now", lambda: 1000.0)
        t = WallTracer()
        assert t.enabled is True
        assert t.epoch0 == 1000.0
        assert t.now() == 1000.0
        assert t.clock_domain == "wall"

    def test_export_rebases_to_epoch_origin(self, monkeypatch):
        monkeypatch.setattr("repro.obs.wall.wall_now", lambda: 1000.0)
        t = WallTracer()
        t.span("update.local_apply", 1000.5, 1000.75, pid=0,
               attrs={"trace": "t0-1"})
        doc = wall_chrome_trace(t, trace_name="node 0")
        assert doc["otherData"]["epoch_origin"] == 1000.0
        assert doc["otherData"]["clock"] == "wall"
        (span,) = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        # Timestamps start near zero, not at 1970-sized microsecond counts.
        assert span["ts"] == 0.5e6
        assert span["dur"] == 0.25e6


class TestMergeChromeTraces:
    def _doc(self, epoch0, records):
        tracer = WallTracer()
        tracer.epoch0 = epoch0
        for name, start, end, pid, attrs in records:
            tracer.span(name, start, end, pid=pid, attrs=attrs)
        return wall_chrome_trace(tracer, trace_name=f"node@{epoch0}")

    def test_realigns_documents_born_at_different_instants(self):
        # Node 1's tracer was born 2 seconds after node 0's; the same
        # wall instant must land at the same merged timestamp.
        d0 = self._doc(100.0, [("a", 103.0, 104.0, 0, {"trace": "t"})])
        d1 = self._doc(102.0, [("b", 103.0, 104.0, 1, {"trace": "t"})])
        merged = merge_chrome_traces([d0, d1])
        spans = [e for e in merged["traceEvents"] if e["ph"] != "M"]
        assert {e["name"] for e in spans} == {"a", "b"}
        assert spans[0]["ts"] == spans[1]["ts"] == 3e6
        assert merged["otherData"]["epoch_origin"] == 100.0
        assert merged["otherData"]["merged_documents"] == 2

    def test_dedupes_process_metadata_by_pid(self):
        # Pre- and post-restart tracers of one node describe one track.
        d0 = self._doc(100.0, [("a", 100.0, 101.0, 2, None)])
        d1 = self._doc(105.0, [("b", 105.0, 106.0, 2, None)])
        merged = merge_chrome_traces([d0, d1])
        metas = [e for e in merged["traceEvents"] if e["ph"] == "M"]
        assert len([m for m in metas if m["pid"] == 2]) == 1

    def test_events_sorted_across_documents(self):
        d0 = self._doc(100.0, [("late", 109.0, 110.0, 0, None)])
        d1 = self._doc(100.0, [("early", 101.0, 102.0, 1, None)])
        merged = merge_chrome_traces([d0, d1])
        body = [e for e in merged["traceEvents"] if e["ph"] != "M"]
        assert [e["name"] for e in body] == ["early", "late"]

    def test_empty_merge(self):
        merged = merge_chrome_traces([])
        assert merged["traceEvents"] == []
        assert merged["otherData"]["merged_documents"] == 0


class TestTraceIds:
    def test_groups_by_trace_attr_and_skips_untraced(self):
        doc = {
            "traceEvents": [
                {"ph": "M", "pid": 0, "name": "process_name"},
                {"ph": "X", "pid": 0, "name": "a", "ts": 1,
                 "args": {"trace": "t1"}},
                {"ph": "i", "pid": 1, "name": "b", "ts": 2,
                 "args": {"trace": "t1"}},
                {"ph": "X", "pid": 1, "name": "c", "ts": 3,
                 "args": {"trace": "t2"}},
                {"ph": "i", "pid": 1, "name": "ping", "ts": 4, "args": {}},
            ]
        }
        groups = trace_ids(doc)
        assert set(groups) == {"t1", "t2"}
        assert [e["name"] for e in groups["t1"]] == ["a", "b"]


class TestTraceContext:
    def test_wire_encoding(self):
        ctx = TraceContext("t3-a", 1754700000.5)
        assert ctx.as_wire() == ["t3-a", 1754700000.5]
        assert ctx.trace_id == "t3-a" and ctx.t0 == 1754700000.5


class TestStructLogger:
    def _capture(self, name):
        logger = logging.getLogger(name)
        logger.setLevel(logging.DEBUG)
        buf = io.StringIO()
        handler = logging.StreamHandler(buf)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        return buf, handler

    def test_events_are_json_with_bound_fields(self, monkeypatch):
        monkeypatch.setattr("repro.obs.log.wall_now", lambda: 1000.125)
        buf, handler = self._capture("repro.test.wall")
        try:
            log = obs_log.get_logger("repro.test.wall").bind(pid=2)
            log.info("update_applied", trace="t0-1", lag_s=0.004)
            doc = json.loads(buf.getvalue())
            assert doc == {
                "ts": 1000.125, "level": "info", "logger": "repro.test.wall",
                "event": "update_applied", "pid": 2, "trace": "t0-1",
                "lag_s": 0.004,
            }
        finally:
            logging.getLogger("repro.test.wall").removeHandler(handler)

    def test_bind_returns_new_logger(self):
        base = obs_log.get_logger("repro.test.bind")
        bound = base.bind(pid=1)
        assert bound is not base
        assert bound.bind(peer=2)._fields == {"pid": 1, "peer": 2}
        assert base._fields == {}

    def test_non_json_fields_fall_back_to_repr(self, monkeypatch):
        monkeypatch.setattr("repro.obs.log.wall_now", lambda: 1.0)
        buf, handler = self._capture("repro.test.repr")
        try:
            obs_log.get_logger("repro.test.repr").error(
                "task_crashed", error=RuntimeError("boom")
            )
            doc = json.loads(buf.getvalue())
            assert doc["error"] == "RuntimeError('boom')"
        finally:
            logging.getLogger("repro.test.repr").removeHandler(handler)

    def test_configure_is_idempotent_per_stream(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            first = obs_log.configure(stream=io.StringIO())
            second = obs_log.configure(stream=io.StringIO())
            installed = [
                h for h in root.handlers if h.get_name() == "repro-obs-json"
            ]
            assert installed == [second] and first not in root.handlers
        finally:
            for h in list(root.handlers):
                if h not in before:
                    root.removeHandler(h)

    def test_disabled_level_emits_nothing(self):
        buf, handler = self._capture("repro.test.level")
        logging.getLogger("repro.test.level").setLevel(logging.WARNING)
        try:
            obs_log.get_logger("repro.test.level").debug("noise")
            assert buf.getvalue() == ""
        finally:
            logging.getLogger("repro.test.level").removeHandler(handler)
