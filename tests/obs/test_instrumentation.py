"""Runtime instrumentation: shared registry, deprecated aliases, trace
coverage of the message lifecycle and fault events."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointedReplica, GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SimTracer
from repro.sim.cluster import Cluster
from repro.sim.network import DuplicatingNetwork, LossyNetwork
from repro.specs import SetSpec
from repro.specs import set_spec as S


def make_cluster(n=3, *, tracer=None, network_cls=None, network_kwargs=None,
                 factory=None, seed=0):
    spec = SetSpec()
    factory = factory or (lambda p, size: UniversalReplica(p, size, spec, relay=True))
    kwargs = {}
    if network_cls is not None:
        kwargs["network_cls"] = network_cls
        kwargs["network_kwargs"] = network_kwargs or {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return Cluster(n, factory, seed=seed, **kwargs)


class TestSharedRegistry:
    def test_network_and_replicas_rehomed_onto_cluster_registry(self):
        c = make_cluster()
        assert c.network.metrics is c.metrics
        for replica in c.replicas:
            assert replica.metrics is c.metrics

    def test_explicit_registry_is_used(self):
        reg = MetricsRegistry()
        spec = SetSpec()
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, spec),
                    registry=reg)
        assert c.metrics is reg
        c.update(0, S.insert(1))
        assert reg.value("repro_cluster_updates_total", pid=0) == 1

    def test_standalone_replica_still_counts(self):
        # Replicas own a private registry until a cluster re-homes them.
        spec = SetSpec()
        replica = UniversalReplica(0, 1, spec)
        replica.on_update(S.insert(1))
        replica.on_query("read", ())
        assert replica.replayed_updates == 1
        assert replica.metrics.total("repro_replica_replayed_updates_total") == 1


class TestDeprecatedAliases:
    def test_network_counts_mirror_registry(self):
        c = make_cluster()
        c.update(0, S.insert(1))
        c.run()
        reg = c.metrics
        assert c.network.sent_count == reg.value("repro_network_messages_sent_total")
        assert c.network.delivered_count == reg.value(
            "repro_network_messages_delivered_total")
        assert c.network.sent_count > 0

    def test_lossy_and_duplicating_counts(self):
        lossy = make_cluster(network_cls=LossyNetwork,
                             network_kwargs={"drop_probability": 0.5}, seed=7)
        for i in range(10):
            lossy.update(i % 3, S.insert(i))
        lossy.run()
        assert lossy.network.lost_count == lossy.metrics.value(
            "repro_network_messages_lost_total")
        assert lossy.network.lost_count > 0

        dup = make_cluster(network_cls=DuplicatingNetwork,
                           network_kwargs={"duplicate_probability": 0.5}, seed=7)
        for i in range(10):
            dup.update(i % 3, S.insert(i))
        dup.run()
        assert dup.network.duplicated_count == dup.metrics.value(
            "repro_network_messages_duplicated_total")
        assert dup.network.duplicated_count > 0

    def test_cluster_fault_counts(self):
        c = make_cluster()
        c.update(0, S.insert(1))
        c.crash(2)
        c.run()
        assert c.dropped_to_crashed == c.metrics.value(
            "repro_cluster_dropped_to_crashed_total")
        assert c.dropped_to_crashed > 0
        c.recover(2)
        c.run()
        assert c.recovered_count == 1
        assert c.metrics.value("repro_cluster_recoveries_total") == 1
        assert c.metrics.value("repro_cluster_crashes_total") == 1

    def test_replayed_updates_alias(self):
        c = make_cluster(2, factory=lambda p, n: UniversalReplica(p, n, SetSpec()))
        c.update(0, S.insert(1))
        c.update(0, S.insert(2))
        c.query(0, "read")
        replica = c.replicas[0]
        assert replica.replayed_updates == 2
        assert c.metrics.value(
            "repro_replica_replayed_updates_total", pid=0) == 2

    def test_checkpoint_rollback_alias(self):
        spec = SetSpec()
        ck = Cluster(2, lambda p, n: CheckpointedReplica(p, n, spec))
        ck.network.hold(1, 0)
        ck.update(1, S.insert(1))     # stamp (1,1), parked on the held channel
        ck.update(0, S.insert(5))     # (1,0)
        ck.update(0, S.insert(6))     # (2,0)
        ck.query(0, "read")           # replica 0 replays through (2,0)
        ck.network.heal(ck.now)
        ck.run()                      # (1,1) lands inside the applied prefix
        ck.query(0, "read")
        r0 = ck.replicas[0]
        assert r0.rollbacks == ck.metrics.value(
            "repro_replica_rollbacks_total", pid=0)
        assert r0.rollbacks > 0

    def test_gc_collected_alias(self):
        spec = SetSpec()
        gc = Cluster(2, lambda p, n: GarbageCollectedReplica(p, n, spec),
                     fifo=True)
        for i in range(6):
            gc.update(i % 2, S.insert(i))
        gc.run()
        total = sum(r.collect_garbage() for r in gc.replicas)
        assert total > 0
        assert gc.metrics.total("repro_replica_collected_entries_total") == total
        assert sum(r.collected for r in gc.replicas) == total


class TestTraceCoverage:
    def test_untraced_run_records_nothing(self):
        c = make_cluster()
        c.update(0, S.insert(1))
        c.run()
        assert c.tracer.enabled is False
        assert c.tracer.records() == []

    def test_message_lifecycle_counts_match_network(self):
        tracer = SimTracer()
        c = make_cluster(tracer=tracer, network_cls=LossyNetwork,
                         network_kwargs={"drop_probability": 0.3}, seed=3)
        for i in range(12):
            c.update(i % 3, S.insert(i))
        c.run()
        counts = tracer.counts()
        assert counts["message.send"] == c.network.sent_count
        assert counts.get("message.lost", 0) == c.network.lost_count
        assert counts["message.deliver"] == c.network.delivered_count
        assert counts["op.update"] == 12

    def test_fault_events_recorded(self):
        tracer = SimTracer()
        c = make_cluster(tracer=tracer)
        c.update(0, S.insert(1))
        c.crash(1, drop_outgoing=True)
        c.run()
        c.recover(1)
        c.run()
        c.anti_entropy(rounds=2)
        counts = tracer.counts()
        assert counts["replica.crash"] == 1
        assert counts["replica.recover"] == 1
        assert counts.get("sync.request", 0) >= 1
        assert counts.get("anti_entropy.round", 0) >= 1
        crash = next(tracer.iter_records("replica.crash"))
        assert crash.pid == 1 and crash.attrs["drop_outgoing"] is True

    def test_channel_events_recorded(self):
        tracer = SimTracer()
        c = make_cluster(tracer=tracer)
        c.hold(0, 1)
        c.release(0, 1)
        c.partition([[0], [1, 2]])
        c.heal()
        counts = tracer.counts()
        assert counts["channel.hold"] == 1
        assert counts["channel.release"] == 1
        assert counts["channel.partition"] == 1
        assert counts["channel.heal"] == 1
        part = next(tracer.iter_records("channel.partition"))
        assert part.attrs["groups"] == [[0], [1, 2]]

    def test_query_event_carries_replay_cost(self):
        tracer = SimTracer()
        c = make_cluster(2, tracer=tracer,
                         factory=lambda p, n: UniversalReplica(p, n, SetSpec()))
        c.update(0, S.insert(1))
        c.update(0, S.insert(2))
        c.query(0, "read")
        query = next(tracer.iter_records("op.query"))
        assert query.attrs["replayed"] == 2
        assert query.attrs["query"] == "read"

    def test_deliver_spans_run_from_send_to_delivery(self):
        tracer = SimTracer()
        c = make_cluster(tracer=tracer)
        c.update(0, S.insert(1))
        c.run()
        for span in tracer.iter_records("message.deliver"):
            assert span.is_span
            assert span.end >= span.start

    def test_recovered_replica_keeps_counting_into_shared_registry(self):
        c = make_cluster()
        c.update(0, S.insert(1))
        c.run()
        c.query(1, "read")
        before = c.metrics.value("repro_replica_replayed_updates_total", pid=1)
        assert before > 0
        c.crash(1)
        c.recover(1)
        c.run()
        c.anti_entropy(rounds=2)
        c.query(1, "read")
        after = c.metrics.value("repro_replica_replayed_updates_total", pid=1)
        assert after > before
        assert c.replicas[1].metrics is c.metrics


class TestPerformanceGuards:
    def test_default_tracer_is_shared_noop(self):
        from repro.obs.tracer import NULL_TRACER
        a = make_cluster()
        b = make_cluster()
        assert a.tracer is NULL_TRACER
        assert b.network.tracer is NULL_TRACER

    def test_virtual_time_gauge_tracks_now(self):
        c = make_cluster()
        c.update(0, S.insert(1))
        c.run()
        assert c.metrics.value("repro_cluster_virtual_time") == c.now
        c.advance(5.0)
        assert c.metrics.value("repro_cluster_virtual_time") == c.now
