"""The --profile hooks: pstats dump + collapsed-stack export."""

from __future__ import annotations

import cProfile
import pstats

from repro.obs.profiling import collapsed_stacks, profiled, write_profile


def _busy(n: int) -> int:
    total = 0
    for i in range(n):
        total += _inner(i)
    return total


def _inner(i: int) -> int:
    return sum(range(i % 50))


def _profile_of(fn) -> cProfile.Profile:
    profile = cProfile.Profile()
    profile.enable()
    fn()
    profile.disable()
    return profile


class TestCollapsedStacks:
    def test_edges_are_caller_semicolon_callee_weight(self):
        stats = pstats.Stats(_profile_of(lambda: _busy(2000)))
        text = collapsed_stacks(stats)
        edge_lines = [ln for ln in text.splitlines() if ";" in ln]
        assert any("_busy" in ln and "_inner" in ln for ln in edge_lines)
        for line in text.splitlines():
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0  # zero-cost edges are dropped
            assert frames.count(";") <= 1  # two-level approximation

    def test_output_is_sorted_for_diffing(self):
        stats = pstats.Stats(_profile_of(lambda: _busy(500)))
        lines = collapsed_stacks(stats).splitlines()
        assert lines == sorted(lines)

    def test_empty_profile_renders_empty(self):
        profile = cProfile.Profile()
        profile.enable()
        profile.disable()
        text = collapsed_stacks(pstats.Stats(profile))
        # Either nothing ran or only profiler teardown did; no crash.
        assert isinstance(text, str)


class TestWriteProfile:
    def test_writes_both_artifacts(self, tmp_path):
        prefix = str(tmp_path / "bench")
        paths = write_profile(_profile_of(lambda: _busy(500)), prefix)
        assert paths == (f"{prefix}.pstats", f"{prefix}.collapsed")
        # The pstats dump loads back; the collapsed file is line-oriented.
        loaded = pstats.Stats(paths[0])
        assert loaded.total_calls > 0
        content = (tmp_path / "bench.collapsed").read_text()
        assert all(" " in ln for ln in content.splitlines())


class TestProfiledContextManager:
    def test_none_prefix_is_a_no_op(self):
        with profiled(None) as profile:
            assert profile is None

    def test_prefix_writes_artifacts_on_exit(self, tmp_path, capsys):
        prefix = str(tmp_path / "run")
        with profiled(prefix) as profile:
            assert profile is not None
            _busy(200)
        assert (tmp_path / "run.pstats").exists()
        assert (tmp_path / "run.collapsed").exists()
        assert "flamegraph-compatible" in capsys.readouterr().out
