"""The metrics registry: instruments, labeled series, exposition formats."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_counts_up(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", help="ops")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("ops_total") == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("per_pid_total", label_names=("pid",))
        c.labels(pid=0).inc(2)
        c.labels(pid=1).inc(3)
        assert reg.value("per_pid_total", pid=0) == 2
        assert reg.value("per_pid_total", pid=1) == 3
        assert c.total() == 5

    def test_labels_must_match_declaration(self):
        c = MetricsRegistry().counter("l_total", label_names=("pid",))
        with pytest.raises(ValueError, match="requires labels"):
            c.labels(wrong=1)
        with pytest.raises(ValueError, match="requires labels"):
            c.labels(pid=1, extra=2)

    def test_unlabeled_metric_rejects_default_when_labeled(self):
        c = MetricsRegistry().counter("l_total", label_names=("pid",))
        with pytest.raises(ValueError, match="use .labels"):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        series = h.labels()
        assert series.count == 4
        assert series.sum == pytest.approx(106.2)
        assert series.cumulative_buckets() == [(1.0, 2), (10.0, 3), (float("inf"), 4)]

    def test_bucket_edge_is_inclusive(self):
        # Prometheus semantics: le is an upper *inclusive* bound.
        h = MetricsRegistry().histogram("edge", buckets=(5.0,))
        h.observe(5.0)
        assert h.labels().cumulative_buckets()[0] == (5.0, 1)

    def test_buckets_must_ascend(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("dup", buckets=(1.0, 1.0))


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("same_total", label_names=("pid",))
        b = reg.counter("same_total", label_names=("pid",))
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total", label_names=("pid",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("thing_total", label_names=("node",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("9starts-with-digit")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok_total", label_names=("bad-label",))

    def test_value_defaults_for_missing_series(self):
        reg = MetricsRegistry()
        assert reg.value("nope", default=42) == 42
        c = reg.counter("l_total", label_names=("pid",))
        c.labels(pid=0).inc()
        assert reg.value("l_total", default=-1, pid=9) == -1

    def test_flat_includes_labels_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", label_names=("pid",)).labels(pid=3).inc(7)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        flat = reg.flat()
        assert flat['ops_total{pid="3"}'] == 7
        assert flat["lat_count"] == 1
        assert flat["lat_sum"] == 0.5


class TestExposition:
    def make(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("msgs_total", help="messages", label_names=("pid",))
        c.labels(pid=1).inc(3)
        c.labels(pid=0).inc(2)
        reg.gauge("t", help="virtual time").set(4.5)
        reg.histogram("replay", buckets=(10.0,)).observe(3)
        return reg

    def test_prometheus_text(self):
        text = self.make().to_prometheus_text()
        assert "# HELP msgs_total messages" in text
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{pid="0"} 2' in text
        assert 'msgs_total{pid="1"} 3' in text
        assert "t 4.5" in text
        assert 'replay_bucket{le="10"} 1' in text
        assert 'replay_bucket{le="+Inf"} 1' in text
        assert "replay_count 1" in text

    def test_series_output_sorted_by_label_values(self):
        text = self.make().to_prometheus_text()
        assert text.index('pid="0"') < text.index('pid="1"')

    def test_json_round_trips(self):
        doc = json.loads(self.make().to_json_text())
        assert doc["format"] == "repro-metrics-v1"
        series = doc["metrics"]["msgs_total"]["series"]
        assert {"labels": {"pid": "0"}, "value": 2} in series
        hist = doc["metrics"]["replay"]["series"][0]
        assert hist["count"] == 1 and hist["buckets"][-1][0] == "+Inf"

    def test_exposition_is_deterministic(self):
        assert self.make().to_prometheus_text() == self.make().to_prometheus_text()
        assert self.make().to_json_text() == self.make().to_json_text()

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
