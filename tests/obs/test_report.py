"""Run reports: cross-checked against the cluster and trace they came
from, schema-validated, and deterministic per seed."""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis.convergence import converged
from repro.analysis.metrics import collect_message_stats
from repro.analysis.staleness import staleness_report
from repro.obs.report import (
    NET_REPORT_FORMAT,
    REPORT_FORMAT,
    report_json,
    run_report,
    validate_net_report,
    validate_report,
    write_report,
)
from repro.obs.scenario import chaos_scenario
from repro.obs.tracer import to_chrome_trace


@pytest.fixture(scope="module")
def chaos():
    """One finished chaos run, its report, and a snapshot of the directly
    computed values — captured immediately, because merely *reading* a
    replica's state (``local_state`` → replay) moves the replay counters."""
    cluster = chaos_scenario(seed=0)
    doc = run_report(cluster)
    snapshot = {
        "replayed": [r.replayed_updates for r in cluster.replicas],
        "log_lengths": [r.log_length for r in cluster.replicas],
        "metrics_json": cluster.metrics.to_json(),
    }
    return cluster, doc, snapshot


class TestReportCrossCheck:
    """The acceptance criterion: every reported number must match the
    value computed directly from the cluster/trace/registry."""

    def test_converges_and_validates(self, chaos):
        cluster, doc, snap = chaos
        assert doc["format"] == REPORT_FORMAT
        assert doc["convergence"]["converged"] is True
        assert converged(cluster)
        assert validate_report(doc) == []

    def test_cluster_section(self, chaos):
        cluster, doc, snap = chaos
        assert doc["cluster"]["processes"] == cluster.n
        assert doc["cluster"]["virtual_time"] == cluster.now
        assert doc["cluster"]["alive"] == cluster.alive()
        assert doc["cluster"]["crashed"] == sorted(cluster.crashed)
        assert doc["cluster"]["recoveries"] == cluster.recovered_count == 1

    def test_message_counts_match_network(self, chaos):
        cluster, doc, snap = chaos
        msgs = doc["messages"]
        assert msgs["sent"] == cluster.network.sent_count
        assert msgs["delivered"] == cluster.network.delivered_count
        assert msgs["lost"] == cluster.network.lost_count
        assert msgs["dropped_to_crashed"] == cluster.dropped_to_crashed
        assert msgs["pending"] == 0
        stats = collect_message_stats(cluster)
        assert msgs["sends_per_update"] == stats.sends_per_update
        assert msgs["max_timestamp_bits"] == stats.max_timestamp_bits

    def test_replay_totals_match_registry_and_trace(self, chaos):
        cluster, doc, snap = chaos
        replay = doc["replay"]
        assert replay["updates"] == len(cluster.trace.updates())
        assert replay["queries"] == len(cluster.trace.queries())
        direct = sum(snap["replayed"])
        assert replay["total_replayed"] == direct
        assert replay["replayed_per_query"] == direct / replay["queries"]
        # Each op.query event carries its replay delta; the deltas are
        # non-overlapping slices of the counter, so they sum to at most the
        # registry total (replays outside a query, e.g. during restore,
        # count toward the total but belong to no query event).
        traced = sum(
            r.attrs["replayed"]
            for r in cluster.tracer.iter_records("op.query")
        )
        assert 0 < traced <= direct

    def test_staleness_matches_direct_computation(self, chaos):
        cluster, doc, snap = chaos
        direct = staleness_report(cluster.trace)
        assert doc["staleness"]["queries"] == direct.queries
        assert doc["staleness"]["stale_queries"] == direct.stale_queries
        assert doc["staleness"]["max_version_lag"] == direct.max_version_lag

    def test_trace_section_matches_tracer(self, chaos):
        cluster, doc, snap = chaos
        assert doc["trace"]["enabled"] is True
        assert doc["trace"]["records"] == len(cluster.tracer.records())
        assert doc["trace"]["events"] == cluster.tracer.counts()
        counts = doc["trace"]["events"]
        assert counts["message.send"] == doc["messages"]["sent"]
        assert counts.get("message.lost", 0) == doc["messages"]["lost"]
        assert counts["replica.crash"] == 1
        assert counts["replica.recover"] == 1
        assert counts["op.update"] == doc["replay"]["updates"]
        assert counts["op.query"] == doc["replay"]["queries"]

    def test_replica_entries(self, chaos):
        cluster, doc, snap = chaos
        assert len(doc["replicas"]) == cluster.n
        for entry in doc["replicas"]:
            assert entry["crashed"] is False
            assert entry["replayed_updates"] == snap["replayed"][entry["pid"]]
            assert entry["log_length"] == snap["log_lengths"][entry["pid"]]

    def test_metrics_section_is_full_registry_dump(self, chaos):
        _cluster, doc, snap = chaos
        assert doc["metrics"] == snap["metrics_json"]

    def test_perfetto_export_loads(self, chaos):
        cluster, _, _snap = chaos
        trace = to_chrome_trace(cluster.tracer)
        events = trace["traceEvents"]
        assert events, "chaos run must produce trace events"
        # Serializes as JSON (what Perfetto actually parses); tuple attrs
        # come back as lists, so compare the event skeleton, not attrs.
        loaded = json.loads(json.dumps(trace))
        assert [e["name"] for e in loaded["traceEvents"]] == [
            e["name"] for e in events
        ]
        names = {e["name"] for e in events}
        for expected in ("message.send", "op.update", "op.query",
                         "replica.crash", "replica.recover",
                         "anti_entropy.round", "process_name"):
            assert expected in names


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = report_json(run_report(chaos_scenario(seed=3, ops=20)))
        b = report_json(run_report(chaos_scenario(seed=3, ops=20)))
        assert a == b

    def test_different_seed_different_run(self):
        a = run_report(chaos_scenario(seed=1, ops=20))
        b = run_report(chaos_scenario(seed=2, ops=20))
        assert a["messages"] != b["messages"]


class TestUntracedReport:
    def test_report_without_tracer_still_complete(self):
        from repro.obs.tracer import NULL_TRACER

        cluster = chaos_scenario(seed=0, ops=15, tracer=NULL_TRACER)
        doc = run_report(cluster)
        assert validate_report(doc) == []
        assert doc["trace"] == {"enabled": False, "records": 0, "events": {}}
        assert doc["messages"]["sent"] == cluster.network.sent_count


class TestValidator:
    def test_rejects_non_dict(self):
        assert validate_report([]) == ["report must be a JSON object, got list"]

    def test_flags_wrong_format(self, chaos):
        _, doc, _snap = chaos
        bad = copy.deepcopy(doc)
        bad["format"] = "bogus"
        assert any("format" in e for e in validate_report(bad))

    def test_flags_missing_and_mistyped_fields(self, chaos):
        _, doc, _snap = chaos
        bad = copy.deepcopy(doc)
        del bad["messages"]["sent"]
        bad["convergence"]["converged"] = "yes"
        errors = validate_report(bad)
        assert any("messages.sent" in e for e in errors)
        assert any("convergence.converged" in e for e in errors)

    def test_flags_broken_replica_entry(self, chaos):
        _, doc, _snap = chaos
        bad = copy.deepcopy(doc)
        bad["replicas"][0] = {"pid": "zero"}
        errors = validate_report(bad)
        assert any("replicas[0].pid" in e for e in errors)
        assert any("missing field 'crashed'" in e for e in errors)

    def test_nullable_fields_accept_null(self, chaos):
        _, doc, _snap = chaos
        ok = copy.deepcopy(doc)
        ok["staleness"] = None
        ok["convergence"]["time_to_agreement"] = None
        assert validate_report(ok) == []

    def test_survives_json_round_trip(self, chaos, tmp_path):
        _, doc, _snap = chaos
        path = tmp_path / "report.json"
        write_report(str(path), doc)
        loaded = json.loads(path.read_text())
        assert validate_report(loaded) == []
        assert loaded["messages"] == doc["messages"]


def minimal_net_report() -> dict:
    """The smallest document the net-report schema accepts."""
    return {
        "format": NET_REPORT_FORMAT,
        "kind": "soak",
        "config": {"users": 10, "replicas": 3,
                   "duration_seconds": 2.0, "ramp_seconds": 0.5},
        "summary": {
            "ops": 100, "updates": 80, "queries": 20, "errors": 0,
            "measured_seconds": 2.5, "ops_per_sec": 40.0,
            "p50_ms": 1.0, "p99_ms": 5.0, "max_ms": 9.0,
            "convergence_lag_p50_ms": 2.0, "convergence_lag_p99_ms": 30.0,
            "task_errors": 0, "converged": True,
        },
        "series": [{
            "t": 1.0, "ops": 40, "ops_per_sec": 40.0,
            "p50_ms": 1.0, "p99_ms": 5.0, "convergence_lag_p99_ms": 25.0,
            "task_errors": 0, "errors": 0,
        }],
        "metrics": {"repro_net_frames_sent_total": 123},
    }


class TestNetReportValidator:
    def test_accepts_minimal_document(self):
        assert validate_net_report(minimal_net_report()) == []

    def test_rejects_non_dict(self):
        assert validate_net_report(None) == [
            "report must be a JSON object, got NoneType"
        ]

    def test_flags_wrong_format(self):
        doc = minimal_net_report()
        doc["format"] = "repro-net-report-v0"
        assert any("format" in e for e in validate_net_report(doc))

    def test_flags_missing_and_mistyped_fields(self):
        doc = minimal_net_report()
        del doc["summary"]["ops_per_sec"]
        doc["config"]["users"] = "many"
        errors = validate_net_report(doc)
        assert any("summary.ops_per_sec" in e for e in errors)
        assert any("config.users" in e for e in errors)

    def test_converged_is_nullable(self):
        doc = minimal_net_report()
        doc["summary"]["converged"] = None
        assert validate_net_report(doc) == []
        doc["summary"]["converged"] = "yes"
        assert validate_net_report(doc) != []

    def test_integers_satisfy_float_fields(self):
        # JSON has one number type; a whole-number measurement must pass.
        doc = minimal_net_report()
        doc["summary"]["p99_ms"] = 5
        doc["series"][0]["t"] = 1
        assert validate_net_report(doc) == []

    def test_flags_broken_series_rows(self):
        doc = minimal_net_report()
        doc["series"].append("not a row")
        doc["series"].append({"t": 2.0})
        errors = validate_net_report(doc)
        assert any("series[1] must be an object" in e for e in errors)
        assert any("series[2] missing field" in e for e in errors)

    def test_empty_series_is_valid_for_plain_load(self):
        doc = minimal_net_report()
        doc["kind"] = "load"
        doc["series"] = []
        assert validate_net_report(doc) == []
