"""Tests for the ABD majority-quorum register (the strong baseline)."""

from __future__ import annotations

import pytest

from repro.objects.quorum import ABDClient, ABDReplica, Unavailable
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency, FixedLatency


def abd_cluster(n=3, latency=1.0, seed=0, initial=None):
    lat = FixedLatency(latency) if isinstance(latency, (int, float)) else latency
    c = Cluster(n, lambda p, total: ABDReplica(p, total, initial=initial),
                latency=lat, seed=seed)
    return c, [ABDClient(c, pid) for pid in range(n)]


class TestBasicProtocol:
    def test_read_initial(self):
        _, clients = abd_cluster(initial=0)
        value, _ = clients[0].read()
        assert value == 0

    def test_write_then_read_anywhere(self):
        _, clients = abd_cluster()
        clients[0].write("x")
        value, _ = clients[2].read()
        assert value == "x"

    def test_last_write_wins_sequentially(self):
        _, clients = abd_cluster()
        clients[0].write("a")
        clients[1].write("b")
        assert clients[2].read()[0] == "b"

    def test_writer_stamps_increase(self):
        c, clients = abd_cluster()
        clients[0].write("a")
        clients[1].write("b")
        stamps = [r.stamp for r in c.replicas]
        assert max(stamps)[0] == 2  # two writes, two sequence numbers

    def test_read_write_back_propagates(self):
        # After a read completes, a majority stores the read value.
        c, clients = abd_cluster(n=5)
        clients[0].write("v")
        clients[4].read()
        holders = sum(1 for r in c.replicas if r.value == "v")
        assert holders >= 3

    def test_operations_take_round_trips(self):
        _, clients = abd_cluster(latency=5.0)
        _, elapsed = clients[0].write("x")
        # Two phases, each needs replies from remote members: >= 2 RTT.
        assert elapsed >= 4 * 5.0

    def test_response_time_scales_with_latency(self):
        times = []
        for latency in (1.0, 4.0):
            _, clients = abd_cluster(latency=latency)
            _, elapsed = clients[0].write("x")
            times.append(elapsed)
        assert times[1] == pytest.approx(times[0] * 4)

    def test_wait_free_interface_refused(self):
        c, _ = abd_cluster()
        from repro.core.adt import Update

        with pytest.raises(Exception, match="ABDClient"):
            c.update(0, Update("write", ("x",)))


class TestAtomicity:
    def test_reads_never_go_backwards(self):
        # Sequential reads from different clients observe monotone values.
        _, clients = abd_cluster(n=5, latency=ExponentialLatency(3.0), seed=7)
        clients[0].write(1)
        clients[1].write(2)
        seen = [clients[pid].read()[0] for pid in (2, 3, 4, 2, 3)]
        # Once 2 is read, no later read returns 1 (write-back!).
        first_two = seen.index(2)
        assert all(v == 2 for v in seen[first_two:])

    def test_concurrent_async_ops_complete(self):
        c, clients = abd_cluster(n=3, latency=ExponentialLatency(2.0), seed=3)
        w = clients[0].write_async("w")
        r = clients[1].read_async()
        c.run()
        assert clients[0].done(w) and clients[1].done(r)
        result = clients[1].replica.poll(r).result
        assert result in (None, "w")  # concurrent: either order is atomic


class TestUnavailability:
    def test_minority_partition_blocks(self):
        c, clients = abd_cluster(n=5)
        c.partition([[0, 1], [2, 3, 4]])
        with pytest.raises(Unavailable):
            clients[0].write("doomed")

    def test_majority_partition_still_works(self):
        c, clients = abd_cluster(n=5)
        c.partition([[0, 1], [2, 3, 4]])
        clients[2].write("fine")
        assert clients[3].read()[0] == "fine"

    def test_too_many_crashes_block(self):
        c, clients = abd_cluster(n=3)
        c.crash(1)
        c.crash(2)
        with pytest.raises(Unavailable):
            clients[0].read()

    def test_minority_crashes_tolerated(self):
        c, clients = abd_cluster(n=5)
        c.crash(3)
        c.crash(4)
        clients[0].write("ok")
        assert clients[1].read()[0] == "ok"

    def test_healed_partition_recovers(self):
        c, clients = abd_cluster(n=3)
        c.partition([[0], [1, 2]])
        op = clients[0].write_async("late")
        c.run()
        assert not clients[0].done(op)
        c.heal()
        c.run()
        assert clients[0].done(op)


class TestContrastWithUpdateConsistency:
    def test_uc_memory_available_where_abd_blocks(self):
        """The CAP choice, side by side: same partition, same demand."""
        from repro.core.memory import MemoryReplica
        from repro.specs import register as R

        abd, clients = abd_cluster(n=3)
        abd.partition([[0], [1, 2]])
        with pytest.raises(Unavailable):
            clients[0].write("x")

        uc = Cluster(3, lambda p, n: MemoryReplica(p, n))
        uc.partition([[0], [1, 2]])
        uc.update(0, R.mem_write("r", "x"))  # completes instantly
        assert uc.query(0, "read", ("r",)) == "x"
