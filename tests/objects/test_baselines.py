"""Tests for the pipelined (FIFO) and causal baselines — the two halves of
Proposition 1's impossibility."""

from __future__ import annotations

from repro.core.adt import Update
from repro.objects import make_replicated
from repro.objects.causal import CausalApplyReplica
from repro.objects.pipelined import FifoApplyReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec, LogSpec
from repro.specs import log_spec as L
from repro.specs import set_spec as S

SPEC = SetSpec()


def fifo_cluster(n=2, **kw):
    kw.setdefault("fifo", True)
    return Cluster(n, lambda pid, total: FifoApplyReplica(pid, total, SPEC), **kw)


class TestFifoApply:
    def test_local_sequential_semantics(self):
        c = fifo_cluster()
        c.update(0, S.insert(1))
        c.update(0, S.delete(1))
        assert c.query(0, "read") == frozenset()

    def test_sender_order_preserved(self):
        c = fifo_cluster(latency=ExponentialLatency(5.0), seed=7)
        c.update(0, S.insert(1))
        c.update(0, S.delete(1))
        c.run()
        # FIFO: p1 applied insert-then-delete, never delete-then-insert.
        assert c.query(1, "read") == frozenset()
        assert [u.name for _, _, u in c.replicas[1].applied_log] == ["insert", "delete"]

    def test_applied_log_is_a_pc_witness(self):
        # Each replica's applied sequence, restricted to updates, must be
        # a valid linearization: replaying it never contradicts its own
        # interleaved queries (constructive Definition 7 check).
        c = fifo_cluster(latency=ExponentialLatency(3.0), seed=4)
        c.update(0, S.insert(1))
        c.update(1, S.insert(2))
        c.run()
        c.update(0, S.delete(2))
        c.run()
        for pid in range(2):
            word = [u for _, _, u in c.replicas[pid].applied_log]
            state = SPEC.replay(word)
            assert c.query(pid, "read") == state

    def test_divergence_on_concurrent_conflicts(self):
        # The Fig. 2 mechanism: different interleavings at each replica.
        c = fifo_cluster(latency=ExponentialLatency(100.0), seed=0)
        c.update(0, S.insert(3))
        c.update(1, S.delete(3))
        # p0 applied I(3) then will apply D(3) -> ∅;
        # p1 applied D(3) then will apply I(3) -> {3}.
        c.run()
        assert c.query(0, "read") == frozenset()
        assert c.query(1, "read") == frozenset({3})  # diverged forever

    def test_record_applied_can_be_disabled(self):
        c = Cluster(2, lambda pid, n: FifoApplyReplica(pid, n, SPEC, record_applied=False))
        c.update(0, S.insert(1))
        assert c.replicas[0].applied_log == []


class TestCausalApply:
    def causal_cluster(self, n=3, **kw):
        return Cluster(n, lambda pid, total: CausalApplyReplica(pid, total, SPEC), **kw)

    def test_causal_order_enforced_across_processes(self):
        # p0 inserts; p1 sees it and deletes; p2 receives the delete FIRST
        # but must buffer it until the insert arrives.
        c = self.causal_cluster(latency=ExponentialLatency(10.0), seed=14)
        c.update(0, S.insert(1))
        c.run()  # p1 and p2 now have the insert
        c.update(1, S.delete(1))
        c.run()
        for pid in range(3):
            assert c.query(pid, "read") == frozenset()

    def test_buffering_happens(self):
        c = self.causal_cluster(n=3)
        # Manually race: p0's insert held toward p2, p1's causally later
        # delete arrives first and must wait.
        c.network.hold(0, 2)
        c.update(0, S.insert(1))
        c.run()  # p1 got it; p2 did not
        c.update(1, S.delete(1))
        c.run()
        assert c.query(2, "read") == frozenset()  # delete is buffered
        assert len(c.replicas[2].buffer) == 1
        c.network.release(0, 2, c.now)
        c.run()
        assert c.query(2, "read") == frozenset()
        assert c.replicas[2].buffer == []
        # The high-water mark counts the released insert joining the queue
        # momentarily before the drain empties both.
        assert c.replicas[2].max_buffered == 2

    def test_concurrent_conflicts_still_diverge(self):
        # Causal delivery does not arbitrate concurrency: Prop. 1 again.
        c = self.causal_cluster(n=2)
        c.partition([[0], [1]])
        c.update(0, S.insert(3))
        c.update(1, S.delete(3))
        c.heal()
        c.run()
        assert c.query(0, "read") != c.query(1, "read")

    def test_log_interleaving_respects_causality(self):
        spec = LogSpec()
        c = Cluster(2, lambda pid, n: CausalApplyReplica(pid, n, spec))
        c.update(0, L.append("a"))
        c.run()
        c.update(1, L.append("b"))  # causally after "a"
        c.run()
        assert c.query(0, "read") == ("a", "b")
        assert c.query(1, "read") == ("a", "b")


class TestFactoryIntegration:
    def test_fifo_strategy(self):
        cluster, handles = make_replicated(SetSpec(), 2, strategy="fifo")
        assert isinstance(cluster.replicas[0], FifoApplyReplica)
        handles[0].insert(1)
        cluster.run()
        assert handles[1].read() == frozenset({1})

    def test_causal_strategy(self):
        cluster, handles = make_replicated(SetSpec(), 2, strategy="causal")
        assert isinstance(cluster.replicas[0], CausalApplyReplica)
        handles[0].insert(1)
        cluster.run()
        assert handles[1].read() == frozenset({1})
