"""Tests for the object handles and the replication factory."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointedReplica
from repro.core.commutative import CommutativeReplica
from repro.core.universal import UniversalReplica
from repro.objects import make_memory, make_replicated
from repro.objects.handles import SetHandle
from repro.specs import (
    CounterSpec,
    LogSpec,
    MapSpec,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    StackSpec,
)


class TestFactory:
    def test_default_strategy_is_universal(self):
        cluster, handles = make_replicated(SetSpec(), 3)
        assert all(isinstance(r, UniversalReplica) for r in cluster.replicas)
        assert all(isinstance(h, SetHandle) for h in handles)

    def test_strategy_selection(self):
        cluster, _ = make_replicated(SetSpec(), 2, strategy="checkpoint")
        assert all(isinstance(r, CheckpointedReplica) for r in cluster.replicas)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_replicated(SetSpec(), 2, strategy="magic")

    def test_replica_kwargs_forwarded(self):
        cluster, _ = make_replicated(
            SetSpec(), 2, strategy="checkpoint", checkpoint_interval=7
        )
        assert cluster.replicas[0].checkpoint_interval == 7

    def test_commutative_strategy_needs_commutative_spec(self):
        make_replicated(CounterSpec(), 2, strategy="commutative")
        with pytest.raises(ValueError):
            make_replicated(SetSpec(), 2, strategy="commutative")

    def test_fifo_defaults(self):
        c1, _ = make_replicated(SetSpec(), 2)
        c2, _ = make_replicated(SetSpec(), 2, strategy="fifo")
        assert not c1.network.fifo
        assert c2.network.fifo

    def test_commutative_replica_for_counter(self):
        cluster, _ = make_replicated(CounterSpec(), 2, strategy="commutative")
        assert isinstance(cluster.replicas[0], CommutativeReplica)


class TestHandles:
    def test_set_handle_roundtrip(self):
        cluster, (a, b, c) = make_replicated(SetSpec(), 3)
        a.insert("x")
        a.delete("y")
        cluster.run()
        assert b.read() == frozenset({"x"})
        assert c.contains("x") is True

    def test_map_handle(self):
        cluster, (a, b) = make_replicated(MapSpec(), 2)
        a.put("k", 1)
        cluster.run()
        assert b.get("k") == 1
        assert b.keys() == frozenset({"k"})
        a.remove("k")
        cluster.run()
        assert b.get("k") == "<absent>"

    def test_register_handle(self):
        cluster, (a, b) = make_replicated(RegisterSpec(), 2)
        a.write(5)
        cluster.run()
        assert b.read() == 5

    def test_counter_handle(self):
        cluster, (a, b) = make_replicated(CounterSpec(), 2)
        a.inc(3)
        b.dec()
        cluster.run()
        assert a.read() == 2

    def test_queue_handle_split_dequeue(self):
        cluster, (a, b) = make_replicated(QueueSpec(), 2)
        a.enqueue("job1")
        a.enqueue("job2")
        cluster.run()
        assert b.front() == "job1"
        b.pop()
        cluster.run()
        assert a.front() == "job2"
        assert a.size() == 1

    def test_stack_handle_split_pop(self):
        cluster, (a, b) = make_replicated(StackSpec(), 2)
        a.push(1)
        a.push(2)
        cluster.run()
        assert b.top() == 2
        b.drop()
        cluster.run()
        assert a.top() == 1
        assert b.snapshot() == (1,)

    def test_log_handle(self):
        cluster, (a, b) = make_replicated(LogSpec(), 2)
        a.append("line1")
        b.append("line2")
        cluster.run()
        assert a.read() == b.read()
        assert a.length() == 2
        assert a.at(0) in ("line1", "line2")

    def test_memory_factory(self):
        cluster, (a, b, c) = make_memory(3, initial=0)
        a.write("x", 1)
        cluster.run()
        assert b.read("x") == 1
        assert c.read("unwritten") == 0
        assert b.snapshot() == {"x": 1}

    def test_handle_exposes_replica(self):
        cluster, (a, _) = make_replicated(SetSpec(), 2)
        assert a.replica is cluster.replicas[0]
