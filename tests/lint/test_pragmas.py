"""Pragma suppression: every rule family can be silenced per line or per
file, unknown codes are inert, and suppression is code-specific."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_source
from repro.lint.engine import collect_pragmas

FIXTURES = Path(__file__).parent / "fixtures"
BAD = sorted((FIXTURES / "bad").glob("*.py"))


def expected_code(path: Path) -> str:
    return path.stem.split("_", 1)[0].upper()


def suppress_lines(source: str, code: str) -> str:
    """Append the disable pragma to every line (simplest blanket per-line)."""
    return "\n".join(
        f"{line}  # uqlint: disable={code} -- fixture test"
        for line in source.splitlines()
    )


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_per_line_pragma_suppresses_every_rule(path: Path) -> None:
    code = expected_code(path)
    suppressed = suppress_lines(path.read_text(), code)
    assert lint_source(suppressed, str(path)) == []


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_file_pragma_suppresses_every_rule(path: Path) -> None:
    code = expected_code(path)
    source = f"# uqlint: disable-file={code}\n" + path.read_text()
    assert lint_source(source, str(path)) == []


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_disable_all_suppresses_every_rule(path: Path) -> None:
    source = "# uqlint: disable-file=all\n" + path.read_text()
    assert lint_source(source, str(path)) == []


def test_project_rule_pragma_on_its_line() -> None:
    # The v2 families obey the same per-line pragma as per-module rules,
    # including project-scoped rules like EFX401 (findings land on lines).
    path = FIXTURES / "bad" / "efx401_missing_dispatch.py"
    source = suppress_lines(path.read_text(), "EFX401")
    assert lint_source(source, str(path)) == []


def test_asy_file_pragma_with_justification() -> None:
    path = FIXTURES / "bad" / "asy301_await_toctou.py"
    source = (
        "# uqlint: disable-file=ASY301 -- scripted single-task demo\n"
        + path.read_text()
    )
    assert lint_source(source, str(path)) == []


def test_pragma_is_code_specific() -> None:
    path = FIXTURES / "bad" / "uq001_state_store.py"
    # Disabling an unrelated code must not silence the real finding.
    source = suppress_lines(path.read_text(), "SIM101")
    codes = {f.code for f in lint_source(source, str(path))}
    assert codes == {"UQ001"}


def test_pragma_only_covers_its_line() -> None:
    source = (
        "class UQADT:\n"
        "    pass\n"
        "\n"
        "class S(UQADT):\n"
        "    def apply(self, state, update):\n"
        "        state['a'] = 1  # uqlint: disable=UQ001 -- demo\n"
        "        state['b'] = 2\n"
        "        return state\n"
    )
    findings = lint_source(source)
    assert [f.line for f in findings] == [7]


def test_unknown_pragma_codes_are_inert() -> None:
    per_line, file_wide = collect_pragmas("x = 1  # uqlint: disable=NOPE123\n")
    assert per_line == {1: {"NOPE123"}}
    assert file_wide == set()


def test_multiple_codes_in_one_pragma() -> None:
    per_line, _ = collect_pragmas("y = 2  # uqlint: disable=UQ001, SIM101\n")
    assert per_line == {1: {"UQ001", "SIM101"}}


def test_justification_text_is_tolerated() -> None:
    per_line, _ = collect_pragmas(
        "z = 3  # uqlint: disable=SIM101 -- wall-clock budget, CLI only\n"
    )
    assert per_line == {1: {"SIM101"}}
