"""The uqlint CLI: formats, exit codes, selection — plus the meta-test that
the shipped tree lints clean (the CI static-analysis contract)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*argv: str) -> tuple[int, str]:
    import contextlib
    import io

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


def test_clean_file_exits_zero(tmp_path: Path) -> None:
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    code, out = run_cli(str(target))
    assert code == 0
    assert "ok: 0 finding(s)" in out


def test_bad_fixture_exits_nonzero() -> None:
    code, out = run_cli(str(FIXTURES / "bad" / "sim104_id_order.py"))
    assert code == 1
    assert "SIM104" in out


def test_json_format_is_machine_readable() -> None:
    code, out = run_cli(str(FIXTURES / "bad"), "--format", "json")
    assert code == 1
    doc = json.loads(out)
    assert doc["tool"] == "uqlint"
    assert doc["files_checked"] == len(list((FIXTURES / "bad").glob("*.py")))
    codes = {f["code"] for f in doc["findings"]}
    assert {"UQ001", "SIM101", "REP201"} <= codes
    sample = doc["findings"][0]
    assert set(sample) == {"path", "line", "col", "code", "message"}


def test_select_restricts_rules() -> None:
    code, out = run_cli(str(FIXTURES / "bad"), "--select", "UQ003", "--format", "json")
    assert code == 1
    doc = json.loads(out)
    assert {f["code"] for f in doc["findings"]} == {"UQ003"}


def test_select_rejects_unknown_code() -> None:
    with pytest.raises(SystemExit) as excinfo:
        run_cli("--select", "XX999")
    assert excinfo.value.code == 2


def test_select_family_prefix_expands() -> None:
    code, out = run_cli(str(FIXTURES / "bad"), "--select", "ASY", "--format", "json")
    assert code == 1
    doc = json.loads(out)
    found = {f["code"] for f in doc["findings"]}
    assert found == {"ASY301", "ASY302", "ASY303", "ASY304", "ASY305"}


def test_select_mixes_families_and_codes() -> None:
    code, out = run_cli(
        str(FIXTURES / "bad"), "--select", "EFX,UQ001", "--format", "json"
    )
    assert code == 1
    doc = json.loads(out)
    found = {f["code"] for f in doc["findings"]}
    assert "UQ001" in found
    assert {"EFX401", "EFX402", "EFX403", "EFX404"} <= found
    assert not any(c.startswith(("SIM", "ASY", "REP")) for c in found)


def test_select_rejects_unknown_family() -> None:
    with pytest.raises(SystemExit) as excinfo:
        run_cli("--select", "ZZZ")
    assert excinfo.value.code == 2


def test_no_project_skips_whole_program_rules() -> None:
    # EFX401 is a project rule: the bad fixture goes silent without phase 2.
    bad = str(FIXTURES / "bad" / "efx401_missing_dispatch.py")
    assert run_cli(bad)[0] == 1
    assert run_cli(bad, "--no-project")[0] == 0


def test_missing_path_is_a_usage_error(tmp_path: Path) -> None:
    with pytest.raises(SystemExit) as excinfo:
        run_cli(str(tmp_path / "does-not-exist"))
    assert excinfo.value.code == 2


def test_list_rules_prints_catalog() -> None:
    code, out = run_cli("--list-rules")
    assert code == 0
    for expected in (
        "UQ001", "UQ005", "SIM101", "SIM104", "REP201", "REP203",
        "ASY301", "ASY305", "EFX401", "EFX404",
    ):
        assert expected in out


def test_list_rules_groups_by_family() -> None:
    code, out = run_cli("--list-rules")
    assert code == 0
    lines = out.splitlines()
    headers = [i for i, ln in enumerate(lines) if not ln.startswith(" ")]
    # One header per family, in sorted family order, each with a summary.
    assert [lines[i].split(" ")[0] for i in headers] == [
        "ASY", "EFX", "REP", "SIM", "UQ",
    ]
    assert all("—" in lines[i] for i in headers)
    # Project-scoped rules are marked; ASY302/EFX4xx run in phase 2.
    assert any("ASY302" in ln and "[project]" in ln for ln in lines)
    assert any("EFX401" in ln and "[project]" in ln for ln in lines)
    assert any("UQ001" in ln and "[module]" in ln for ln in lines)


def test_parse_error_is_reported_not_raised(tmp_path: Path) -> None:
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    code, out = run_cli(str(target))
    assert code == 1
    assert "LINT000" in out


def test_shipped_tree_lints_clean() -> None:
    """The self-application contract: ``python -m repro.lint src`` exits 0."""
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
        cwd=REPO,
        capture_output=True,
        text=True,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    doc = json.loads(result.stdout)
    assert doc["findings"] == []
    assert doc["files_checked"] > 80  # the whole package, not a subset
