"""ASY3xx unit tests: the await-point token stream, guarded-scope
selection, the re-validation escape hatch, and the whole-program ASY302
resolution through the project model."""

from __future__ import annotations

from repro.lint import lint_source, lint_sources


def codes(source: str, **kwargs) -> set[str]:
    return {f.code for f in lint_source(source, **kwargs)}


class TestAwaitToctou:
    BAD = (
        "import asyncio\n"
        "class CacheNode:\n"
        "    async def bump(self, k):\n"
        "        seen = self.counts\n"
        "        await asyncio.sleep(0)\n"
        "        self.counts = seen + [k]\n"
    )

    def test_read_await_write_is_flagged(self) -> None:
        assert codes(self.BAD) == {"ASY301"}

    def test_finding_points_at_the_write(self) -> None:
        (finding,) = lint_source(self.BAD)
        assert finding.line == 6

    def test_unguarded_class_is_exempt(self) -> None:
        # Same pattern in a class that is not a Node/Handler/Server: the
        # atomicity obligation only binds the backend interpreters.
        assert codes(self.BAD.replace("CacheNode", "CacheHelper")) == set()

    def test_handler_suffix_is_guarded(self) -> None:
        assert codes(self.BAD.replace("CacheNode", "FrameHandler")) == {"ASY301"}

    def test_guarded_base_class_counts(self) -> None:
        src = self.BAD.replace("class CacheNode:", "class Cache(ReplicaNode):")
        assert "ASY301" in codes(src)

    def test_revalidation_suppresses(self) -> None:
        src = (
            "import asyncio\n"
            "class CacheNode:\n"
            "    async def bump(self, k):\n"
            "        seen = self.counts\n"
            "        await asyncio.sleep(0)\n"
            "        seen = self.counts\n"  # re-read after the yield
            "        self.counts = seen + [k]\n"
        )
        assert codes(src) == set()

    def test_store_from_await_value_is_clean(self) -> None:
        # `self.x = await f()` has no pre-await read: nothing stale.
        src = (
            "class CacheNode:\n"
            "    async def refresh(self, fetch):\n"
            "        self.counts = await fetch()\n"
        )
        assert codes(src) == set()

    def test_mutator_store_after_await_is_flagged(self) -> None:
        src = (
            "import asyncio\n"
            "class QueueNode:\n"
            "    async def push(self, item):\n"
            "        if item in self.backlog:\n"
            "            return\n"
            "        await asyncio.sleep(0)\n"
            "        self.backlog.append(item)\n"
        )
        assert codes(src) == {"ASY301"}

    def test_module_global_in_serve_coroutine(self) -> None:
        src = (
            "import asyncio\n"
            "_REGISTRY = []\n"
            "async def serve_frame(frame):\n"
            "    known = list(_REGISTRY)\n"
            "    await asyncio.sleep(0)\n"
            "    _REGISTRY.append(frame)\n"
        )
        assert codes(src) == {"ASY301"}

    def test_local_shadow_of_global_is_clean(self) -> None:
        src = (
            "import asyncio\n"
            "_REGISTRY = []\n"
            "async def serve_frame(frame):\n"
            "    _REGISTRY = []\n"  # local shadow, not the module global
            "    known = list(_REGISTRY)\n"
            "    await asyncio.sleep(0)\n"
            "    _REGISTRY.append(frame)\n"
        )
        assert codes(src) == set()

    def test_async_for_is_a_yield_point(self) -> None:
        src = (
            "class StreamNode:\n"
            "    async def pump(self, frames):\n"
            "        base = self.offset\n"
            "        async for frame in frames:\n"
            "            self.offset = base + 1\n"
        )
        assert codes(src) == {"ASY301"}

    def test_nested_def_bodies_are_out_of_scope(self) -> None:
        src = (
            "import asyncio\n"
            "class CacheNode:\n"
            "    async def bump(self, k):\n"
            "        seen = self.counts\n"
            "        await asyncio.sleep(0)\n"
            "        def later():\n"
            "            self.counts = seen + [k]\n"  # runs who-knows-when
            "        return later\n"
        )
        assert codes(src) == set()


class TestUnawaitedCoroutine:
    def test_local_coroutine_called_bare(self) -> None:
        src = (
            "async def tick():\n"
            "    pass\n"
            "def kick():\n"
            "    tick()\n"
        )
        assert codes(src) == {"ASY302"}

    def test_awaited_call_is_clean(self) -> None:
        src = (
            "async def tick():\n"
            "    pass\n"
            "async def kick():\n"
            "    await tick()\n"
        )
        assert codes(src) == set()

    def test_self_method_coroutine(self) -> None:
        src = (
            "class Pump:\n"
            "    async def tick(self):\n"
            "        pass\n"
            "    def kick(self):\n"
            "        self.tick()\n"
        )
        assert codes(src) == {"ASY302"}

    def test_plain_method_call_is_clean(self) -> None:
        src = (
            "class Pump:\n"
            "    def tick(self):\n"
            "        pass\n"
            "    def kick(self):\n"
            "        self.tick()\n"
        )
        assert codes(src) == set()

    def test_imported_coroutine_resolved_across_modules(self) -> None:
        findings = lint_sources(
            {
                "src/app/aio.py": "async def pump():\n    pass\n",
                "src/app/main.py": (
                    "from app.aio import pump\n"
                    "def run():\n"
                    "    pump()\n"
                ),
            }
        )
        assert [(f.path, f.code) for f in findings] == [
            ("src/app/main.py", "ASY302")
        ]

    def test_imported_plain_function_is_clean(self) -> None:
        findings = lint_sources(
            {
                "src/app/util.py": "def pump():\n    pass\n",
                "src/app/main.py": (
                    "from app.util import pump\n"
                    "def run():\n"
                    "    pump()\n"
                ),
            }
        )
        assert findings == []

    def test_module_attribute_call_resolved(self) -> None:
        findings = lint_sources(
            {
                "src/app/aio.py": "async def pump():\n    pass\n",
                "src/app/main.py": (
                    "from app import aio\n"
                    "def run():\n"
                    "    aio.pump()\n"
                ),
            }
        )
        assert {f.code for f in findings} == {"ASY302"}


class TestDroppedTask:
    def test_loop_create_task_is_flagged(self) -> None:
        src = (
            "def kick(loop, coro):\n"
            "    loop.create_task(coro)\n"
        )
        assert codes(src) == {"ASY303"}

    def test_retained_task_is_clean(self) -> None:
        src = (
            "import asyncio\n"
            "def kick(tasks, coro):\n"
            "    task = asyncio.create_task(coro)\n"
            "    tasks.add(task)\n"
        )
        assert codes(src) == set()


class TestBlockingCalls:
    def test_fsync_in_async_def(self) -> None:
        src = (
            "import os\n"
            "async def flush(fd):\n"
            "    os.fsync(fd)\n"
        )
        assert codes(src) == {"ASY304"}

    def test_open_in_sync_helper_is_clean(self) -> None:
        src = (
            "def read(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert codes(src) == set()

    def test_open_in_nested_sync_def_is_clean(self) -> None:
        src = (
            "import asyncio\n"
            "async def load(path):\n"
            "    def read():\n"
            "        with open(path) as fh:\n"
            "            return fh.read()\n"
            "    return await asyncio.to_thread(read)\n"
        )
        assert codes(src) == set()

    def test_shadowed_open_is_clean(self) -> None:
        src = (
            "from app.store import open\n"
            "async def load(path):\n"
            "    return open(path)\n"
        )
        assert codes(src) == set()


class TestLockAcrossAwait:
    def test_clock_is_not_a_lock(self) -> None:
        src = (
            "import asyncio\n"
            "async def tick(self_clock):\n"
            "    with self_clock:\n"
            "        await asyncio.sleep(0)\n"
        )
        # "clock" must not be matched by the lock-name heuristic.
        assert codes(src.replace("self_clock", "clock")) == set()

    def test_lock_released_before_await_is_clean(self) -> None:
        src = (
            "async def publish(lock, send, payload):\n"
            "    lock.acquire()\n"
            "    frame = [payload]\n"
            "    lock.release()\n"
            "    await send(frame)\n"
        )
        assert codes(src) == set()

    def test_threading_lock_constructor_in_with(self) -> None:
        src = (
            "import asyncio\n"
            "import threading\n"
            "async def guard(send):\n"
            "    with threading.Lock():\n"
            "        await send(1)\n"
        )
        assert codes(src) == {"ASY305"}
