"""EFX4xx unit tests, including the acceptance-criteria mutation test:
adding a new effect to the *real* ``repro.proto.effects`` source without
teaching the *real* backends must turn into an EFX401 failure on both
``sim.cluster`` and ``net.node``."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_source, lint_sources

REPO = Path(__file__).resolve().parents[2]

EFFECTS = "src/repro/proto/effects.py"
CLUSTER = "src/repro/sim/cluster.py"
NODE = "src/repro/net/node.py"


def codes(source: str, **kwargs) -> set[str]:
    return {f.code for f in lint_source(source, **kwargs)}


def real_sources() -> dict[str, str]:
    return {
        rel: (REPO / rel).read_text() for rel in (EFFECTS, CLUSTER, NODE)
    }


def add_effect(effects_source: str, name: str) -> str:
    """Append a new effect class and splice it into the closed union."""
    old_union = "Effect = Union[Send, Broadcast, Persist, Timer, QueryAnswered]"
    assert old_union in effects_source, "union layout changed; update the test"
    mutated = effects_source.replace(
        old_union,
        f"class {name}:\n"
        f"    pass\n"
        f"\n"
        f"\n"
        f"Effect = Union[Send, Broadcast, Persist, Timer, QueryAnswered, {name}]",
    )
    return mutated


class TestMutationOnRealTree:
    def test_shipped_backends_satisfy_the_contract(self) -> None:
        findings = lint_sources(real_sources())
        assert [f for f in findings if f.code.startswith("EFX")] == []

    def test_new_effect_without_dispatch_fails_both_backends(self) -> None:
        sources = real_sources()
        sources[EFFECTS] = add_effect(sources[EFFECTS], "Churn")
        efx = [f for f in lint_sources(sources) if f.code == "EFX401"]
        assert {f.path for f in efx} == {CLUSTER, NODE}
        assert all("Churn" in f.message for f in efx)

    def test_teaching_one_backend_still_fails_the_other(self) -> None:
        sources = real_sources()
        sources[EFFECTS] = add_effect(sources[EFFECTS], "Churn")
        sources[CLUSTER] = sources[CLUSTER].replace(
            "IGNORED_EFFECTS = (Persist, Timer, QueryAnswered)",
            "IGNORED_EFFECTS = (Persist, Timer, QueryAnswered, Churn)",
        ).replace(
            "    QueryAnswered,\n    Send,", "    QueryAnswered,\n    Churn,\n    Send,"
        )
        efx = [f for f in lint_sources(sources) if f.code == "EFX401"]
        assert {f.path for f in efx} == {NODE}


class TestEffectContract:
    UNION = (
        "from typing import Union\n"
        "class Send:\n    pass\n"
        "class Persist:\n    pass\n"
        "Effect = Union[Send, Persist]\n"
    )

    def test_undeclared_importer_is_flagged(self) -> None:
        findings = lint_sources(
            {
                "src/app/proto/effects.py": self.UNION,
                "src/app/backend.py": (
                    "from app.proto.effects import Send\n"
                    "def apply(eff, ship):\n"
                    "    if isinstance(eff, Send):\n"
                    "        ship(eff)\n"
                ),
            }
        )
        assert [(f.path, f.code) for f in findings] == [
            ("src/app/backend.py", "EFX401")
        ]
        assert "declares no effect contract" in findings[0].message

    def test_handled_but_never_dispatched(self) -> None:
        src = (
            "from typing import Union\n"
            "class Send:\n    pass\n"
            "Effect = Union[Send]\n"
            "HANDLED_EFFECTS = (Send,)\n"
            "IGNORED_EFFECTS = ()\n"
        )
        findings = lint_source(src)
        assert {f.code for f in findings} == {"EFX401"}
        assert "never dispatches" in findings[0].message

    def test_overlapping_contract_is_flagged(self) -> None:
        src = (
            "from typing import Union\n"
            "class Send:\n    pass\n"
            "class Persist:\n    pass\n"
            "Effect = Union[Send, Persist]\n"
            "HANDLED_EFFECTS = (Send, Persist)\n"
            "IGNORED_EFFECTS = (Persist,)\n"
            "def apply(eff, ship, save):\n"
            "    if isinstance(eff, Send):\n"
            "        ship(eff)\n"
            "    elif isinstance(eff, Persist):\n"
            "        save(eff)\n"
        )
        assert codes(src) == {"EFX402"}

    def test_pep604_union_is_parsed(self) -> None:
        src = (
            "class Send:\n    pass\n"
            "class Persist:\n    pass\n"
            "Effect = Send | Persist\n"
            "HANDLED_EFFECTS = (Send,)\n"
            "IGNORED_EFFECTS = ()\n"
            "def apply(eff, ship):\n"
            "    if isinstance(eff, Send):\n"
            "        ship(eff)\n"
        )
        findings = lint_source(src)
        assert {f.code for f in findings} == {"EFX401"}
        assert "Persist" in findings[0].message

    def test_no_project_mode_skips_contract_rules(self) -> None:
        bad = (REPO / "tests/lint/fixtures/bad/efx401_missing_dispatch.py").read_text()
        assert codes(bad, project=False) == set()


class TestEventDispatch:
    def test_real_core_is_event_exhaustive(self) -> None:
        sources = {
            "src/repro/proto/events.py": (REPO / "src/repro/proto/events.py").read_text(),
            "src/repro/proto/core.py": (REPO / "src/repro/proto/core.py").read_text(),
        }
        assert [f.code for f in lint_sources(sources)] == []

    def test_new_event_without_arm_fails(self) -> None:
        events = (REPO / "src/repro/proto/events.py").read_text()
        assert "Event = Union[" in events
        mutated = events.replace(
            "Event = Union[",
            "class Reconfigure:\n    pass\n\n\nEvent = Union[Reconfigure, ",
        )
        findings = lint_sources(
            {
                "src/repro/proto/events.py": mutated,
                "src/repro/proto/core.py": (
                    REPO / "src/repro/proto/core.py"
                ).read_text(),
            }
        )
        assert [f.code for f in findings] == ["EFX403"]
        assert "Reconfigure" in findings[0].message


class TestTypedEventsOnly:
    def test_dict_payload_is_flagged(self) -> None:
        src = (
            "from repro.proto.core import ProtocolCore\n"
            "def drive(core):\n"
            "    core.handle({'kind': 'sync'})\n"
        )
        assert codes(src) == {"EFX404"}

    def test_non_proto_handle_is_exempt(self) -> None:
        # `.handle()` on arbitrary objects in modules that never touch the
        # protocol package is none of EFX404's business.
        src = (
            "def drive(queue):\n"
            "    queue.handle(('job', 1))\n"
        )
        assert codes(src) == set()
