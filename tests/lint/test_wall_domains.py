"""SIM101/SIM105 scoping: the sanctioned wall-clock domains.

The networked backend and its observability twins legitimately live on
real time; the determinism rules must skip exactly those subtrees and
nothing else.
"""

from __future__ import annotations

from repro.lint.determinism import WALL_CLOCK_DOMAINS
from repro.lint.engine import lint_source, module_name_for

WALL_CLOCK_SOURCE = """\
import time

def stamp():
    return time.time()
"""

INSTRUMENTED_SOURCE = """\
import time

class LagTracer:
    clock = time.monotonic  # a captured reference, not a call

    def record(self, value):
        return self.clock
"""


def codes_for(source: str, path: str) -> set[str]:
    return {f.code for f in lint_source(source, path)}


class TestDomainScoping:
    def test_sim_code_keeps_the_wall_clock_ban(self):
        codes = codes_for(WALL_CLOCK_SOURCE, "src/repro/sim/sched.py")
        assert "SIM101" in codes

    def test_net_modules_are_exempt(self):
        assert codes_for(WALL_CLOCK_SOURCE, "src/repro/net/node.py") == set()
        assert codes_for(WALL_CLOCK_SOURCE, "src/repro/net/sub/deep.py") == set()

    def test_wall_obs_twins_are_exempt(self):
        assert codes_for(WALL_CLOCK_SOURCE, "src/repro/obs/wall.py") == set()
        assert codes_for(WALL_CLOCK_SOURCE, "src/repro/obs/log.py") == set()

    def test_sim_side_obs_stays_banned(self):
        # repro.obs.tracer / metrics speak virtual time; no exemption.
        codes = codes_for(WALL_CLOCK_SOURCE, "src/repro/obs/tracer.py")
        assert "SIM101" in codes

    def test_prefix_match_is_on_module_boundaries(self):
        # "repro.network" must NOT inherit "repro.net"'s exemption.
        codes = codes_for(WALL_CLOCK_SOURCE, "src/repro/network.py")
        assert "SIM101" in codes

    def test_sim105_follows_the_same_scope(self):
        in_sim = {
            f.code
            for f in lint_source(INSTRUMENTED_SOURCE, "src/repro/sim/loop.py")
        }
        in_net = {
            f.code
            for f in lint_source(INSTRUMENTED_SOURCE, "src/repro/net/node.py")
        }
        assert "SIM105" in in_sim
        assert "SIM105" not in in_net

    def test_domains_resolve_to_real_modules(self):
        # Guard against a rename leaving a stale domain entry behind.
        import importlib

        for domain in WALL_CLOCK_DOMAINS:
            assert importlib.import_module(domain)

    def test_module_name_for_matches_repo_convention(self):
        assert module_name_for("src/repro/net/node.py") == "repro.net.node"
        assert module_name_for("src/repro/obs/wall.py") == "repro.obs.wall"
