"""Engine unit tests: taint propagation, class taxonomy, import resolution,
and the v2 two-phase project model (module naming, cross-module symbol
resolution, rule-family selection)."""

from __future__ import annotations

import ast

import pytest

from repro.lint import lint_source
from repro.lint.engine import (
    ModuleInfo,
    ProjectInfo,
    catalog,
    expand_selection,
    family_of,
    module_name_for,
    registered_project_rules,
)
from repro.lint.mutation import find_mutations


def parse_func(source: str) -> ast.FunctionDef:
    tree = ast.parse(source)
    (func,) = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    return func


def mutations(source: str, roots: set[str]) -> list[str]:
    return [desc for _node, desc in find_mutations(parse_func(source), roots)]


class TestTaint:
    def test_direct_store_detected(self) -> None:
        assert mutations("def f(state):\n    state['k'] = 1\n", {"state"})

    def test_copy_breaks_the_alias(self) -> None:
        src = "def f(state):\n    new = dict(state)\n    new['k'] = 1\n"
        assert mutations(src, {"state"}) == []

    def test_tuple_unpack_propagates(self) -> None:
        src = "def f(state):\n    a, b = state\n    a.add(1)\n"
        assert mutations(src, {"state"})

    def test_rebinding_clears_taint(self) -> None:
        src = "def f(state):\n    x = state\n    x = []\n    x.append(1)\n"
        assert mutations(src, {"state"}) == []

    def test_augassign_on_interior(self) -> None:
        assert mutations("def f(state):\n    state['k'] += 1\n", {"state"})

    def test_delete_on_interior(self) -> None:
        assert mutations("def f(state):\n    del state['k']\n", {"state"})

    def test_nested_defs_are_out_of_scope(self) -> None:
        src = "def f(state):\n    def g(state):\n        state['k'] = 1\n    return g\n"
        assert mutations(src, {"state"}) == []

    def test_mutator_inside_conditional(self) -> None:
        src = "def f(state, v):\n    if v:\n        state.add(v)\n    return state\n"
        assert mutations(src, {"state"})


class TestTaxonomy:
    def test_cross_module_spec_suffix_is_matched(self) -> None:
        # `class X(SetSpec)` in another module: matched via the *Spec suffix.
        source = (
            "from repro.specs import SetSpec\n"
            "class BadSet(SetSpec):\n"
            "    def apply(self, state, update):\n"
            "        state.add(1)\n"
            "        return state\n"
        )
        assert {f.code for f in lint_source(source)} == {"UQ002"}

    def test_local_transitive_base_is_matched(self) -> None:
        source = (
            "class UQADT:\n    pass\n"
            "class Middle(UQADT):\n    pass\n"
            "class Leaf(Middle):\n"
            "    def apply(self, state, update):\n"
            "        state['k'] = 1\n"
            "        return state\n"
        )
        assert {f.code for f in lint_source(source)} == {"UQ001"}

    def test_unrelated_class_is_ignored(self) -> None:
        source = (
            "class Cache:\n"
            "    def apply(self, state, update):\n"
            "        state['k'] = 1\n"  # not a UQADT: no purity obligation
            "        return state\n"
        )
        assert lint_source(source) == []


class TestImports:
    def resolve(self, source: str, call: str) -> str | None:
        module = ModuleInfo("<t>", source, ast.parse(source))
        node = ast.parse(call, mode="eval").body
        assert isinstance(node, ast.Call)
        return module.resolve_call(node.func)

    def test_aliased_import(self) -> None:
        assert (
            self.resolve("import numpy as np\n", "np.random.rand()")
            == "numpy.random.rand"
        )

    def test_from_import(self) -> None:
        assert self.resolve("from time import monotonic\n", "monotonic()") == (
            "time.monotonic"
        )

    def test_from_import_asname(self) -> None:
        assert self.resolve(
            "from os import urandom as entropy\n", "entropy(8)"
        ) == "os.urandom"

    def test_unknown_name_resolves_to_itself(self) -> None:
        assert self.resolve("", "helper()") == "helper"


def module_of(path: str, source: str) -> ModuleInfo:
    return ModuleInfo(path, source, ast.parse(source))


class TestModuleNaming:
    def test_src_rooted_path(self) -> None:
        assert module_name_for("src/repro/net/node.py") == "repro.net.node"

    def test_absolute_src_path(self) -> None:
        assert module_name_for("/repo/src/repro/sim/cluster.py") == (
            "repro.sim.cluster"
        )

    def test_init_names_the_package(self) -> None:
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_loose_file_is_its_stem(self) -> None:
        assert module_name_for("tests/lint/fixtures/bad/uq001_state_store.py") == (
            "uq001_state_store"
        )


class TestProjectModel:
    def project(self) -> ProjectInfo:
        return ProjectInfo(
            [
                module_of(
                    "src/app/aio.py",
                    "async def pump():\n    pass\nLIMIT = 3\n",
                ),
                module_of(
                    "src/app/main.py",
                    "from app.aio import pump\nimport app.aio\n",
                ),
            ]
        )

    def test_module_lookup_by_dotted_name(self) -> None:
        assert self.project().module("app.aio") is not None
        assert self.project().module("app.nope") is None

    def test_resolve_function_symbol(self) -> None:
        hit = self.project().resolve_symbol("app.aio.pump")
        assert hit is not None
        module, node = hit
        assert module.name == "app.aio"
        assert isinstance(node, ast.AsyncFunctionDef)

    def test_resolve_data_symbol(self) -> None:
        hit = self.project().resolve_symbol("app.aio.LIMIT")
        assert hit is not None

    def test_unresolvable_symbol_is_none(self) -> None:
        assert self.project().resolve_symbol("app.aio.missing") is None
        assert self.project().resolve_symbol("numpy.random.rand") is None

    def test_import_graph_keeps_internal_edges_only(self) -> None:
        graph = self.project().import_graph()
        assert graph["app.main"] == {"app.aio"}
        assert graph["app.aio"] == set()

    def test_qualified_method_resolution(self) -> None:
        project = ProjectInfo(
            [
                module_of(
                    "src/app/core.py",
                    "class Core:\n    def handle(self, e):\n        return e\n",
                )
            ]
        )
        hit = project.resolve_symbol("app.core.Core.handle")
        assert hit is not None
        assert isinstance(hit[1], ast.FunctionDef)


class TestFamilies:
    def test_family_of_strips_digits(self) -> None:
        assert family_of("ASY301") == "ASY"
        assert family_of("uq001") == "UQ"

    def test_expand_exact_code(self) -> None:
        assert expand_selection(["UQ001"]) == {"UQ001"}

    def test_expand_family_prefix(self) -> None:
        assert expand_selection(["ASY"]) == {
            "ASY301", "ASY302", "ASY303", "ASY304", "ASY305",
        }

    def test_expand_mixed_and_case_insensitive(self) -> None:
        expanded = expand_selection(["efx", " UQ001 "])
        assert "UQ001" in expanded
        assert {"EFX401", "EFX402", "EFX403", "EFX404"} <= expanded

    def test_unknown_entry_raises(self) -> None:
        with pytest.raises(ValueError, match="ZZZ"):
            expand_selection(["ZZZ"])

    def test_catalog_marks_project_rules(self) -> None:
        by_code = {code: is_project for code, _s, is_project in catalog()}
        assert by_code["EFX401"] is True
        assert by_code["ASY302"] is True
        assert by_code["UQ001"] is False
        project_codes = {code for code, _s, _r in registered_project_rules()}
        assert {c for c, p in by_code.items() if p} == project_codes


class TestDeterminismEdges:
    def test_seeded_default_rng_is_clean(self) -> None:
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src) == []

    def test_generator_annotation_is_clean(self) -> None:
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> int:\n"
            "    return int(rng.integers(8))\n"
        )
        assert lint_source(src) == []

    def test_shadowed_id_is_clean(self) -> None:
        src = "def f(events):\n    id = len(events)\n    return id\n"
        # a *rebound* local named id is never a call; only calls are flagged
        assert lint_source(src) == []

    def test_sorted_set_is_clean(self) -> None:
        assert lint_source("order = sorted({3, 1, 2})\n") == []

    def test_set_algebra_feeding_list_is_flagged(self) -> None:
        src = "def f(extra):\n    return list({1, 2} | set(extra))\n"
        assert {f.code for f in lint_source(src)} == {"SIM103"}
