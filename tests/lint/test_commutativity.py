"""UQ006 — the behavioural commutativity cross-check.

The fixture corpus covers the static half (declaration without probes);
these tests exercise the import-and-probe half, which needs real
importable packages: each test writes a small spec package under a tmp
directory, puts it on ``sys.path`` and lints the files on disk.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.lint import lint_paths

_ids = itertools.count()

_LYING_SPEC = '''
from repro.core.adt import UQADT, Update


def push(v):
    return Update("push", (v,))


class LyingStackSpec(UQADT):
    """Append-only stack: push order is the state, nothing commutes."""

    name = "lying-stack"
    commutative_updates = True  # a lie the probe set exposes

    def initial_state(self):
        return ()

    def apply(self, state, update):
        return state + (update.args[0],)

    def observe(self, state, name, args=()):
        return state

    def probe_updates(self):
        return (push(1), push(2))
'''

_HONEST_SPEC = '''
from repro.core.adt import UQADT, Update


def bump(k):
    return Update("bump", (k,))


class HonestCounterSpec(UQADT):
    name = "honest-counter"
    commutative_updates = True

    def initial_state(self):
        return 0

    def apply(self, state, update):
        return state + update.args[0]

    def observe(self, state, name, args=()):
        return state

    def probe_updates(self):
        return (bump(1), bump(3), bump(-2))
'''

_EMPTY_PROBES_SPEC = '''
from repro.core.adt import UQADT


class VacuousSpec(UQADT):
    name = "vacuous"
    commutative_updates = True

    def initial_state(self):
        return 0

    def apply(self, state, update):
        return state

    def observe(self, state, name, args=()):
        return state

    def probe_updates(self):
        return ()
'''


def make_package(tmp_path: Path, monkeypatch, source: str) -> Path:
    """A uniquely named importable package holding ``source``; returns the
    module file's path.  Unique names keep ``importlib``'s module cache
    from bleeding state between tests."""
    name = f"uq006_case_{next(_ids)}"
    pkg = tmp_path / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    module = pkg / "spec_under_test.py"
    module.write_text(source)
    monkeypatch.syspath_prepend(str(tmp_path))
    return module


def uq006_findings(path: Path):
    findings, checked = lint_paths([path], codes={"UQ006"})
    assert checked == 1
    return findings


def test_lying_spec_is_flagged(tmp_path, monkeypatch):
    module = make_package(tmp_path, monkeypatch, _LYING_SPEC)
    (finding,) = uq006_findings(module)
    assert finding.code == "UQ006"
    assert "order-sensitive" in finding.message
    assert "push" in finding.message


def test_honest_spec_is_clean(tmp_path, monkeypatch):
    module = make_package(tmp_path, monkeypatch, _HONEST_SPEC)
    assert uq006_findings(module) == []


def test_empty_probe_set_is_unverifiable(tmp_path, monkeypatch):
    module = make_package(tmp_path, monkeypatch, _EMPTY_PROBES_SPEC)
    (finding,) = uq006_findings(module)
    assert "probe_updates() returns nothing" in finding.message


def test_missing_probes_flagged_even_when_unimportable(tmp_path):
    # No __init__.py, not on sys.path: the static half still fires.
    module = tmp_path / "orphan_spec.py"
    module.write_text(
        "class UQADT:\n    pass\n\n"
        "class OrphanSpec(UQADT):\n"
        "    commutative_updates = True\n"
    )
    (finding,) = uq006_findings(module)
    assert "defines no probe_updates" in finding.message


def test_lie_outside_a_package_is_not_probed(tmp_path):
    # The behavioural half refuses to import a module whose dotted name
    # does not resolve to the linted file; probes are defined, so the
    # static half stays quiet too.  Other rules still see the file.
    module = tmp_path / "free_floating.py"
    module.write_text(_LYING_SPEC)
    assert uq006_findings(module) == []


def test_pragma_suppresses_the_finding(tmp_path, monkeypatch):
    source = _LYING_SPEC.replace(
        "commutative_updates = True  # a lie the probe set exposes",
        "commutative_updates = True  # uqlint: disable=UQ006 -- test double",
    )
    module = make_package(tmp_path, monkeypatch, source)
    assert uq006_findings(module) == []


@pytest.mark.parametrize("rel", ["src/repro/specs", "src/repro/core"])
def test_shipped_tree_passes_uq006(rel):
    repo = Path(__file__).resolve().parents[2]
    findings, checked = lint_paths([repo / rel], codes={"UQ006"})
    assert checked > 0
    assert findings == [], [f.render() for f in findings]
