"""Fixture-driven rule coverage: every rule fires on its bad fixture and
stays silent on the good twin.

The corpus lives in ``tests/lint/fixtures/{bad,good}/``; file names are
``<code>_<slug>.py`` and the two directories are kept in 1:1
correspondence — a structural test asserts the pairing so a new rule
cannot land without both halves.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import catalog, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
BAD = sorted((FIXTURES / "bad").glob("*.py"))
GOOD = sorted((FIXTURES / "good").glob("*.py"))


def expected_code(path: Path) -> str:
    """``uq001_state_store.py`` -> ``UQ001``."""
    return path.stem.split("_", 1)[0].upper()


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_bad_fixture_triggers_its_rule(path: Path) -> None:
    findings = lint_source(path.read_text(), str(path))
    codes = {f.code for f in findings}
    assert expected_code(path) in codes, (
        f"{path.name}: expected {expected_code(path)}, got {sorted(codes)}"
    )


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_bad_fixture_triggers_only_its_rule(path: Path) -> None:
    # Fixtures are minimal repros: cross-rule noise means a rule overlaps.
    findings = lint_source(path.read_text(), str(path))
    codes = {f.code for f in findings}
    assert codes == {expected_code(path)}, (
        f"{path.name}: expected only {expected_code(path)}, got {sorted(codes)}"
    )


@pytest.mark.parametrize("path", GOOD, ids=lambda p: p.stem)
def test_good_twin_is_clean(path: Path) -> None:
    findings = lint_source(path.read_text(), str(path))
    assert findings == [], [f.render() for f in findings]


def test_corpus_covers_every_rule() -> None:
    # catalog() merges per-module and project rules: both kinds need twins.
    rule_codes = {code for code, _summary, _is_project in catalog()}
    bad_codes = {expected_code(p) for p in BAD}
    assert bad_codes == rule_codes, (
        f"missing bad fixtures for {sorted(rule_codes - bad_codes)}; "
        f"stray fixtures for {sorted(bad_codes - rule_codes)}"
    )


def test_every_bad_fixture_has_a_good_twin() -> None:
    assert [p.name for p in BAD] == [p.name for p in GOOD]


def test_bad_fixture_reports_real_locations() -> None:
    # Line numbers must point at the offending statement, not the module.
    path = FIXTURES / "bad" / "uq001_state_store.py"
    source = path.read_text()
    (finding,) = lint_source(source, str(path))
    line = source.splitlines()[finding.line - 1]
    assert "state[" in line
