# uqlint fixture: UQ005 — s0 aliased through an attribute and a module global.

_EMPTY_STATE = []


class UQADT:
    pass


class SharedLogSpec(UQADT):
    name = "shared-log"

    def __init__(self, seed_state):
        self._seed_state = seed_state

    def initial_state(self):
        return self._seed_state  # every replay shares one object

    def apply(self, state, update):
        return state + [update.args[0]]


class GlobalLogSpec(UQADT):
    name = "global-log"

    def initial_state(self):
        return _EMPTY_STATE  # module-level mutable: shared across replays

    def apply(self, state, update):
        return state + [update.args[0]]
