# uqlint fixture: EFX403 — the core event dispatcher misses an event
# type: backends can construct SyncTick, but handle() falls through to
# the TypeError, so anti-entropy silently never runs.

from typing import Union


class UpdateSubmitted:
    pass


class SyncTick:
    pass


Event = Union[UpdateSubmitted, SyncTick]


class ProtocolCore:
    def handle(self, event):
        if isinstance(event, UpdateSubmitted):
            return self._apply(event)
        raise TypeError(f"unknown event: {event!r}")

    def _apply(self, event):
        return event
