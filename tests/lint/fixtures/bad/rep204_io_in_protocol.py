# uqlint fixture: REP204 — protocol code importing the event loop, the
# socket layer and the wall clock.  A core that can do its own I/O no
# longer behaves identically under the simulator and the real transport.

import asyncio
import socket
import time
from datetime import datetime


class EagerProtocolCore(ProtocolCore):  # noqa: F821 - fixture, never run
    """A core that schedules and transmits for itself (all banned)."""

    loop_factory = asyncio.new_event_loop
    address_family = socket.AF_INET
    clock_reference = time.monotonic
    epoch = datetime
