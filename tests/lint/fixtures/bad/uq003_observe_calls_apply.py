# uqlint fixture: UQ003 — observe re-enters the transition function.


class UQADT:
    pass


class PeekingQueueSpec(UQADT):
    name = "peeking-queue"

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state, update):
        return state + (update.args[0],)

    def observe(self, state, name, args=()):
        if name == "after_pop":
            # G must not invoke T: queries are side-effect-free (Def. 1).
            return self.apply(state, args[0])
        return state
