# uqlint fixture: ASY305 — synchronous (thread) locks held across a yield
# point.  Every other coroutine wanting the lock blocks for the full await
# duration — and the loop deadlocks outright if the awaited work needs it.

import threading

_table_lock = threading.Lock()


async def refresh(table, key, fetch):
    with _table_lock:  # taken on the loop thread...
        value = await fetch(key)  # ...and still held across the yield
        table[key] = value


async def publish(lock, payload, send):
    lock.acquire()
    await send(payload)  # explicit acquire/release bracketing the await
    lock.release()
