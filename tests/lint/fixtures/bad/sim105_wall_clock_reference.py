# uqlint fixture: SIM105 — an instrumentation class smuggling a wall-clock
# reference.  No call happens here (so SIM101 stays quiet); the clock is
# captured as a default argument and fires later, at record time.
import time


class LeakyTracer:
    """Stamps records with a deferred wall-clock read."""

    def __init__(self, timer=time.monotonic):
        self.timer = timer
        self.records = []

    def event(self, name):
        self.records.append((name, self.timer))
