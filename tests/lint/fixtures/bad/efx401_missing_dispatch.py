# uqlint fixture: EFX401 — a backend that does not account for the whole
# closed effect set.  Persist is neither dispatched nor recorded as a
# deliberate ignore, so the two backends can silently diverge on it.

from typing import Union


class Send:
    pass


class Broadcast:
    pass


class Persist:
    pass


Effect = Union[Send, Broadcast, Persist]

HANDLED_EFFECTS = (Send, Broadcast)
# Persist is missing from both tuples: the contract is incomplete.


def apply_effects(effects, ship, fanout):
    for eff in effects:
        if isinstance(eff, Send):
            ship(eff)
        elif isinstance(eff, Broadcast):
            fanout(eff)
