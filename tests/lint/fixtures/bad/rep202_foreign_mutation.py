# uqlint fixture: REP202 — hooks mutating delivered (shared) payloads.


class Replica:
    pass


class GrabbyReplica(Replica):
    def __init__(self):
        self.log = []

    def on_message(self, src, payload):
        payload["seen_by"] = src  # the other receivers share this object
        self.log.append(payload)
        return []

    def on_update(self, update):
        update.args.append("local-tag")  # mutates the caller's update
        return [update]
