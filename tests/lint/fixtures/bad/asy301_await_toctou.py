# uqlint fixture: ASY301 — read-modify-write on shared node state torn by
# an await.  The event loop may run any other handler (a peer frame, an
# HTTP request) at the yield point, so the write acts on stale state.

import asyncio


class SessionNode:
    async def rebalance(self, delta):
        backlog = self.pending  # read before the yield point
        await asyncio.sleep(0)  # another handler may mutate self.pending here
        self.pending = backlog + delta  # write based on the stale read
