# uqlint fixture: UQ004 — an update helper that hands back a Query.


class Update:
    def __init__(self, name, args=()):
        self.name, self.args = name, args


class Query:
    def __init__(self, name, args=(), output=None):
        self.name, self.args, self.output = name, args, output


def enable() -> Update:
    return Query("enabled", (), True)  # U and Q are disjoint (Def. 1)


def disable() -> Update:
    return ("disable", ())  # a bare literal is not a symbolic Update
