# uqlint fixture: REP203 — recovery loads the log before the clock (WAL
# order violated: a recovered replica could reuse a pre-crash timestamp).


def restore_replica(replica, snapshot):
    replica.load_log(snapshot["entries"])  # log first ...
    replica.clock.merge(snapshot["clock"])  # ... clock second: wrong order
    return replica
