# uqlint fixture: UQ001 — apply stores into its state argument.
# Never imported; parsed as text by tests/lint/test_fixtures.py.


class UQADT:
    pass


class LeakyMapSpec(UQADT):
    name = "leaky-map"

    def initial_state(self) -> dict:
        return {}

    def apply(self, state, update):
        state[update.args[0]] = update.args[1]  # mutates T's argument
        return state

    def observe(self, state, name, args=()):
        return dict(state)
