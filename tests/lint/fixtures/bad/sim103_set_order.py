# uqlint fixture: SIM103 — ordering decisions built from bare set iteration.


def broadcast_order(extra):
    return list({0, 1, 2} | set(extra))  # hash order becomes send order


def pending_report(pending_ids):
    return ", ".join(set(pending_ids))  # hash order becomes report text


def drain(handlers):
    for handler in set(handlers):  # delivery order follows the hash seed
        handler()


def tags(events):
    return [e.tag for e in {e for e in events}]  # listcomp over a set comp
