# uqlint fixture: UQ002 — apply calls an in-place mutator on the state
# (through an unpacked alias, exercising the taint propagation).


class UQADT:
    pass


class LeakySetSpec(UQADT):
    name = "leaky-set"

    def initial_state(self) -> tuple:
        return (set(), set())

    def apply(self, state, update):
        members, tombstones = state  # aliases the state's interior
        members.add(update.args[0])  # in-place mutation of shared state
        return (members, tombstones)

    def observe(self, state, name, args=()):
        members, _ = state
        return frozenset(members)
