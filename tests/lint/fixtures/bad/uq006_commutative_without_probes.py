# uqlint fixture: UQ006 — a spec declaring commutativity with no probes.
# Never imported; parsed as text by tests/lint/test_fixtures.py.


class UQADT:
    pass


class BlindCounterSpec(UQADT):
    name = "blind-counter"
    commutative_updates = True  # claimed, but nothing to verify it against

    def initial_state(self):
        return 0

    def apply(self, state, update):
        return state + update.args[0]

    def observe(self, state, name, args=()):
        return state
