# uqlint fixture: ASY302 — a coroutine called like a function.  The call
# only builds a coroutine object; the body never runs, and Python merely
# prints a RuntimeWarning at GC time, long after the lost effect mattered.

import asyncio


async def drain(queue):
    while queue:
        queue.pop()
        await asyncio.sleep(0)


def flush_all(queue):
    drain(queue)  # coroutine object built and dropped: nothing drains
