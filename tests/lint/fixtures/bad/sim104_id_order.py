# uqlint fixture: SIM104 — id()-based tie-breaking.


def arbitration_order(updates):
    return sorted(updates, key=lambda u: id(u))  # heap address as tiebreak


def dedupe(events):
    seen = set()
    out = []
    for e in events:
        if id(e) not in seen:  # identity-keyed dedup varies across runs
            seen.add(id(e))
            out.append(e)
    return out
