# uqlint fixture: EFX402 — a contract declaration naming a class that is
# not (or no longer) a member of the closed effect set: the declaration
# is stale and proves nothing about the real union.

from typing import Union


class Send:
    pass


class Broadcast:
    pass


class Flush:  # once an effect; removed from the union long ago
    pass


Effect = Union[Send, Broadcast]

HANDLED_EFFECTS = (Send, Broadcast, Flush)  # Flush is not an Effect member


def apply_effects(effects, ship, fanout):
    for eff in effects:
        if isinstance(eff, Send):
            ship(eff)
        elif isinstance(eff, Broadcast):
            fanout(eff)
