# uqlint fixture: SIM102 — global or unseeded RNGs.

import random

import numpy as np


def pick_replica(n):
    return random.randrange(n)  # stdlib global RNG


def make_rng():
    return np.random.default_rng()  # unseeded: draws OS entropy


def shuffle_schedule(schedule):
    np.random.shuffle(schedule)  # legacy numpy global RNG
    return schedule
