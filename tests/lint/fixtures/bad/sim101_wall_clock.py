# uqlint fixture: SIM101 — wall-clock and ambient-entropy calls.

import os
import time
from datetime import datetime
from time import monotonic


def stamp_event(event):
    return (time.time(), event)  # wall clock in the simulated world


def elapsed(start):
    return monotonic() - start  # from-import resolves too


def audit_line(message):
    return f"{datetime.now()}: {message}"


def fresh_nonce():
    return os.urandom(8)  # ambient entropy breaks seed reproducibility
