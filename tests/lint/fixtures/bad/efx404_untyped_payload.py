# uqlint fixture: EFX404 — a raw payload handed to the protocol core.
# The core speaks typed events only; a bare tuple bypasses the closed
# vocabulary and the two backends stop meaning the same thing by it.

from repro.proto.core import ProtocolCore  # resolved syntactically; never run


def replay(core: ProtocolCore, value):
    core.handle(("update", value))  # raw tuple instead of a typed event
