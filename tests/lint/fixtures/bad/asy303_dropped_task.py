# uqlint fixture: ASY303 — a task created and immediately dropped.  The
# event loop holds only a weak reference to running tasks, so a dropped
# handle can be garbage-collected mid-flight, silently cancelling the
# work it carried (the asyncio docs' own warning).

import asyncio


def kick_off_sync(node):
    asyncio.create_task(node.sync_loop())  # handle dropped: GC may cancel it


def kick_off_flush(node):
    asyncio.ensure_future(node.flush_loop())  # same hazard, older spelling
