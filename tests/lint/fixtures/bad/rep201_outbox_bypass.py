# uqlint fixture: REP201 — a replica reaching around the send API.


class Replica:
    def __init__(self):
        self.outbox = []

    def send_to(self, dst, payload):
        self.outbox.append((dst, payload))


class ChattyReplica(Replica):
    def __init__(self, network):
        super().__init__()
        self.network = network

    def on_update(self, update):
        self.outbox.append((None, update))  # bypasses send_to
        return []

    def on_message(self, src, payload):
        net = self.network
        net.broadcast(payload)  # drives the network object directly
        return []
