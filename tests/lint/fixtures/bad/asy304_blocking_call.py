# uqlint fixture: ASY304 — blocking calls inside async def.  Each one
# stalls the entire event loop: peer frames, sync ticks and HTTP requests
# all stop for the duration.

import time


async def throttle_frames(frames, ship):
    for frame in frames:
        time.sleep(0.01)  # blocks the loop, not just this coroutine
        ship(frame)


async def load_snapshot(path):
    with open(path) as fh:  # synchronous file I/O on the loop thread
        return fh.read()
