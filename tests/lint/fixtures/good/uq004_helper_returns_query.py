# uqlint fixture: good twin of bad/uq004_helper_returns_query.py.


class Update:
    def __init__(self, name, args=()):
        self.name, self.args = name, args


class Query:
    def __init__(self, name, args=(), output=None):
        self.name, self.args, self.output = name, args, output


def enable() -> Update:
    return Update("enable")


def maybe_enable(flag: bool) -> "Update | None":
    if not flag:
        return None  # None is an allowed "no update" result
    return Update("enable")


def enabled(expected: bool) -> Query:
    return Query("enabled", (), bool(expected))  # query helpers return Query
