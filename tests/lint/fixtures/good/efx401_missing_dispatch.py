# uqlint fixture: good twin of bad/efx401_missing_dispatch.py — every
# member of the closed effect set is either dispatched (and listed in
# HANDLED_EFFECTS) or recorded as a deliberate ignore.

from typing import Union


class Send:
    pass


class Broadcast:
    pass


class Persist:
    pass


Effect = Union[Send, Broadcast, Persist]

HANDLED_EFFECTS = (Send, Broadcast)
#: durability is handled out of band by this backend's snapshotter.
IGNORED_EFFECTS = (Persist,)


def apply_effects(effects, ship, fanout):
    for eff in effects:
        if isinstance(eff, Send):
            ship(eff)
        elif isinstance(eff, Broadcast):
            fanout(eff)
