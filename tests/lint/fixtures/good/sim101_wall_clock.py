# uqlint fixture: good twin of bad/sim101_wall_clock.py — logical time and
# seeded entropy only.  Referencing a wall clock to *inject* it is legal;
# only calls are flagged.

import time

import numpy as np


def stamp_event(event, logical_clock):
    return (logical_clock.tick(), event)


def elapsed(start, now):
    return now() - start  # the clock is injected by the caller


def default_budget_clock():
    return time.monotonic  # a reference (the injection point), not a call


def fresh_nonce(rng: np.random.Generator):
    return rng.integers(0, 2**63).item()
