# uqlint fixture: SIM105 (clean) — instrumentation takes virtual-time
# stamps from its caller; the injectable-timer reference lives outside any
# instrumentation class (the sanctioned bench-harness idiom).
import time

# Module-level injectable timer: allowed, it is not inside a Tracer/Registry.
default_timer = time.monotonic


class VirtualTimeTracer:
    """Records whatever timestamp the caller hands in (Cluster.now)."""

    def __init__(self):
        self.records = []

    def event(self, name, ts):
        self.records.append((name, ts))
