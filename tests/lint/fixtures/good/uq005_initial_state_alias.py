# uqlint fixture: good twin of bad/uq005_initial_state_alias.py — fresh or
# immutable s0 values.

_EMPTY_STATE = ()  # immutable module-level constants are not flagged


class UQADT:
    pass


class FreshLogSpec(UQADT):
    name = "fresh-log"

    def __init__(self, seed_state):
        self._seed_state = tuple(seed_state)

    def initial_state(self):
        return tuple(self._seed_state)  # a call constructs a fresh value

    def apply(self, state, update):
        return state + (update.args[0],)


class ConstantLogSpec(UQADT):
    name = "constant-log"

    def initial_state(self):
        return _EMPTY_STATE  # immutable: sharing is harmless

    def apply(self, state, update):
        return state + (update.args[0],)
