# uqlint fixture: good twin of bad/asy304_blocking_call.py — asyncio
# equivalents: await asyncio.sleep for pacing, asyncio.to_thread for file
# I/O (the blocking open() lives in a sync helper run off the loop).

import asyncio


async def throttle_frames(frames, ship):
    for frame in frames:
        await asyncio.sleep(0.01)
        ship(frame)


async def load_snapshot(path):
    return await asyncio.to_thread(_read_file, path)


def _read_file(path):
    with open(path) as fh:
        return fh.read()
