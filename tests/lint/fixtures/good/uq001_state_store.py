# uqlint fixture: good twin of bad/uq001_state_store.py — copy-on-write apply.


class UQADT:
    pass


class CleanMapSpec(UQADT):
    name = "clean-map"

    def initial_state(self) -> dict:
        return {}

    def apply(self, state, update):
        new = dict(state)  # the copy breaks the alias: stores below are fine
        new[update.args[0]] = update.args[1]
        return new

    def observe(self, state, name, args=()):
        return dict(state)
