# uqlint fixture: good twin of bad/sim104_id_order.py — explicit identities.


def arbitration_order(updates):
    # The paper's arbitration: lexicographic (clock, pid) timestamps.
    return sorted(updates, key=lambda u: (u.clock, u.pid))


def dedupe(events):
    seen = set()
    out = []
    for e in events:
        if (e.clock, e.pid) not in seen:
            seen.add((e.clock, e.pid))
            out.append(e)
    return out
