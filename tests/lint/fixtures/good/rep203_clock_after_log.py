# uqlint fixture: good twin of bad/rep203_clock_after_log.py — the Lamport
# clock is a write-ahead cell: restore it before touching the log.


def restore_replica(replica, snapshot):
    replica.clock.merge(snapshot["clock"])  # clock first (no timestamp reuse)
    replica.load_log(snapshot["entries"])
    return replica


def handle_message(replica, clock_value, stamped):
    replica.clock.merge(clock_value)
    replica._insert(stamped)
    return replica
