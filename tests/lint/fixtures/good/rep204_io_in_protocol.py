# uqlint fixture: REP204 good twin — a protocol core extension that stays
# sans-io: pure data in (events), pure data out (effects); the backend
# owns every socket, file and clock.

from dataclasses import dataclass


@dataclass(frozen=True)
class Throttle:
    """A pure description of a pacing decision (the backend applies it)."""

    delay_hint: float


class PacedProtocolCore(ProtocolCore):  # noqa: F821 - fixture, never run
    """Asks the backend for pacing via effects instead of sleeping."""

    def pacing(self) -> Throttle:
        return Throttle(delay_hint=0.5)
