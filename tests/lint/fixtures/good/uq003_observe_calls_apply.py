# uqlint fixture: good twin of bad/uq003_observe_calls_apply.py — observe
# computes the hypothetical view inline instead of re-entering T.  A
# *component delegation* (ProductSpec-style ``other_spec.observe``) is also
# legal and must not be flagged.


class UQADT:
    pass


class CleanQueueSpec(UQADT):
    name = "clean-queue"

    def __init__(self, inner):
        self.inner = inner

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state, update):
        return state + (update.args[0],)

    def observe(self, state, name, args=()):
        if name == "delegated":
            return self.inner.observe(state, name, args)  # delegation is fine
        return state
