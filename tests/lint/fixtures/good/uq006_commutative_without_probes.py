# uqlint fixture: UQ006 good twin — the declaration ships its probe set.
# Never imported; parsed as text by tests/lint/test_fixtures.py.


class UQADT:
    pass


class Update:
    def __init__(self, name, args=()):
        self.name = name
        self.args = args


class ProbedCounterSpec(UQADT):
    name = "probed-counter"
    commutative_updates = True

    def initial_state(self):
        return 0

    def apply(self, state, update):
        return state + update.args[0]

    def probe_updates(self):
        return (Update("inc", (1,)), Update("inc", (2,)))

    def observe(self, state, name, args=()):
        return state
