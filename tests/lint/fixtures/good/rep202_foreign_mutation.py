# uqlint fixture: good twin of bad/rep202_foreign_mutation.py — hooks copy
# before decorating; own state (self.*) may be mutated freely.


class Replica:
    pass


class CarefulReplica(Replica):
    def __init__(self):
        self.log = []

    def on_message(self, src, payload):
        annotated = dict(payload)  # fresh copy: the alias chain is broken
        annotated["seen_by"] = src
        self.log.append(annotated)
        return []

    def on_update(self, update):
        self.log.append(update)  # appending to own state is fine
        return [update]
