# uqlint fixture: good twin of bad/asy301_await_toctou.py — the state is
# re-read after the last yield point before the write (the sanctioned
# re-validation pattern), so the write never acts on stale observations.

import asyncio


class SessionNode:
    async def rebalance(self, delta):
        backlog = self.pending  # provisional read (cheap pre-check)
        if not backlog:
            return
        await asyncio.sleep(0)
        backlog = self.pending  # re-validated: re-read after the await
        self.pending = backlog + delta
