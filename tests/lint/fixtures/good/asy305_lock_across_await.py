# uqlint fixture: good twin of bad/asy305_lock_across_await.py — the
# critical section is entered and left without yielding (awaits happen
# outside the lock), or the explicit acquire is released before the await.

import threading

_table_lock = threading.Lock()


async def refresh(table, key, fetch):
    value = await fetch(key)  # yield first, with no lock held
    with _table_lock:
        table[key] = value  # purely synchronous critical section


async def publish(lock, payload, send):
    lock.acquire()
    frame = encode(payload)  # noqa: F821 - fixture, never run
    lock.release()
    await send(frame)  # the lock is already released at the yield
