# uqlint fixture: good twin of bad/efx404_untyped_payload.py — the call
# site constructs the matching typed event class, keeping both backends
# on the one closed vocabulary.

from repro.proto.core import ProtocolCore  # resolved syntactically; never run
from repro.proto.events import UpdateSubmitted


def replay(core: ProtocolCore, value):
    core.handle(UpdateSubmitted(value))
