# uqlint fixture: good twin of bad/sim103_set_order.py — explicit orders.


def broadcast_order(extra):
    return sorted({0, 1, 2} | set(extra))  # sorted() makes the order explicit


def pending_report(pending_ids):
    return ", ".join(sorted(set(pending_ids)))


def drain(handlers):
    for handler in sorted(set(handlers), key=repr):
        handler()


def member_count(events):
    # Order-insensitive consumption of a set is fine: no ordered artifact.
    return len({e for e in events})


def as_set(events):
    return frozenset({e for e in events})  # set-to-set stays unordered
