# uqlint fixture: good twin of bad/uq002_mutator_call.py — pure set union.


class UQADT:
    pass


class CleanSetSpec(UQADT):
    name = "clean-set"

    def initial_state(self) -> tuple:
        return (frozenset(), frozenset())

    def apply(self, state, update):
        members, tombstones = state
        return (members | {update.args[0]}, tombstones)

    def observe(self, state, name, args=()):
        members, _ = state
        return frozenset(members)
