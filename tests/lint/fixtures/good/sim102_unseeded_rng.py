# uqlint fixture: good twin of bad/sim102_unseeded_rng.py — every RNG is a
# seeded, injected np.random.Generator.

import numpy as np


def pick_replica(n, rng: np.random.Generator):
    return int(rng.integers(n))


def make_rng(seed):
    return np.random.default_rng(seed)  # seeded construction is the API


def shuffle_schedule(schedule, rng: np.random.Generator):
    permutation = rng.permutation(len(schedule))
    return [schedule[i] for i in permutation]
