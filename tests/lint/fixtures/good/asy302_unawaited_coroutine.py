# uqlint fixture: good twin of bad/asy302_unawaited_coroutine.py — the
# coroutine is awaited, or scheduled as a task the caller retains.

import asyncio


async def drain(queue):
    while queue:
        queue.pop()
        await asyncio.sleep(0)


async def flush_all(queue):
    await drain(queue)


def schedule_flush(tasks, queue):
    task = asyncio.create_task(drain(queue))
    tasks.add(task)
    task.add_done_callback(tasks.discard)
