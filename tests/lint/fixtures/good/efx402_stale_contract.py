# uqlint fixture: good twin of bad/efx402_stale_contract.py — the contract
# names exactly the members of the closed effect set, with no overlap
# between the handled and ignored tuples.

from typing import Union


class Send:
    pass


class Broadcast:
    pass


Effect = Union[Send, Broadcast]

HANDLED_EFFECTS = (Send, Broadcast)
IGNORED_EFFECTS = ()


def apply_effects(effects, ship, fanout):
    for eff in effects:
        if isinstance(eff, Send):
            ship(eff)
        elif isinstance(eff, Broadcast):
            fanout(eff)
