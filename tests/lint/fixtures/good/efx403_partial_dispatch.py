# uqlint fixture: good twin of bad/efx403_partial_dispatch.py — handle()
# has a dispatch arm for every member of the closed event set.

from typing import Union


class UpdateSubmitted:
    pass


class SyncTick:
    pass


Event = Union[UpdateSubmitted, SyncTick]


class ProtocolCore:
    def handle(self, event):
        if isinstance(event, UpdateSubmitted):
            return self._apply(event)
        if isinstance(event, SyncTick):
            return self._sync(event)
        raise TypeError(f"unknown event: {event!r}")

    def _apply(self, event):
        return event

    def _sync(self, event):
        return event
