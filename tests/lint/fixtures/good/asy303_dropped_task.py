# uqlint fixture: good twin of bad/asy303_dropped_task.py — every created
# task is retained in a collection (and discarded on completion), so the
# event loop's weak reference is never the only one.

import asyncio


def kick_off_sync(node, tasks):
    task = asyncio.create_task(node.sync_loop())
    tasks.add(task)
    task.add_done_callback(tasks.discard)


def kick_off_flush(node, tasks):
    task = asyncio.ensure_future(node.flush_loop())
    tasks.add(task)
    task.add_done_callback(tasks.discard)
