# uqlint fixture: good twin of bad/rep201_outbox_bypass.py — every effect
# flows through the send API or the returned payload list.


class Replica:
    def __init__(self):
        self.outbox = []

    def send_to(self, dst, payload):
        # the send API itself is the one legal owner of the outbox
        self.outbox.append((dst, payload))


class PoliteReplica(Replica):
    def on_update(self, update):
        return [update]  # returned payloads are broadcast by the runtime

    def on_message(self, src, payload):
        self.send_to(src, ("ack", payload))  # point-to-point via the API
        return []
