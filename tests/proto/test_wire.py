"""The payload codec: canonical bytes, total round-trips.

The differential test compares witness streams *byte for byte* across
backends, so the codec's determinism (equal values -> identical bytes)
is itself a tested invariant, not an implementation detail.
"""

from __future__ import annotations

import pytest

from repro.core.adt import Query, Update
from repro.proto.wire import decode_payload, encode_payload

ROUND_TRIPS = [
    None,
    True,
    42,
    2.5,
    "text",
    (1, 0, Update("insert", (7,))),                 # a wire triple
    ("sync-req", {"floors": (0, 2), "bits": 17}),   # a digest-ish tuple
    frozenset({3, 1, 2}),
    {("k", 1): [Update("put", ("k", 1))], 0: None},
    Query("read", (), frozenset({1})),
]


@pytest.mark.parametrize("value", ROUND_TRIPS, ids=lambda v: repr(v)[:40])
def test_round_trip(value):
    assert decode_payload(encode_payload(value)) == value


def test_equal_sets_encode_to_identical_bytes():
    # construction order must not leak into the bytes
    a = frozenset(range(100))
    b = frozenset(reversed(range(100)))
    assert encode_payload(a) == encode_payload(b)


def test_equal_dicts_encode_to_identical_bytes():
    a = {"x": 1, "y": 2}
    b = {"y": 2, "x": 1}
    assert encode_payload(a) == encode_payload(b)


def test_bytes_are_compact_json():
    data = encode_payload((1, 0, Update("insert", (7,))))
    assert b" " not in data  # canonical separators, no pretty-printing
    assert data.decode("utf-8")  # valid utf-8


def test_unencodable_values_raise():
    with pytest.raises(TypeError):
        encode_payload(object())
