"""ProtocolCore: events in, effects out, no semantics added.

These tests pin the sans-io contract — effect shapes, ordering, the
zero-allocation hot path, and crash-recovery through the durable image —
without any backend in the loop: that is the point of the layer.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.proto import (
    Broadcast,
    CrashRecovered,
    MessageReceived,
    Persist,
    ProtocolCore,
    QueryAnswered,
    QuerySubmitted,
    SyncTick,
    Timer,
    UpdateSubmitted,
)
from repro.proto.effects import ONLY_PERSIST_MESSAGE
from repro.specs.set_spec import SetSpec, insert


def make_core(pid: int = 0, n: int = 3) -> ProtocolCore:
    spec = SetSpec()
    return ProtocolCore(pid, n, lambda p, k: UniversalReplica(p, k, spec))


def make_gc_core(pid: int = 0, n: int = 3) -> ProtocolCore:
    spec = SetSpec()
    return ProtocolCore(
        pid, n, lambda p, k: GarbageCollectedReplica(p, k, spec)
    )


class TestSubmit:
    def test_update_broadcasts_then_persists(self):
        core = make_core()
        effects = core.submit(insert(1))
        kinds = [type(e) for e in effects]
        assert kinds == [Broadcast, Persist]
        assert effects[-1].reason == "update"

    def test_broadcast_carries_the_wire_triple(self):
        core = make_core()
        (bcast, _) = core.submit(insert(7))
        clock, pid, update = bcast.payload
        assert (clock, pid) == (1, 0)
        assert update == insert(7)

    def test_state_advances_locally(self):
        core = make_core()
        core.submit(insert(1))
        core.submit(insert(2))
        assert core.local_state() == {1, 2}


class TestDeliver:
    def test_quiescent_delivery_returns_the_shared_tuple(self):
        a, b = make_core(0), make_core(1)
        (bcast, _) = a.submit(insert(1))
        effects = b.deliver(0, bcast.payload)
        # identity, not equality: the hot path must not allocate
        assert effects is ONLY_PERSIST_MESSAGE
        assert b.local_state() == {1}

    def test_handle_and_deliver_agree(self):
        a = make_core(0)
        (bcast, _) = a.submit(insert(1))
        b1, b2 = make_core(1), make_core(1)
        assert b1.handle(MessageReceived(0, bcast.payload)) is ONLY_PERSIST_MESSAGE
        assert b2.deliver(0, bcast.payload) is ONLY_PERSIST_MESSAGE
        assert b1.local_state() == b2.local_state() == {1}


class TestQuery:
    def test_query_answers_without_effects(self):
        core = make_core()
        core.submit(insert(4))
        output, effects = core.query("read")
        assert output == {4}
        assert effects == ()

    def test_handle_prepends_query_answered(self):
        core = make_core()
        core.submit(insert(4))
        effects = core.handle(QuerySubmitted("contains", (4,)))
        assert isinstance(effects[0], QueryAnswered)
        assert effects[0].output is True


class TestSyncTick:
    def test_sync_emits_one_broadcast(self):
        core = make_core()
        effects = core.sync_tick()
        assert [type(e) for e in effects] == [Broadcast]

    def test_handle_dispatches_sync_tick(self):
        core = make_core()
        assert [type(e) for e in core.handle(SyncTick())] == [Broadcast]

    def test_heartbeat_unsupported_is_a_noop(self):
        core = make_core()  # plain UniversalReplica: no heartbeat dialect
        assert core.sync_tick("heartbeat") == ()

    def test_heartbeat_on_gc_replica_broadcasts(self):
        core = make_gc_core()
        assert [type(e) for e in core.sync_tick("heartbeat")] == [Broadcast]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_core().sync_tick("bogus")


class TestRecover:
    def test_roundtrip_restores_log_and_clock(self):
        core = make_core()
        core.submit(insert(1))
        core.submit(insert(2))
        snapshot = core.snapshot()
        effects = core.recover(snapshot)
        assert core.local_state() == {1, 2}
        assert core.replica.clock.value == 2
        kinds = [type(e) for e in effects]
        # rejoin sync broadcast first, persist, then the timer request
        assert kinds == [Broadcast, Persist, Timer]
        assert effects[1].reason == "recover"

    def test_fsync_truncation_loses_tail_but_not_clock(self):
        core = make_core()
        core.submit(insert(1))
        core.submit(insert(2))
        core.recover(core.snapshot(fsync_point=1))
        assert core.local_state() == {1}
        assert core.replica.clock.value == 2  # write-ahead clock survives

    def test_recover_rebuilds_a_fresh_replica(self):
        core = make_core()
        core.submit(insert(1))
        old = core.replica
        core.handle(CrashRecovered(core.snapshot()))
        assert core.replica is not old

    def test_handle_update_event_matches_submit(self):
        c1, c2 = make_core(), make_core()
        e1 = c1.handle(UpdateSubmitted(insert(9)))
        e2 = c2.submit(insert(9))
        assert e1 == e2


class TestIntrospection:
    def test_sync_capable(self):
        assert make_core().sync_capable

    def test_witness_meta_has_timestamp(self):
        core = make_core()
        core.submit(insert(1))
        assert core.witness_meta()["timestamp"] == (1, 0)

    def test_log_length_tracks_submissions(self):
        core = make_core()
        assert core.log_length == 0
        core.submit(insert(1))
        assert core.log_length == 1

    def test_handle_rejects_non_events(self):
        with pytest.raises(TypeError):
            make_core().handle("not an event")
