"""Public-API surface guard: every exported name exists and is documented.

Keeps ``__all__`` lists honest as the library grows: a renamed class or a
dropped docstring on an exported item fails here, not in a user's import.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.core",
    "repro.core.criteria",
    "repro.specs",
    "repro.sim",
    "repro.crdt",
    "repro.objects",
    "repro.analysis",
    "repro.tools",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_exported_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented exports {undocumented}"


def test_version_is_set():
    import repro

    assert repro.__version__


def test_spec_registry_is_complete():
    """Every concrete UQADT in repro.specs appears in ALL_SPECS (products
    excepted — they are constructors over other specs)."""
    import repro.specs as specs
    from repro.core.adt import UQADT

    concrete = {
        obj
        for name in specs.__all__
        for obj in [getattr(specs, name)]
        if inspect.isclass(obj) and issubclass(obj, UQADT)
        and obj.__name__ != "ProductSpec"
    }
    assert concrete == set(specs.ALL_SPECS)


def test_strategy_registry_matches_docs():
    from repro.objects import STRATEGIES

    assert set(STRATEGIES) == {
        "universal", "checkpoint", "gc", "undo", "commutative", "fifo", "causal"
    }


def test_criteria_registry_names():
    from repro.core.criteria import CRITERIA

    assert set(CRITERIA) == {"EC", "SEC", "UC", "SUC", "PC", "SC", "IW", "CC"}
    for name, checker in CRITERIA.items():
        assert checker.name in (name, {"IW": "IW-SEC"}.get(name, name))
