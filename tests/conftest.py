"""Shared fixtures: specifications and the paper's example histories."""

from __future__ import annotations

import pytest

from repro.paper import fig_1a, fig_1b, fig_1c, fig_1d, fig_2
from repro.specs import (
    CounterSpec,
    FlagSpec,
    GSetSpec,
    LogSpec,
    MapSpec,
    MaxRegisterSpec,
    MemorySpec,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    StackSpec,
)


@pytest.fixture
def set_spec() -> SetSpec:
    return SetSpec()


@pytest.fixture
def counter_spec() -> CounterSpec:
    return CounterSpec()


@pytest.fixture
def register_spec() -> RegisterSpec:
    return RegisterSpec()


@pytest.fixture
def memory_spec() -> MemorySpec:
    return MemorySpec()


@pytest.fixture
def log_spec() -> LogSpec:
    return LogSpec()


@pytest.fixture
def queue_spec() -> QueueSpec:
    return QueueSpec()


@pytest.fixture
def stack_spec() -> StackSpec:
    return StackSpec()


@pytest.fixture
def map_spec() -> MapSpec:
    return MapSpec()


@pytest.fixture
def gset_spec() -> GSetSpec:
    return GSetSpec()


@pytest.fixture
def flag_spec() -> FlagSpec:
    return FlagSpec()


@pytest.fixture
def max_register_spec() -> MaxRegisterSpec:
    return MaxRegisterSpec()


@pytest.fixture
def h_fig_1a():
    return fig_1a()


@pytest.fixture
def h_fig_1b():
    return fig_1b()


@pytest.fixture
def h_fig_1c():
    return fig_1c()


@pytest.fixture
def h_fig_1d():
    return fig_1d()


@pytest.fixture
def h_fig_2():
    return fig_2()
