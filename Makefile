# Developer entry points.  Everything is plain pytest underneath.

PYTHON ?= python

.PHONY: install test bench artifacts examples all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

artifacts:
	$(PYTHON) benchmarks/run_all.py

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

all: test bench artifacts

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
