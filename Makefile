# Developer entry points.  Everything is plain pytest underneath.

PYTHON ?= python

.PHONY: install test bench artifacts examples lint serve loadtest soak all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Static analysis: the project's own protocol linter always runs; ruff and
# mypy run when installed (the CI static-analysis job installs both).
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
		ruff format --check src/repro/lint; \
	else echo "ruff not installed; skipping (CI runs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else echo "mypy not installed; skipping (CI runs it)"; fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

artifacts:
	$(PYTHON) benchmarks/run_all.py

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

# One asyncio replica with an HTTP object front-end on localhost:8080
# (see README "Serving an object over HTTP" for the multi-replica form).
serve:
	PYTHONPATH=src $(PYTHON) -m repro.net serve --object set \
		--pid 0 --peers 127.0.0.1:9000 --http-port 8080

# Closed-loop load against a fresh in-process 3-replica asyncio cluster;
# exits non-zero below 500 sustained ops/sec (the CI floor).
loadtest:
	PYTHONPATH=src $(PYTHON) benchmarks/load_harness.py --check

# Soak mode: same harness with a per-second time-series (ops/sec, window
# p50/p99, convergence-lag p99) in a validated repro-net-report-v1 doc.
soak:
	PYTHONPATH=src $(PYTHON) benchmarks/load_harness.py --soak --check \
		--duration 10 --out net_soak.json

all: test bench artifacts

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
