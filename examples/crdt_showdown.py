#!/usr/bin/env python
"""The Section VI case study, live: six replicated sets, one scenario.

Every implementation runs the paper's Fig. 1b conflict — two isolated
processes doing I(1)·D(2) and I(2)·D(1) — plus a re-insertion scenario,
under identical schedules.  The output is the semantic comparison the
paper's case study argues in prose:

* all the eventually consistent sets converge, but each to a different
  state, per its conflict policy;
* only the universal construction (and LWW, which uses the same stamps)
  lands on a state some linearization of the updates explains.

Run: ``python examples/crdt_showdown.py``
"""

from repro.analysis import format_table
from repro.core.linearization import update_linearization_states
from repro.core.universal import UniversalReplica
from repro.crdt import SET_CRDTS
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()

SYSTEMS = {"UC-Set (Alg. 1)": lambda p, n: UniversalReplica(p, n, SPEC)}
SYSTEMS.update(
    {name: (lambda cls: lambda p, n: cls(p, n))(cls)
     for name, cls in SET_CRDTS.items() if name != "G-Set"}
)


def fig_1b(factory):
    c = Cluster(2, factory, seed=0)
    c.partition([[0], [1]])
    c.update(0, S.insert(1))
    c.update(0, S.delete(2))
    c.update(1, S.insert(2))
    c.update(1, S.delete(1))
    c.heal()
    c.run()
    return c


def reinsertion(factory):
    """Delete then re-insert — the 2P-Set's kryptonite."""
    c = Cluster(2, factory, seed=0)
    c.update(0, S.insert("x"))
    c.run()
    c.update(1, S.delete("x"))
    c.run()
    c.update(0, S.insert("x"))
    c.run()
    return c


def main() -> None:
    print("scenario A — Fig. 1b: concurrent I(1).D(2) || I(2).D(1)")
    reference = fig_1b(SYSTEMS["UC-Set (Alg. 1)"])
    h = reference.trace.to_history()
    allowed = update_linearization_states(h.restrict(h.updates), SPEC)
    print(f"states reachable by SOME update linearization: "
          f"{[sorted(s) for s in sorted(allowed, key=sorted)]}\n")

    rows = []
    for name, factory in SYSTEMS.items():
        c = fig_1b(factory)
        state = c.query(0, "read")
        agreed = state == c.query(1, "read")
        rows.append([name, sorted(state), agreed, SPEC.canonical(state) in allowed])
    print(format_table(
        ["system", "converged state", "replicas agree", "linearization state"],
        rows,
    ))
    print()

    print("scenario B — delete then re-insert")
    rows = []
    for name, factory in SYSTEMS.items():
        c = reinsertion(factory)
        state = c.query(1, "read")
        rows.append([name, sorted(state), "x" in state])
    print(format_table(["system", "final state", "re-insert worked"], rows))
    print("\n(the 2P-Set's tombstone makes deletion permanent; every other")
    print(" system resurrects x because the re-insert is causally last)")


if __name__ == "__main__":
    main()
