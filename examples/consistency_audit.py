#!/usr/bin/env python
"""Consistency auditing: classify histories against the criterion lattice.

The library's checkers decide, for any small distributed history, which
of the paper's criteria admit it (Definitions 5-9).  This example:

1. reclassifies the paper's own Figure 1 and Figure 2 histories and
   prints the matrix from the caption;
2. audits a history captured from a live simulated run (the trace of a
   deliberately misbehaving implementation) and shows the checkers
   catching the violation;
3. shows the polynomial witness path used for big traces.

Run: ``python examples/consistency_audit.py``
"""

from repro.analysis import classification_matrix
from repro.core.criteria import classify
from repro.core.criteria.witness import verify_suc_witness
from repro.core.history import History
from repro.core.universal import UniversalReplica
from repro.paper import FIG1_BUILDERS, fig_2
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def audit_buggy_implementation() -> History:
    """A 'replica' that drops remote deletions — build its history."""
    # p0 inserts and deletes 7; p1 receives only the insert and reads {7}
    # forever: classify what its users observe.
    return History.from_processes(
        [
            [S.insert(7), S.delete(7), (S.read(set()), True)],
            [(S.read({7}), True)],
        ]
    )


def main() -> None:
    print("== 1. the paper's Figure 1 and Figure 2 ==")
    table, _ = classification_matrix(
        {name: b() for name, b in FIG1_BUILDERS.items()} | {"fig2": fig_2()},
        SPEC,
    )
    print(table)
    print()

    print("== 2. auditing a buggy implementation ==")
    history = audit_buggy_implementation()
    print(history.pretty())
    results = classify(history, SPEC)
    for name, res in results.items():
        verdict = "OK" if res else f"VIOLATED ({res.reason})"
        print(f"  {name:4s}: {verdict}")
    print("  diagnosis: the histories are not even eventually consistent —")
    print("  dropping the delete left the replicas on different states.\n")

    print("== 3. the witness path for real traces ==")
    c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC), seed=3)
    for i in range(30):
        c.update(i % 3, S.insert(i % 5) if i % 2 else S.delete(i % 5))
        if i % 7 == 0:
            c.query((i + 1) % 3, "read")
    c.run()
    c.query(0, "read")
    trace_history = c.trace.to_history()
    witness = c.trace.suc_witness(trace_history)
    res = verify_suc_witness(trace_history, SPEC, witness)
    print(f"  {len(trace_history)} events; exhaustive SUC search would be")
    print("  astronomically large — the witness check is polynomial:")
    print(f"  verify_suc_witness -> {'PASS' if res else 'FAIL: ' + res.reason}")


if __name__ == "__main__":
    main()
