#!/usr/bin/env python
"""A replicated task queue — and why the paper splits pop in two.

The UQ-ADT class excludes operations that both mutate and return (a
classical ``dequeue``): "such operations can always be separated into a
query and an update ... which is not a problem as, in weak consistency
models, it is impossible to ensure atomicity anyway."

This example makes that remark concrete.  Workers on three sites pull
jobs from a replicated FIFO queue using the split protocol
(``front`` query + ``pop`` update):

* while messages are in flight, two workers can ``front`` the SAME job —
  the split turns would-be atomicity violations into *visible* duplicate
  claims (at-least-once execution), the standard contract of distributed
  queues;
* after convergence, everyone agrees on exactly which jobs are left —
  update consistency makes the duplication transient and quantifiable.

We count duplicate claims at several network latencies: the worse the
network, the more duplicates — an atomic dequeue would instead have had
to *block* for a round-trip (the Attiya–Welch cost the paper refuses).

Run: ``python examples/task_queue.py``
"""

from repro.analysis import format_table, update_consistent_convergence
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import QueueSpec
from repro.specs import queue_spec as Q

N_WORKERS = 3
N_JOBS = 12
SPEC = QueueSpec()


def run_shift(mean_latency: float, seed: int = 1):
    cluster = Cluster(
        N_WORKERS, lambda p, n: UniversalReplica(p, n, SPEC),
        latency=ExponentialLatency(mean_latency), seed=seed,
    )
    # The dispatcher (worker 0) enqueues the backlog.
    for j in range(N_JOBS):
        cluster.update(0, Q.enqueue(f"job-{j}"))
    cluster.run()

    claims: list[tuple[int, str]] = []
    # Workers take turns: look at the front, claim it, pop it.  Between
    # turns the network gets a fixed slice of real time to propagate pops
    # — how much of a pop arrives in that slice depends on the latency.
    for round_ in range(2 * N_JOBS):
        worker = round_ % N_WORKERS
        job = cluster.query(worker, "front")
        if job != Q.EMPTY:
            claims.append((worker, job))
            cluster.update(worker, Q.pop())
        cluster.run_until(cluster.now + 1.0)
    cluster.run()

    executed = [job for _, job in claims]
    duplicates = len(executed) - len(set(executed))
    lost = N_JOBS - len(set(executed))
    ok, final, _ = update_consistent_convergence(cluster, SPEC)
    return duplicates, len(set(executed)), lost, ok, final


def main() -> None:
    print(f"{N_JOBS} jobs, {N_WORKERS} workers, split front/pop protocol\n")
    rows = []
    for latency in (0.01, 2.0, 8.0):
        duplicates, distinct, lost, ok, final = run_shift(latency)
        rows.append([latency, distinct, duplicates, lost, ok, len(final)])
    print(format_table(
        ["mean latency", "distinct jobs run", "duplicate claims",
         "jobs lost", "queue converged", "jobs left"],
        rows,
    ))
    print()
    print("reading the table:")
    print(" * on a fast network the split protocol behaves like a real")
    print("   queue: every job runs exactly once;")
    print(" * as latency grows, workers front the same job before each")
    print("   other's pop arrives (duplicate claims), and blind pops land")
    print("   on jobs nobody looked at (lost jobs) — the atomicity the")
    print("   split gave up, made visible and measurable;")
    print(" * the queue itself always converges to the agreed state: the")
    print("   anomalies are client-visible, not replica divergence.")
    print()
    print("an atomic dequeue would need consensus-grade synchrony — the")
    print("paper's whole point is that wait-free systems cannot have it,")
    print("so the API must make the weakness explicit.")


if __name__ == "__main__":
    main()
