#!/usr/bin/env python
"""A plug-based decentralized social network on the replicated graph.

The paper was produced inside the DeSceNt project ("Plug-based
Decentralized Social Network"): every member hosts their own plug
computer; the social graph is replicated across all plugs with no server.
This example builds exactly that object — an undirected friendship graph
replicated with the universal construction — and runs the awkward
scenarios such a network actually faces:

* concurrent friend-request acceptance vs account deletion;
* a member's home plug going offline mid-gossip (crash);
* a transatlantic partition during which both sides keep editing.

Throughout, reads are instant (wait-free availability) and, whenever the
network quiesces, every plug agrees on ONE graph that is the result of an
agreed linearization of everyone's actions — with the structural
invariant (edges only between existing members) holding by construction.

Run: ``python examples/social_network.py``
"""

from repro.analysis import update_consistent_convergence
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import GraphSpec
from repro.specs import graph_spec as G

PLUGS = ["amy's plug", "ben's plug", "cat's plug", "dan's plug"]
SPEC = GraphSpec()


def show_graph(cluster, pid: int, label: str) -> None:
    vs = cluster.query(pid, "vertices")
    es = cluster.query(pid, "edges")
    friends = ", ".join(sorted("-".join(sorted(e)) for e in es)) or "(none)"
    print(f"{label}: members={sorted(vs)} friendships={friends}")


def main() -> None:
    cluster = Cluster(
        4, lambda p, n: UniversalReplica(p, n, SPEC),
        latency=ExponentialLatency(2.0), seed=42,
    )

    print("== everyone signs up from their own plug ==")
    for pid, who in enumerate(["amy", "ben", "cat", "dan"]):
        cluster.update(pid, G.add_vertex(who))
    cluster.run()
    show_graph(cluster, 0, "amy's view")
    print()

    print("== friendships form ==")
    cluster.update(0, G.add_edge("amy", "ben"))
    cluster.update(2, G.add_edge("cat", "dan"))
    cluster.update(1, G.add_edge("ben", "cat"))
    cluster.run()
    show_graph(cluster, 3, "dan's view")
    print(f"is the network connected? "
          f"{cluster.query(0, 'component_count') == 1}\n")

    print("== the race: cat accepts amy's request while ben deletes cat ==")
    cluster.partition([[0, 1], [2, 3]])
    cluster.update(2, G.add_edge("amy", "cat"))   # cat's side
    cluster.update(1, G.remove_vertex("cat"))     # ben's side (moderation!)
    show_graph(cluster, 1, "ben's side (partitioned)")
    show_graph(cluster, 2, "cat's side (partitioned)")
    cluster.heal()
    cluster.run()
    ok, state, _ = update_consistent_convergence(cluster, SPEC)
    print("after the partition heals:")
    show_graph(cluster, 0, "everyone's view")
    vs, es = state
    print(f"converged to an agreed linearization: {ok}")
    print(f"structural invariant (edges only between members): "
          f"{all(w in vs for e in es for w in e)}\n")

    print("== dan's plug dies; the network keeps working ==")
    cluster.crash(3)
    cluster.update(0, G.add_vertex("eve"))
    cluster.update(1, G.add_edge("amy", "eve"))
    cluster.run()
    show_graph(cluster, 0, "amy's view (dan offline)")
    survivors = cluster.alive()
    views = {pid: cluster.query(pid, "vertices") for pid in survivors}
    print(f"surviving plugs agree: {len(set(views.values())) == 1}")
    print(f"reachability amy->eve: {cluster.query(0, 'reachable', ('amy', 'eve'))}")


if __name__ == "__main__":
    main()
