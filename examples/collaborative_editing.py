#!/usr/bin/env python
"""Collaborative editing: the shared log under partitions.

The introduction's motivating domain ([Sun et al.], [Li et al.]): multiple
authors append to a shared document while the network does its worst.
Update consistency gives exactly the guarantee collaborative editors call
*intention preservation*: the converged document is one agreed
interleaving of the authors' edits that preserves each author's own order.

The script contrasts three implementations on the same edit trace:

* Algorithm 1 (update consistent)  — converges to one document;
* the undo-optimized variant       — same document, cheaper repositioning;
* causal apply (causally consistent) — the Proposition 1 failure mode:
  concurrent edits land in different orders and replicas keep different
  documents forever.

Run: ``python examples/collaborative_editing.py``
"""

from repro.core.undo import UndoReplica
from repro.core.universal import UniversalReplica
from repro.objects.causal import CausalApplyReplica
from repro.sim import Cluster
from repro.specs import LogSpec
from repro.specs import log_spec as L

AUTHORS = ["amy", "ben", "cat"]


def edit_session(cluster) -> None:
    """Three authors write; a partition splits amy from ben+cat mid-way."""
    amy, ben, cat = 0, 1, 2
    cluster.update(amy, L.append("amy: Title"))
    cluster.run()

    cluster.partition([[amy], [ben, cat]])
    cluster.update(amy, L.append("amy: intro paragraph"))
    cluster.update(ben, L.append("ben: results table"))
    cluster.run()  # intra-partition traffic
    cluster.update(cat, L.append("cat: fixes ben's table"))
    cluster.update(amy, L.append("amy: conclusion"))
    cluster.heal()
    cluster.run()


def show(name: str, cluster) -> bool:
    docs = {pid: cluster.query(pid, "read") for pid in range(3)}
    agreed = len({d for d in docs.values()}) == 1
    print(f"--- {name} ---")
    if agreed:
        print("all replicas hold the same document:")
        for i, line in enumerate(docs[0]):
            print(f"  {i}. {line}")
    else:
        for pid, doc in docs.items():
            print(f"  {AUTHORS[pid]}'s replica: {list(doc)}")
        print("  => the replicas NEVER reconcile (quiescent network)")
    print()
    return agreed


def check_intentions(doc) -> bool:
    """Each author's own edits appear in the order they made them."""
    for author in AUTHORS:
        own = [line for line in doc if line.startswith(author)]
        indices = [doc.index(line) for line in own]
        if indices != sorted(indices):
            return False
    return True


def main() -> None:
    spec = LogSpec()

    uc = Cluster(3, lambda p, n: UniversalReplica(p, n, spec), seed=7)
    edit_session(uc)
    assert show("Algorithm 1 (update consistent)", uc)
    doc = uc.query(0, "read")
    print(f"intention preservation (each author's own order kept): "
          f"{check_intentions(doc)}\n")

    undo = Cluster(3, lambda p, n: UndoReplica(p, n, spec), seed=7)
    edit_session(undo)
    assert show("undo-optimized (Karsenty-Beaudouin-Lafon)", undo)
    assert undo.query(0, "read") == doc, "optimizations must not change semantics"
    print(f"undo/redo steps spent repositioning late edits: "
          f"{sum(r.undone_redone for r in undo.replicas)}\n")

    causal = Cluster(3, lambda p, n: CausalApplyReplica(p, n, spec), seed=7)
    edit_session(causal)
    agreed = show("causal apply-on-receipt (the Proposition 1 trap)", causal)
    if not agreed:
        print("causal consistency orders only causally related edits; the")
        print("partition made amy's and ben's edits concurrent, and no")
        print("arbitration exists — eventual convergence is lost, exactly")
        print("as Proposition 1 predicts for wait-free causal systems.")


if __name__ == "__main__":
    main()
