#!/usr/bin/env python
"""A Dynamo-style replicated key-value store on Algorithm 2.

The paper cites Amazon's Dynamo as the motivating production system for
weak consistency.  This example builds a 5-node KV store out of the
update-consistent shared memory (Algorithm 2: O(1) reads and writes, one
broadcast per write) and walks it through Dynamo's war stories:

* concurrent writes to the same key during a partition — after healing,
  every node agrees on ONE value (last-writer-wins by the agreed
  timestamp order), where Dynamo's MV-register would have surfaced a
  conflict set to the client;
* node crashes mid-traffic — the survivors keep serving reads and writes
  with zero downtime (wait-freedom) and still converge;
* read-your-writes at every node for its own clients.

Run: ``python examples/replicated_kv_store.py``
"""

from repro.crdt import MVRegisterReplica
from repro.objects import make_memory
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import register as R

N = 5


def main() -> None:
    cluster, nodes = make_memory(N, latency=ExponentialLatency(3.0), seed=11)

    print("== normal operation ==")
    nodes[0].write("cart:alice", ["book"])
    nodes[0].write("cart:bob", ["phone"])
    cluster.run()
    print(f"node 3 reads cart:alice -> {nodes[3].read('cart:alice')}")
    print(f"node 4 reads cart:bob   -> {nodes[4].read('cart:bob')}\n")

    print("== partition: two datacenters write the same key ==")
    cluster.partition([[0, 1], [2, 3, 4]])
    nodes[0].write("cart:alice", ["book", "lamp"])      # DC-1
    nodes[2].write("cart:alice", ["book", "headset"])   # DC-2
    cluster.run()
    print(f"DC-1 view: {nodes[1].read('cart:alice')}")
    print(f"DC-2 view: {nodes[4].read('cart:alice')}")
    cluster.heal()
    cluster.run()
    winner = nodes[0].read("cart:alice")
    assert all(nodes[i].read("cart:alice") == winner for i in range(N))
    print(f"after healing, ALL nodes agree: {winner}")
    print("(update consistency arbitrates; compare Dynamo's MV-register below)\n")

    print("== the MV-register alternative (Dynamo's actual choice) ==")
    mv = Cluster(2, lambda p, n: MVRegisterReplica(p, n), seed=1)
    mv.partition([[0], [1]])
    mv.update(0, R.write(("book", "lamp")))
    mv.update(1, R.write(("book", "headset")))
    mv.heal()
    mv.run()
    conflict = mv.query(0, "read")
    print(f"MV-register read returns the conflict set: {sorted(conflict)}")
    print("(eventually consistent, but the *client* must merge — the")
    print(" under-specification update consistency removes)\n")

    print("== crash tolerance ==")
    cluster.crash(1)
    cluster.crash(2)
    nodes[0].write("orders:999", "shipped")
    nodes[4].write("orders:999", "delivered")
    cluster.run()
    survivors = [0, 3, 4]
    values = {i: nodes[i].read("orders:999") for i in survivors}
    print(f"2 of {N} nodes crashed; survivors answer instantly: {values}")
    assert len(set(values.values())) == 1
    print("survivors agree — wait-freedom tolerated the crashes\n")

    print("== per-node cost ==")
    replica = cluster.replicas[0]
    print(f"node 0 stores {replica.register_count} register slots "
          f"(one per live key, regardless of write count)")


if __name__ == "__main__":
    main()
