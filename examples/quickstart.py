#!/usr/bin/env python
"""Quickstart: a replicated set on three wait-free processes.

Demonstrates the core loop of the library:

1. build a replicated object (Algorithm 1 under the hood) on a simulated
   asynchronous network;
2. issue updates and queries — every operation completes locally
   (wait-free), so reads can be stale while messages are in flight;
3. let the adversary deliver everything and watch all replicas converge
   to a state explained by ONE agreed linearization of the updates
   (update consistency);
4. verify the run's strong-update-consistency witness (Proposition 4).

Run: ``python examples/quickstart.py``
"""

from repro.analysis import collect_message_stats, update_consistent_convergence
from repro.core.criteria.witness import verify_suc_witness
from repro.objects import make_replicated
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec


def main() -> None:
    spec = SetSpec()
    cluster, (alice, bob, carol) = make_replicated(
        spec, n=3, latency=ExponentialLatency(5.0), seed=2015
    )

    print("== wait-free updates ==")
    alice.insert("apple")
    alice.insert("cherry")
    bob.insert("banana")
    carol.delete("apple")  # concurrent with alice's insert!
    print(f"alice reads (before delivery): {sorted(alice.read())}")
    print(f"bob   reads (before delivery): {sorted(bob.read())}")
    print(f"carol reads (before delivery): {sorted(carol.read())}")
    print("(stale, divergent reads are allowed — that is the price of")
    print(" availability; Attiya-Welch says strong consistency would cost")
    print(" a network round-trip per operation)\n")

    print("== the adversary delivers everything ==")
    steps = cluster.run()
    print(f"{steps} messages delivered")
    for name, handle in (("alice", alice), ("bob", bob), ("carol", carol)):
        print(f"{name} reads: {sorted(handle.read())}")

    ok, expected, _ = update_consistent_convergence(cluster, spec)
    print(f"\nconverged to the agreed linearization's state: {ok}")
    print(f"that state: {sorted(expected)}")
    print("(the concurrent insert('apple') / delete('apple') conflict was")
    print(" arbitrated by the Lamport timestamp order all replicas share)\n")

    print("== certify strong update consistency (Proposition 4) ==")
    history = cluster.trace.to_history()
    witness = cluster.trace.suc_witness(history)
    result = verify_suc_witness(history, spec, witness)
    print(f"witness verification: {'PASS' if result else 'FAIL: ' + result.reason}")

    stats = collect_message_stats(cluster)
    print(
        f"\nnetwork cost: {stats.messages_sent} messages for "
        f"{stats.updates} updates on {stats.processes} processes "
        f"(exactly one broadcast per update: {stats.broadcast_optimal()}); "
        f"largest timestamp: {stats.max_timestamp_bits} bits"
    )


if __name__ == "__main__":
    main()
