#!/usr/bin/env python
"""Model-checking a replicated object: every schedule, not just some.

Testing samples schedules; the paper's claims quantify over all of them.
For small scripts the library can *enumerate* the complete schedule space
(`repro.sim.explore`) and check a property in every leaf — small-scope
model checking.

This example exhaustively verifies the Fig. 1b conflict (concurrent
I(1)·D(2) ‖ I(2)·D(1)) plus a harder 3-process script:

* the universal construction converges in EVERY schedule, always to a
  state some linearization of the updates explains;
* the FIFO (pipelined) baseline diverges in most schedules — Prop. 1's
  mechanism is structural, not bad luck;
* as a bonus, the explorer counts how many distinct outcomes the
  adversary can force (update consistency pins the *shape* of the result,
  not one specific state).

Run: ``python examples/model_checking.py``
"""

from collections import Counter

from repro.core.adt import _canonical
from repro.core.history import History
from repro.core.linearization import update_linearization_states
from repro.core.universal import UniversalReplica
from repro.objects.pipelined import FifoApplyReplica
from repro.sim.explore import explore_outcomes
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()

FIG_1B_SCRIPT = [
    (0, S.insert(1)),
    (0, S.delete(2)),
    (1, S.insert(2)),
    (1, S.delete(1)),
]


def check(name, factory, script, fifo=False):
    leaves, explorer = explore_outcomes(2, factory, script, fifo=fifo)
    outcomes = Counter(_canonical(leaf.states[0]) if leaf.converged else "DIVERGED"
                       for leaf in leaves)
    print(f"{name}: {len(leaves)} schedule classes "
          f"({explorer.states_pruned} pruned by memoization)")
    for outcome, count in sorted(outcomes.items(), key=lambda kv: -kv[1]):
        shown = sorted(outcome) if isinstance(outcome, frozenset) else outcome
        print(f"   {count:4d} x -> {shown}")
    return leaves, outcomes


def main() -> None:
    print("== Fig. 1b conflict, exhaustively ==")
    h = History.from_processes(
        [[S.insert(1), S.delete(2)], [S.insert(2), S.delete(1)]]
    )
    allowed = update_linearization_states(h, SPEC)
    print(f"states a linearization of the updates can reach: "
          f"{sorted(sorted(s) for s in allowed)}\n")

    leaves, outcomes = check(
        "Algorithm 1",
        lambda p, n: UniversalReplica(p, n, SPEC, track_witness=False),
        FIG_1B_SCRIPT,
    )
    assert all(leaf.converged for leaf in leaves)
    assert all(o in allowed for o in outcomes)
    print("   => converged in EVERY schedule, always inside the allowed set\n")

    leaves, outcomes = check(
        "FIFO apply (pipelined baseline)",
        lambda p, n: FifoApplyReplica(p, n, SPEC, record_applied=False),
        FIG_1B_SCRIPT,
        fifo=True,
    )
    diverged = outcomes.get("DIVERGED", 0)
    print(f"   => diverged in {diverged} of {sum(outcomes.values())} "
          f"schedule classes — Proposition 1 is structural\n")

    print("== a 3-process script, exhaustively ==")
    script3 = [(0, S.insert(1)), (1, S.delete(1)), (2, S.insert(2))]
    leaves, explorer = explore_outcomes(
        3, lambda p, n: UniversalReplica(p, n, SPEC, track_witness=False),
        script3, max_leaves=500_000,
    )
    assert all(leaf.converged for leaf in leaves)
    print(f"Algorithm 1, 3 processes: {len(leaves)} schedule classes, "
          f"all converged ({explorer.states_pruned} pruned)")


if __name__ == "__main__":
    main()
