"""FLT-REC — fault recovery: crash→recover→converge under adversarial channels.

Section VII-A assumes crash-stop processes over reliable channels; the
broadcast is *best-effort*, so a crash mid-broadcast (or a lossy channel)
breaks eventual delivery and with it convergence.  This bench regenerates
the table behind that claim and its repair: for each network model
(reliable / lossy / duplicating) and each relay setting, a replica is
crashed mid-broadcast, recovered from its durable log, and the network
healed — the convergence watchdog then reports whether (and when) the
cluster re-agreed.

Shape asserted: with ``relay=True`` (uniform reliable broadcast) plus
anti-entropy every scenario converges; with ``relay=False`` the lossy
scenario demonstrably does not.
"""

from __future__ import annotations

from repro.analysis import ConvergenceWatchdog, format_table
from repro.core.universal import UniversalReplica
from repro.sim import Cluster, DuplicatingNetwork, LossyNetwork, Network
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
N = 4
OPS = 24
SEED = 2

SCENARIOS = [
    ("reliable", Network, {}),
    ("lossy", LossyNetwork, {"drop_probability": 0.2}),
    ("duplicating", DuplicatingNetwork, {"duplicate_probability": 0.3}),
]


def run_scenario(network_cls, network_kwargs, *, relay):
    c = Cluster(
        N,
        lambda p, n: UniversalReplica(p, n, SPEC, relay=relay,
                                      track_witness=False),
        seed=SEED, network_cls=network_cls, network_kwargs=network_kwargs,
    )
    for i in range(OPS // 2):
        c.update(i % N, S.insert(i))
    c.partition([[0, 1], [2, 3]])
    c.update(0, S.insert(100))           # parked toward the far side
    c.crash(0, drop_outgoing=True)       # mid-broadcast crash, copies lost
    for i in range(OPS // 2, OPS):
        c.update(i % N if i % N != 0 else 1, S.insert(i))
    c.run()
    c.recover(0)                         # rejoin from the durable log
    c.heal()
    report = ConvergenceWatchdog(c).watch()
    if relay and report.flagged:
        # The relay configuration also gets the anti-entropy repair pass —
        # together they model the uniform-reliable-broadcast upgrade.  The
        # baseline (relay=False) is left as the paper's best-effort
        # broadcast, so the table shows what the assumption buys.
        c.anti_entropy(rounds=8)
        report = ConvergenceWatchdog(c).watch()
    return c, report


def full_grid():
    rows = []
    for name, cls, kwargs in SCENARIOS:
        for relay in (False, True):
            _, report = run_scenario(cls, kwargs, relay=relay)
            rows.append((name, relay, report))
    return rows


def test_crash_recovery_convergence(benchmark, save_result):
    rows = benchmark(full_grid)

    table = [
        [name, "on" if relay else "off",
         "yes" if r.converged else "NO",
         f"{r.time_to_agreement:.2f}" if r.time_to_agreement is not None else "-",
         r.steps, max(r.final_divergence.values(), default=0)]
        for name, relay, r in rows
    ]
    save_result(
        "fault_recovery",
        format_table(
            ["network", "relay", "converged", "t_agree", "deliveries",
             "max log divergence"],
            table,
            title="crash→recover→converge under adversarial channels "
                  f"(n={N}, {OPS} updates, seed={SEED})",
        ),
    )

    by_key = {(name, relay): r for name, relay, r in rows}
    # With relay + anti-entropy, every channel model re-converges after
    # the crash/recover cycle — the acceptance shape.
    for name, _, _ in SCENARIOS:
        r = by_key[(name, True)]
        assert r.converged and r.quiescent, (name, r.summary())
        assert max(r.final_divergence.values(), default=0) == 0
    # Best-effort broadcast over a lossy channel does not: the paper's
    # reliable-channel assumption is load-bearing.
    lossy_off = by_key[("lossy", False)]
    assert not lossy_off.converged, lossy_off.summary()
    assert max(lossy_off.final_divergence.values()) > 0
