#!/usr/bin/env python
"""Regenerate every paper artifact without the timing harness.

Imports each bench module, runs its core computation once, and prints the
tables to stdout (they are also saved under ``benchmarks/results/``).
Alongside the human-readable tables it writes
``benchmarks/results/BENCH_universal.json`` — one metric dict per bench,
sourced from each run's :class:`repro.obs.metrics.MetricsRegistry` — so CI
and notebooks can diff runs without parsing tables.

Run: ``python benchmarks/run_all.py``
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys
import time
from typing import Any, Callable

HERE = pathlib.Path(__file__).parent
RESULTS = HERE / "results"

#: The one sanctioned wall-clock in the repo: a *reference*, held so tests
#: (and ``main(timer=...)``) can inject a fake; the simulation itself runs
#: entirely on virtual time and never touches it.
DEFAULT_TIMER = time.perf_counter


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, HERE / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def save(name: str, text: str) -> None:
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / f"{name}.txt").write_text(text + "\n")
    print(text)
    print()


def save_json(name: str, doc: Any) -> None:
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / name).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"[machine-readable artifact: benchmarks/results/{name}]")
    print()


def main(timer: Callable[[], float] | None = None) -> None:
    from repro.analysis import format_table

    timer = timer if timer is not None else DEFAULT_TIMER
    #: bench name -> flat metric dict, written to BENCH_universal.json.
    universal: dict[str, dict[str, Any]] = {}

    print("=" * 72)
    print("FIG1 — criterion matrix")
    print("=" * 72)
    m = load("bench_fig1_classification")
    table, _ = m.classify_all()
    save("fig1_classification", table)

    print("=" * 72)
    print("FIG2 — PC but not EC")
    print("=" * 72)
    m = load("bench_fig2_pc_not_ec")
    h, pc, ec = m.classify_fig2()
    rows = [["PC", bool(pc)], ["EC", bool(ec)]]
    lines = [format_table(["criterion", "holds"], rows, title="Fig. 2 gadget")]
    for chain, lin in pc.witness["chain_linearizations"].items():
        pid = chain[0].pid
        lines.append(
            f"w{pid + 1} = " + " . ".join(str(e.label) for e in lin) + " . (ω suffix)"
        )
    save("fig2_pc_not_ec", "\n".join(lines))

    print("=" * 72)
    print("PROP1 — the wait-free dichotomy")
    print("=" * 72)
    m = load("bench_prop1_impossibility")
    for kind in ("fifo", "universal"):
        first, final = m.run_gadget(kind)
        rows = [
            ["first read p0", first[0]], ["first read p1", first[1]],
            ["final read p0", final[0]], ["final read p1", final[1]],
            ["converged", final[0] == final[1]],
        ]
        save(f"prop1_{kind}", format_table(
            ["observable", "value"], rows,
            title=f"Proposition 1 gadget — {kind} implementation"))

    print("=" * 72)
    print("PROP2 — the lattice over random histories")
    print("=" * 72)
    m = load("bench_prop2_lattice")
    combos, violations = m.classify_corpus()
    rows = [["+".join(k) if k else "(none)", c]
            for k, c in sorted(combos.items(), key=lambda kv: -kv[1])]
    save("prop2_lattice", format_table(
        ["criteria satisfied", "histories"], rows,
        title=f"{m.CORPUS_SIZE} random histories, {violations} implication violations"))

    print("=" * 72)
    print("PROP3 — OR-set vs UC-set on the Fig. 1b conflict")
    print("=" * 72)
    m = load("bench_prop3_insert_wins")
    for kind in ("or-set", "uc-set"):
        reads, uc, iw, cc = m.run_case(kind)
        rows = [["converged state", reads[0]],
                ["update consistent", bool(uc)],
                ["insert-wins SEC", bool(iw)],
                ["cache consistent", bool(cc)]]
        save(f"prop3_{kind}", format_table(
            ["property", "value"], rows, title=f"Fig. 1b scenario — {kind}"))

    print("=" * 72)
    print("PROP4 — Algorithm 1 witnesses verify")
    print("=" * 72)
    m = load("bench_prop4_alg1_suc")
    for n in (2, 4, 8):
        h, result = m.run_and_verify(n)
        rows = [["processes", n], ["events", len(h.events)],
                ["witness verified", bool(result)]]
        save(f"prop4_n{n}", format_table(
            ["metric", "value"], rows, title=f"Proposition 4, n={n}"))

    print("=" * 72)
    print("ALG1-PERF — replay cost per query")
    print("=" * 72)
    m = load("bench_alg1_replay_cost")
    for kind in m.FACTORIES:
        rows = [[size, m.replay_cost(kind, size)] for size in m.SIZES]
        save(f"alg1_replay_{kind}", format_table(
            ["log length", "updates replayed by one query"], rows,
            title=f"query replay cost — {kind}"))
        universal[f"alg1_replay_{kind}"] = m.build_quiescent(
            kind, m.SIZES[0]).metrics.flat()

    print("=" * 72)
    print("THROUGHPUT — sustained replay hot path (VII-C, all variants)")
    print("=" * 72)
    m = load("bench_throughput")
    measurements = {kind: m.measure(kind, timer) for kind in m.VARIANTS}
    save("throughput", m.results_table(measurements))
    for kind, result in measurements.items():
        universal[f"throughput_{kind}"] = {
            **result["cluster"].metrics.flat(),
            "ops_per_sec": result["ops_per_sec"],
            "query_p50_us": result["query_p50_us"],
            "query_p99_us": result["query_p99_us"],
            "replayed_per_query": result["replayed_per_query"],
        }

    print("=" * 72)
    print("ALG2-PERF — O(1) memory vs the generic construction")
    print("=" * 72)
    m = load("bench_alg2_memory")
    for kind in ("alg1", "alg2"):
        rows = []
        for size in m.SIZES:
            c = m.build(kind, size)
            r0 = c.replicas[0]
            before = getattr(r0, "replayed_updates", 0)
            c.query(0, "read", (0,))
            replayed = getattr(r0, "replayed_updates", 0) - before
            resident = r0.register_count if kind == "alg2" else len(r0.updates)
            rows.append([size, replayed, resident])
        save(f"alg2_memory_{kind}", format_table(
            ["writes", "replayed per read", "resident entries"], rows,
            title=f"shared memory — {kind}"))

    print("=" * 72)
    print("MSG — message complexity")
    print("=" * 72)
    m = load("bench_message_complexity")
    import math

    from repro.analysis import collect_message_stats
    rows = []
    for n, ops in m.SWEEP:
        c = m.measure_cluster(n, ops)
        st = collect_message_stats(c)
        bound = math.log2(max(st.updates * n, 2)) + math.log2(n) + 2
        rows.append([n, ops, st.messages_sent, f"{st.sends_per_update:.0f}",
                     st.max_timestamp_bits, f"{bound:.1f}"])
        universal[f"message_complexity_n{n}_ops{ops}"] = c.metrics.flat()
    save("message_complexity", format_table(
        ["n", "updates", "msgs sent", "sends/update", "max ts bits", "log bound"],
        rows, title="one broadcast per update; timestamps grow logarithmically"))

    print("=" * 72)
    print("SEC6 — the CRDT case study")
    print("=" * 72)
    m = load("bench_crdt_case_study")
    results = m.run_corpus()
    rows = [[name, f"{r['converged']}/{m.RUNS}", f"{r['linearizable']}/{m.RUNS}",
             r["lost"]] for name, r in results.items()]
    save("crdt_case_study", format_table(
        ["system", "converged", "linearizable state", "ops silently lost"],
        rows, title="set case study"))

    print("=" * 72)
    print("AW — the cost of atomicity (ABD vs Algorithm 2)")
    print("=" * 72)
    m = load("bench_attiya_welch")
    rows = []
    for latency in m.LATENCIES:
        rows.append([latency, f"{m.abd_mean_response(latency):.2f}",
                     f"{m.uc_mean_response(latency):.2f}"])
    save("attiya_welch", format_table(
        ["mean latency", "ABD response", "UC-memory response"], rows,
        title="operation response time: atomic register vs Algorithm 2"))

    print("=" * 72)
    print("ABL-GC / ABL-CONV / ABL-GOSSIP / ABL-BATCH — ablations")
    print("=" * 72)
    m = load("bench_ablation_gc")
    _, gc_series = m.run_with_log_series("gc")
    _, naive_series = m.run_with_log_series("naive")
    rows = [[ops, nl, gl] for (ops, nl), (_, gl) in zip(naive_series, gc_series)]
    save("ablation_gc", format_table(
        ["updates issued", "naive log", "gc log"], rows,
        title="stable-prefix GC bounds the update log"))

    m = load("bench_ablation_convergence")
    rows = [[lat, 0.0, f"{m.convergence_time(4, lat):.2f}"] for lat in m.LATENCIES]
    save("ablation_convergence_latency", format_table(
        ["mean latency", "op response time", "convergence time"], rows,
        title="wait-free ops vs convergence, n=4"))
    rows = [[n, f"{m.convergence_time(n, 2.0):.2f}"] for n in m.SCALES]
    save("ablation_convergence_scale", format_table(
        ["processes", "convergence time"], rows,
        title="convergence vs scale, mean latency 2.0"))

    m = load("bench_ablation_gossip")
    _, bits_op, stale_op = m.run_op_based()
    rows = [["op-based (1 bcast/update)", len(bits_op), sum(bits_op) // 8,
             f"{sum(stale_op) / len(stale_op):.1f}"]]
    for period in m.PERIODS:
        _, bits_sb, stale_sb = m.run_state_based(period)
        rows.append([f"state-based, gossip every {period}", len(bits_sb),
                     sum(bits_sb) // 8, f"{sum(stale_sb) / len(stale_sb):.1f}"])
    save("ablation_gossip", format_table(
        ["system", "messages", "total bytes", "avg staleness"], rows,
        title="op-based vs state-based replication"))

    m = load("bench_ablation_batch")
    for name in m.SPECS:
        spec = m.SPECS[name]()
        updates = m.make_updates(name)
        t0 = timer()
        m.loop_fold(spec, updates)
        loop_s = timer() - t0
        t0 = timer()
        spec.apply_batch(spec.initial_state(), updates)
        batch_s = timer() - t0
        save(f"ablation_batch_{name}", format_table(
            ["fold", "seconds"],
            [["per-update apply", f"{loop_s:.4f}"],
             ["apply_batch", f"{batch_s:.4f}"],
             ["speedup", f"{loop_s / batch_s:.1f}x" if batch_s else "inf"]],
            title=f"replay fold, {m.LOG_LEN} updates — {name}"))

    print("=" * 72)
    print("SYNC — anti-entropy request size: v1 known-set vs v2 digest")
    print("=" * 72)
    m = load("bench_sync_scalability")
    c, series = m.run_payload_series()
    rows = [[ops, v1, v2] for ops, v1, v2 in series]
    save("sync_scalability", format_table(
        ["updates issued", "v1 request bits", "v2 request bits"], rows,
        title="anti-entropy request size: known-set (v1) vs digest (v2)"))
    universal["sync_scalability"] = c.metrics.flat()
    c, pages = m.run_paged_repair()
    save("sync_pages", format_table(
        ["page", "entries"], [[i, p] for i, p in enumerate(pages)],
        title=f"sync-resp pages during crash repair (bound {m.PAGE_SIZE})"))
    universal["sync_paged_repair"] = c.metrics.flat()

    print("=" * 72)
    print("FAULT — crash→recover→converge under adversarial channels")
    print("=" * 72)
    m = load("bench_fault_recovery")
    rows = []
    for name, cls, kwargs in m.SCENARIOS:
        for relay in (False, True):
            c, r = m.run_scenario(cls, kwargs, relay=relay)
            rows.append([
                name, "on" if relay else "off",
                "yes" if r.converged else "NO",
                f"{r.time_to_agreement:.2f}" if r.time_to_agreement is not None
                else "-",
                r.steps, max(r.final_divergence.values(), default=0),
            ])
            if relay:
                universal[f"fault_recovery_{name}"] = c.metrics.flat()
    save("fault_recovery", format_table(
        ["network", "relay", "converged", "t_agree", "deliveries",
         "max log divergence"],
        rows,
        title="crash→recover→converge under adversarial channels "
              f"(n={m.N}, {m.OPS} updates, seed={m.SEED})"))

    print("=" * 72)
    print("STOR — storage engine: journal appends vs full-image rewrites")
    print("=" * 72)
    m = load("bench_storage")
    wc = m.write_cost()
    save("storage_write_cost", format_table(
        ["updates", "journal B/flush", "snapshot B/flush"],
        [[i, jb, sb] for (i, jb), (_, sb) in zip(
            wc["journal_bytes_per_flush"], wc["snapshot_bytes_per_flush"])],
        title="bytes written per flush: incremental journal vs "
              f"full-image rewrite ({m.WRITE_OPS} updates)"))
    universal["storage_write_cost"] = {
        k: wc[k] for k in ("journal_first", "journal_last",
                           "snapshot_first", "snapshot_last")
    }
    rec = m.recovery_scale()
    save("storage_recovery", format_table(
        ["metric", "value"],
        [[k, rec[k]] for k in sorted(rec)],
        title=f"recovery from a {rec['ops']}-update journal "
              "(digest chain verified end to end)"))
    universal["storage_recovery"] = rec

    print("=" * 72)
    print("OBS — traced chaos run, machine-readable report")
    print("=" * 72)
    from repro.obs.report import run_report
    from repro.obs.scenario import chaos_scenario

    cluster = chaos_scenario(seed=0)
    doc = run_report(cluster)
    save("obs_chaos", format_table(
        ["metric", "value"],
        [["converged", doc["convergence"]["converged"]],
         ["time to agreement", doc["convergence"]["time_to_agreement"]],
         ["messages sent", doc["messages"]["sent"]],
         ["messages lost", doc["messages"]["lost"]],
         ["recoveries", doc["cluster"]["recoveries"]],
         ["total replayed", doc["replay"]["total_replayed"]],
         ["trace records", doc["trace"]["records"]]],
        title="chaos scenario (crash + recover + anti-entropy, lossy net)"))
    save_json("run_report.json", doc)
    universal["obs_chaos"] = cluster.metrics.flat()

    print("=" * 72)
    print("NET — asyncio backend under simulated users (load harness)")
    print("=" * 72)
    m = load("load_harness")
    net = m.run_load(users=30, duration=1.0, ramp=0.5)
    s = net["summary"]
    save("net_load", format_table(
        ["metric", "value"],
        [["users", net["config"]["users"]],
         ["replicas", net["config"]["replicas"]],
         ["ops", s["ops"]],
         ["ops/sec", s["ops_per_sec"]],
         ["p50 latency (ms)", s["p50_ms"]],
         ["p99 latency (ms)", s["p99_ms"]],
         ["conv lag p99 (ms)", s["convergence_lag_p99_ms"]],
         ["errors", s["errors"]],
         ["converged", s["converged"]]],
        title="HTTP front-end, closed-loop users, ramped arrival"))
    universal["net_load"] = {
        **net["metrics"],
        "ops_per_sec": s["ops_per_sec"],
        "p50_ms": s["p50_ms"],
        "p99_ms": s["p99_ms"],
        "convergence_lag_p99_ms": s["convergence_lag_p99_ms"],
        "errors": s["errors"],
        "converged": bool(s["converged"]),
    }

    print("=" * 72)
    print("NET-SOAK — wall-clock time-series (ops/sec, latency, conv lag)")
    print("=" * 72)
    from repro.obs.report import validate_net_report

    soak = m.run_load(users=30, duration=3.0, ramp=0.5, soak=True)
    problems = validate_net_report(soak)
    if problems:
        raise RuntimeError(f"net soak report invalid: {problems}")
    ss = soak["summary"]
    save("net_soak", format_table(
        ["t", "ops/sec", "p50 ms", "p99 ms", "conv lag p99 ms", "task errs"],
        [[row["t"], row["ops_per_sec"], row["p50_ms"], row["p99_ms"],
          row["convergence_lag_p99_ms"], row["task_errors"]]
         for row in soak["series"]],
        title=f"soak: {ss['ops']} ops, p99 {ss['p99_ms']} ms, "
              f"conv-lag p99 {ss['convergence_lag_p99_ms']} ms, "
              f"converged={ss['converged']}"))
    save_json("net_soak_report.json", soak)
    universal["net_soak"] = {
        **soak["metrics"],
        "ops_per_sec": ss["ops_per_sec"],
        "p50_ms": ss["p50_ms"],
        "p99_ms": ss["p99_ms"],
        "convergence_lag_p50_ms": ss["convergence_lag_p50_ms"],
        "convergence_lag_p99_ms": ss["convergence_lag_p99_ms"],
        "task_errors": ss["task_errors"],
        "errors": ss["errors"],
        "converged": bool(ss["converged"]),
        "series_windows": len(soak["series"]),
    }

    save_json("BENCH_universal.json", {
        "format": "repro-bench-metrics-v1",
        "benches": universal,
    })
    print("all artifacts regenerated under benchmarks/results/")


def cli(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", default=None, metavar="PREFIX",
        help="cProfile the whole run; writes PREFIX.pstats and "
             "PREFIX.collapsed (flamegraph.pl / speedscope input)")
    args = parser.parse_args(argv)
    from repro.obs.profiling import profiled

    with profiled(args.profile):
        main()
    return 0


if __name__ == "__main__":
    sys.exit(cli())
