"""SYNC — anti-entropy v2 digests keep sync requests O(n + gaps).

The v1 handshake shipped ``frozenset(known_uids)`` — every update id the
replica had ever seen — so one sync request cost O(total updates) bits
and grew without bound under Section VII-C's "old messages can be garbage
collected" regime.  The v2 digest (per-author completeness floors from
the ``heard`` vector + a small exception set) costs O(n_procs + gaps)
regardless of history length.

Series regenerated: sync-request payload bits vs operations issued, v1
(reconstructed from the issued-update ids — exactly what the known set
held at quiescence) against v2 (the live ``sync_request`` wire payload).
Shape asserted: v1 grows linearly across 100→800 ops while v2 stays flat,
and — via a traced repair round — every sync-resp page respects the
configured ``sync_page_size`` bound.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.analysis.metrics import payload_size_bits
from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.sync import SYNC_REQ
from repro.obs.tracer import SimTracer
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
CHECKPOINTS = (100, 200, 400, 800)
PROCS = 3
PAGE_SIZE = 8


def _build_cluster(tracer=None):
    kwargs = {"tracer": tracer} if tracer is not None else {}
    return Cluster(
        PROCS,
        lambda p, n: GarbageCollectedReplica(
            p, n, SPEC, gc_interval=16, track_witness=False,
            sync_page_size=PAGE_SIZE,
        ),
        fifo=True,
        seed=7,
        **kwargs,
    )


def _heartbeat_round(c: Cluster) -> None:
    for pid in range(c.n):
        c.network.broadcast(pid, c.replicas[pid].heartbeat(), c.now)
    c.run()


def run_payload_series():
    """[(ops, v1 request bits, v2 request bits)] at each checkpoint."""
    c = _build_cluster()
    issued_uids: list[tuple[int, int]] = []
    series = []
    ops = 0
    for target in CHECKPOINTS:
        while ops < target:
            pid = ops % PROCS
            c.update(pid, S.insert(ops % 9) if ops % 2 else S.delete(ops % 9))
            # on_update stamps with the post-tick clock: record the uid the
            # v1 known set would have accumulated.
            issued_uids.append((c.replicas[pid].clock.value, pid))
            ops += 1
            if ops % 4 == 0:
                c.run()
        c.run()
        # Two heartbeat rounds advance every heard column past the issued
        # traffic so the GC floor (and hence the digest floor) catches up.
        _heartbeat_round(c)
        _heartbeat_round(c)
        for r in c.replicas:
            r.collect_garbage()
        v1_payload = (SYNC_REQ, 0, frozenset(issued_uids))
        v2_payload = c.replicas[0].sync_request()
        series.append(
            (target, payload_size_bits(v1_payload), payload_size_bits(v2_payload))
        )
    return c, series


def run_paged_repair():
    """A traced crash/recover repair round; returns (cluster, page sizes).

    Replica 2 is crashed (its inbound traffic dropped) while the others
    issue updates, then recovers from its complete durable log — so the
    recovery sync round must ship it everything it missed while down, in
    pages, each below the configured bound.
    """
    tracer = SimTracer()
    c = _build_cluster(tracer=tracer)
    for i in range(30):
        c.update(i % PROCS, S.insert(i % 9))
        if i % 4 == 0:
            c.run()
    c.run()
    _heartbeat_round(c)
    c.crash(2)
    for i in range(30):
        c.update(i % 2, S.insert((i + 3) % 9))
    c.run()
    c.recover(2)  # the whole log survived: a pure paged repair
    c.run()
    c.anti_entropy(rounds=3)
    pages = [
        int(rec.attrs["entries"])
        for rec in tracer.records()
        if rec.name == "sync.page"
    ]
    return c, pages


def test_sync_request_stays_flat(benchmark, save_result):
    c, series = benchmark(run_payload_series)

    rows = [[ops, v1, v2] for ops, v1, v2 in series]
    save_result(
        "sync_scalability",
        format_table(
            ["updates issued", "v1 request bits", "v2 request bits"], rows,
            title="anti-entropy request size: known-set (v1) vs digest (v2)",
        ),
    )

    first, last = series[0], series[-1]
    # v1 is linear in the history: 8x the ops, ~8x the bits.
    assert last[1] >= 4 * first[1], series
    # v2 tracks n_procs + stragglers, not the history: flat across the sweep.
    assert last[2] <= 2 * first[2], series
    assert last[2] < last[1] / 10, series


def test_sync_pages_bounded(save_result):
    c, pages = run_paged_repair()

    save_result(
        "sync_pages",
        format_table(
            ["page", "entries"], [[i, p] for i, p in enumerate(pages)],
            title=f"sync-resp pages during crash repair (bound {PAGE_SIZE})",
        ),
    )
    # The repair actually shipped pages, and every one respects the bound.
    assert pages, "crash repair shipped no sync pages"
    assert all(p <= PAGE_SIZE for p in pages), pages
    # And the repair worked: all replicas agree.
    from repro.core.adt import _canonical

    assert len({_canonical(s) for s in c.states().values()}) == 1
