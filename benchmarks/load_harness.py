#!/usr/bin/env python
"""Load harness for the asyncio backend: simulated users over real HTTP.

Boots a :class:`repro.net.harness.LocalCluster` and aims a fleet of
simulated users at its HTTP front-ends: each user owns one keep-alive
connection to a round-robin-assigned replica and issues a closed-loop
mix of updates and queries (one outstanding request at a time, like a
real client).  Users ramp in over a configurable window rather than
arriving at once, so the cluster sees an increasing-offered-load curve
instead of a thundering herd.

Per-operation latency is measured client-side (request write to response
parse) and reported three ways:

* **windowed, exact** — each reporting window's raw samples are flushed
  into exact p50/p99 for that window (``--soak`` keeps every window as a
  ``series`` row);
* **whole-run, bounded** — a deterministic stride-decimation
  :class:`Reservoir` (no RNG, evenly spaced subsample, fixed memory)
  backs the summary percentiles, so a long soak cannot grow an unbounded
  raw-latency list;
* a ``repro_net_op_latency_seconds`` histogram on the cluster's
  :class:`~repro.obs.metrics.MetricsRegistry`, alongside the node-side
  convergence-lag histogram the soak series derives its per-window
  ``convergence_lag_p99_ms`` from (bucket-count deltas through
  :func:`repro.obs.metrics.bucket_quantile`).

The run emits a ``repro-net-report-v1`` document (validated by
:func:`repro.obs.report.validate_net_report`): ``kind`` is ``load`` or
``soak``, ``summary`` holds whole-run figures including convergence-lag
percentiles and background ``task_errors``, ``series`` the per-window
time-series.  ``benchmarks/run_all.py`` folds it into
``BENCH_universal.json`` as ``net_load`` / ``net_soak``.

Throughput here is a *wait-free* number: a 200 on an update means the
replica applied and broadcast it, not that any peer acknowledged — the
paper's trade.  Convergence is validated once, after the load stops.

Run: ``python benchmarks/load_harness.py --users 100 --duration 3``
(or ``make loadtest``); add ``--soak`` for the per-second time-series.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any

#: latency buckets for the registry histogram (seconds).
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0)

#: summary-percentile reservoir size (fixed memory for any run length).
RESERVOIR_CAP = 4096


class Reservoir:
    """A deterministic bounded sample of a stream (stride decimation).

    Accepts every ``stride``-th observation; when the retained list hits
    ``cap``, every other retained sample is dropped and the stride
    doubles.  At any moment the reservoir holds an evenly spaced
    subsample of the whole stream — no RNG (the determinism lint's
    preference, and reruns of a scripted workload sample identically),
    O(cap) memory, O(1) amortized per observation.
    """

    __slots__ = ("cap", "stride", "_phase", "samples", "seen")

    def __init__(self, cap: int = RESERVOIR_CAP) -> None:
        if cap < 2:
            raise ValueError(f"reservoir cap must be >= 2, got {cap}")
        self.cap = cap
        self.stride = 1
        self._phase = 0
        self.samples: list[float] = []
        self.seen = 0

    def add(self, value: float) -> None:
        self.seen += 1
        self._phase += 1
        if self._phase < self.stride:
            return
        self._phase = 0
        self.samples.append(value)
        if len(self.samples) >= self.cap:
            self.samples = self.samples[::2]
            self.stride *= 2


def percentile(samples: list[float], q: float) -> float:
    """Exact (nearest-rank) percentile of ``samples``; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class RunStats:
    """Shared accumulator the user fleet writes and the reporter drains."""

    __slots__ = ("reservoir", "window_lats", "window_errors", "errors",
                 "counters", "max_latency", "ops")

    def __init__(self) -> None:
        self.reservoir = Reservoir()
        self.window_lats: list[float] = []
        self.window_errors = 0
        self.errors: list[str] = []
        self.counters = {"updates": 0, "queries": 0}
        self.max_latency = 0.0
        self.ops = 0

    def observe(self, dt: float) -> None:
        self.ops += 1
        self.reservoir.add(dt)
        self.window_lats.append(dt)
        if dt > self.max_latency:
            self.max_latency = dt

    def take_window(self) -> tuple[list[float], int]:
        """Drain the current window: ``(raw latencies, error count)``."""
        lats, self.window_lats = self.window_lats, []
        errs, self.window_errors = self.window_errors, 0
        return lats, errs


async def _user(
    user_id: int,
    client,
    *,
    start_delay: float,
    stop: asyncio.Event,
    stats: RunStats,
    hist,
) -> None:
    """One closed-loop simulated user: ramp delay, then op after op."""
    await asyncio.sleep(start_delay)
    value = user_id * 1_000_000  # distinct key space per user
    i = 0
    while not stop.is_set():
        t0 = time.perf_counter()
        try:
            if i % 5 == 4:
                await client.query("read")
                stats.counters["queries"] += 1
            else:
                await client.update("insert", value + i)
                stats.counters["updates"] += 1
        except (RuntimeError, OSError) as exc:
            stats.errors.append(f"user {user_id} op {i}: {exc}")
            stats.window_errors += 1
            if len(stats.errors) > 100:
                return
            await asyncio.sleep(0.01)
            continue
        finally:
            i += 1
        dt = time.perf_counter() - t0
        stats.observe(dt)
        hist.observe(dt)


async def _soak_reporter(
    stop: asyncio.Event,
    stats: RunStats,
    registry,
    series: list[dict[str, Any]],
    *,
    interval: float = 1.0,
) -> None:
    """Flush one ``series`` row per ``interval``: exact window latency
    percentiles, the windowed convergence-lag p99 (bucket-count deltas on
    the nodes' shared histogram), and error/task-error deltas."""
    from repro.obs.metrics import bucket_quantile

    lag_hist = registry.get("repro_net_convergence_lag_seconds")
    lag_prev = lag_hist.combined_buckets() if lag_hist is not None else []
    task_prev = int(registry.total("repro_net_task_errors_total"))
    t0 = time.perf_counter()
    while not stop.is_set():
        try:
            await asyncio.wait_for(stop.wait(), interval)
            return  # the final partial window is folded by the caller
        except asyncio.TimeoutError:
            pass
        lats, errs = stats.take_window()
        lag_p99 = 0.0
        if lag_hist is not None:
            lag_now = lag_hist.combined_buckets()
            delta = [b - a for a, b in zip(lag_prev, lag_now)]
            lag_prev = lag_now
            lag_p99 = bucket_quantile(lag_hist.uppers, delta, 0.99)
        task_now = int(registry.total("repro_net_task_errors_total"))
        series.append({
            "t": round(time.perf_counter() - t0, 3),
            "ops": len(lats),
            "ops_per_sec": round(len(lats) / interval, 1),
            "p50_ms": round(percentile(lats, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(lats, 0.99) * 1e3, 3),
            "convergence_lag_p99_ms": round(lag_p99 * 1e3, 3),
            "task_errors": task_now - task_prev,
            "errors": errs,
        })
        task_prev = task_now


async def run_load_async(
    *,
    users: int = 100,
    duration: float = 3.0,
    ramp: float = 1.0,
    replicas: int = 3,
    sync_interval: float = 0.1,
    settle_timeout: float = 20.0,
    soak: bool = False,
    report_interval: float = 1.0,
) -> dict[str, Any]:
    """Run one load experiment; returns a ``repro-net-report-v1`` doc."""
    from repro.core.universal import UniversalReplica
    from repro.net.harness import LocalCluster
    from repro.obs.report import NET_REPORT_FORMAT
    from repro.specs import SetSpec

    spec = SetSpec()
    cluster = LocalCluster(
        replicas,
        lambda pid, n: UniversalReplica(pid, n, spec),
        sync_interval=sync_interval,
    )
    hist = cluster.registry.histogram(
        "repro_net_op_latency_seconds",
        help="client-observed HTTP operation latency",
        buckets=LATENCY_BUCKETS,
    ).labels()
    await cluster.start()
    stats = RunStats()
    series: list[dict[str, Any]] = []
    stop = asyncio.Event()
    clients = [cluster.client(u % replicas) for u in range(users)]
    try:
        tasks = [
            asyncio.ensure_future(_user(
                u, clients[u],
                start_delay=(u / users) * ramp,
                stop=stop, stats=stats, hist=hist,
            ))
            for u in range(users)
        ]
        if soak:
            tasks.append(asyncio.ensure_future(_soak_reporter(
                stop, stats, cluster.registry, series,
                interval=report_interval,
            )))
        t_start = time.perf_counter()
        await asyncio.sleep(ramp + duration)
        stop.set()
        await asyncio.gather(*tasks, return_exceptions=True)
        elapsed = time.perf_counter() - t_start
        converged = None
        try:
            await cluster.settle(timeout=settle_timeout)
            converged = True
        except TimeoutError:
            converged = False
    finally:
        for client in clients:
            await client.close()
        await cluster.stop()
    lag_hist = cluster.registry.get("repro_net_convergence_lag_seconds")
    lag_p50 = lag_hist.quantile(0.50) if lag_hist is not None else 0.0
    lag_p99 = lag_hist.quantile(0.99) if lag_hist is not None else 0.0
    return {
        "format": NET_REPORT_FORMAT,
        "kind": "soak" if soak else "load",
        "config": {
            "users": users,
            "replicas": replicas,
            "duration_seconds": float(duration),
            "ramp_seconds": float(ramp),
            "sync_interval": float(sync_interval),
        },
        "summary": {
            "ops": stats.ops,
            "updates": stats.counters["updates"],
            "queries": stats.counters["queries"],
            "errors": len(stats.errors),
            "error_samples": stats.errors[:5],
            "measured_seconds": round(elapsed, 3),
            "ops_per_sec": round(stats.ops / elapsed, 1) if elapsed > 0 else 0.0,
            "p50_ms": round(percentile(stats.reservoir.samples, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(stats.reservoir.samples, 0.99) * 1e3, 3),
            "max_ms": round(stats.max_latency * 1e3, 3),
            "latency_samples_kept": len(stats.reservoir.samples),
            "convergence_lag_p50_ms": round(lag_p50 * 1e3, 3),
            "convergence_lag_p99_ms": round(lag_p99 * 1e3, 3),
            "task_errors": int(
                cluster.registry.total("repro_net_task_errors_total")
            ),
            "converged": converged,
        },
        "series": series,
        "metrics": cluster.registry.flat(),
    }


def run_load(**kwargs: Any) -> dict[str, Any]:
    """Synchronous wrapper (what ``run_all.py`` calls)."""
    return asyncio.run(run_load_async(**kwargs))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100)
    parser.add_argument("--duration", type=float, default=3.0,
                        help="seconds at full user count (after the ramp)")
    parser.add_argument("--ramp", type=float, default=1.0,
                        help="seconds over which users arrive")
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--soak", action="store_true",
                        help="emit a per-second time-series (ops/sec, window "
                             "p50/p99, convergence-lag p99, task errors)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="soak reporting window in seconds")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless >=500 ops/sec, no errors, "
                             "a valid report document and convergence")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_load(users=args.users, duration=args.duration,
                      ramp=args.ramp, replicas=args.replicas,
                      soak=args.soak, report_interval=args.interval)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if args.check:
        from repro.obs.report import validate_net_report

        problems = validate_net_report(report)
        for problem in problems:
            print(f"invalid report: {problem}", file=sys.stderr)
        summary = report["summary"]
        ok = (not problems
              and summary["ops_per_sec"] >= 500
              and summary["errors"] == 0
              and summary["task_errors"] == 0
              and summary["converged"] is True)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
