#!/usr/bin/env python
"""Load harness for the asyncio backend: simulated users over real HTTP.

Boots a :class:`repro.net.harness.LocalCluster` and aims a fleet of
simulated users at its HTTP front-ends: each user owns one keep-alive
connection to a round-robin-assigned replica and issues a closed-loop
mix of updates and queries (one outstanding request at a time, like a
real client).  Users ramp in over a configurable window rather than
arriving at once, so the cluster sees an increasing-offered-load curve
instead of a thundering herd.

Per-operation latency is measured client-side (request write to response
parse) and reported two ways:

* exact percentiles (p50/p99, computed from the raw sample list) in the
  returned summary — these land in ``BENCH_universal.json`` as the
  ``net_load_*`` entries via ``benchmarks/run_all.py``;
* a ``repro_net_op_latency_seconds`` histogram on the cluster's
  :class:`~repro.obs.metrics.MetricsRegistry`, alongside the node-side
  frame/sync counters, for the flat metrics artifact.

Throughput here is a *wait-free* number: a 200 on an update means the
replica applied and broadcast it, not that any peer acknowledged — the
paper's trade.  Convergence is validated once, after the load stops.

Run: ``python benchmarks/load_harness.py --users 100 --duration 3``
(or ``make loadtest``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any

#: latency buckets for the registry histogram (seconds).
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0)


def percentile(samples: list[float], q: float) -> float:
    """Exact (nearest-rank) percentile of ``samples``; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


async def _user(
    user_id: int,
    client,
    *,
    start_delay: float,
    stop: asyncio.Event,
    latencies: list[float],
    errors: list[str],
    hist,
    counters: dict[str, int],
) -> None:
    """One closed-loop simulated user: ramp delay, then op after op."""
    await asyncio.sleep(start_delay)
    value = user_id * 1_000_000  # distinct key space per user
    i = 0
    while not stop.is_set():
        t0 = time.perf_counter()
        try:
            if i % 5 == 4:
                await client.query("read")
                counters["queries"] += 1
            else:
                await client.update("insert", value + i)
                counters["updates"] += 1
        except (RuntimeError, OSError) as exc:
            errors.append(f"user {user_id} op {i}: {exc}")
            if len(errors) > 100:
                return
            await asyncio.sleep(0.01)
            continue
        finally:
            i += 1
        dt = time.perf_counter() - t0
        latencies.append(dt)
        hist.observe(dt)


async def run_load_async(
    *,
    users: int = 100,
    duration: float = 3.0,
    ramp: float = 1.0,
    replicas: int = 3,
    sync_interval: float = 0.1,
    settle_timeout: float = 20.0,
) -> dict[str, Any]:
    """Run one load experiment; returns the summary document."""
    from repro.core.universal import UniversalReplica
    from repro.net.harness import LocalCluster
    from repro.specs import SetSpec

    spec = SetSpec()
    cluster = LocalCluster(
        replicas,
        lambda pid, n: UniversalReplica(pid, n, spec),
        sync_interval=sync_interval,
    )
    hist = cluster.registry.histogram(
        "repro_net_op_latency_seconds",
        help="client-observed HTTP operation latency",
        buckets=LATENCY_BUCKETS,
    ).labels()
    await cluster.start()
    latencies: list[float] = []
    errors: list[str] = []
    counters = {"updates": 0, "queries": 0}
    stop = asyncio.Event()
    clients = [cluster.client(u % replicas) for u in range(users)]
    try:
        tasks = [
            asyncio.ensure_future(_user(
                u, clients[u],
                start_delay=(u / users) * ramp,
                stop=stop, latencies=latencies, errors=errors,
                hist=hist, counters=counters,
            ))
            for u in range(users)
        ]
        t_start = time.perf_counter()
        await asyncio.sleep(ramp + duration)
        stop.set()
        await asyncio.gather(*tasks, return_exceptions=True)
        elapsed = time.perf_counter() - t_start
        converged = None
        try:
            await cluster.settle(timeout=settle_timeout)
            converged = True
        except TimeoutError:
            converged = False
    finally:
        for client in clients:
            await client.close()
        await cluster.stop()
    ops = len(latencies)
    return {
        "format": "repro-net-load-v1",
        "users": users,
        "replicas": replicas,
        "ramp_seconds": ramp,
        "measured_seconds": round(elapsed, 3),
        "ops": ops,
        "updates": counters["updates"],
        "queries": counters["queries"],
        "errors": len(errors),
        "error_samples": errors[:5],
        "ops_per_sec": round(ops / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "max_ms": round(max(latencies, default=0.0) * 1e3, 3),
        "converged": converged,
        "metrics": cluster.registry.flat(),
    }


def run_load(**kwargs: Any) -> dict[str, Any]:
    """Synchronous wrapper (what ``run_all.py`` calls)."""
    return asyncio.run(run_load_async(**kwargs))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100)
    parser.add_argument("--duration", type=float, default=3.0,
                        help="seconds at full user count (after the ramp)")
    parser.add_argument("--ramp", type=float, default=1.0,
                        help="seconds over which users arrive")
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless >=500 ops/sec, no errors "
                             "and the cluster converged")
    parser.add_argument("--out", default=None,
                        help="write the JSON summary here")
    args = parser.parse_args(argv)
    summary = run_load(users=args.users, duration=args.duration,
                       ramp=args.ramp, replicas=args.replicas)
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if args.check:
        ok = (summary["ops_per_sec"] >= 500
              and summary["errors"] == 0
              and summary["converged"] is True)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
