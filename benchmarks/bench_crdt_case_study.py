"""SEC6 — the Section VI case study over the full set zoo.

"All these sets, and the eventually consistent objects in general, have a
different behavior when they are used in distributed programs."

The corpus has two parts, run under identical adversarial schedules for
every implementation:

* random conflict-heavy workloads (tiny support, hot insert/delete races);
* Fig.-1b *templates*: each process inserts its own element then deletes
  another's (the paper's own worst case — every update linearization ends
  with a deletion).

Per system we report:

* ``converged``      — runs ending with all replicas agreeing;
* ``linearizable``   — runs whose converged state equals the final state
  of SOME linearization of the updates (computed exactly; this is the
  update-consistency acid test);
* ``ops lost``       — operations the implementation silently dropped
  (the C-Set's conditional sends).

Shape asserted: the universal construction and the LWW set are always
converged + linearizable; the OR-set converges to the non-linearizable
{1,2} on every Fig.-1b template; the tombstone (2P) and counter (PN) sets
regularly land on non-linearizable states; the C-Set converges (its
deltas commute) but silently loses operations.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.adt import _canonical
from repro.core.linearization import update_linearization_states
from repro.core.universal import UniversalReplica
from repro.crdt import SET_CRDTS
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import conflict_heavy_set_workload, run_workload
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
RANDOM_RUNS = 20
TEMPLATE_RUNS = 5
RUNS = RANDOM_RUNS + TEMPLATE_RUNS
OPS = 8  # small enough for exact linearization enumeration
N = 3

SYSTEMS = {"UC-Set": lambda p, n: UniversalReplica(p, n, SPEC)}
SYSTEMS.update(
    {name: (lambda cls: lambda p, n: cls(p, n))(cls)
     for name, cls in SET_CRDTS.items() if name != "G-Set"}
)


def template_ops(seed: int):
    """Fig. 1b generalized to N processes: p_i inserts i, deletes i+1."""
    ops = []
    for pid in range(N):
        ops.append((pid, S.insert(pid)))
        ops.append((pid, S.delete((pid + seed % (N - 1) + 1) % N)))
    return ops


def run_one(factory, seed: int):
    if seed < RANDOM_RUNS:
        wl = [w for w in conflict_heavy_set_workload(N, OPS, support=2, seed=seed)
              if w.is_update]
        c = Cluster(N, factory, latency=ExponentialLatency(20.0), seed=seed)
        run_workload(c, wl)
    else:
        c = Cluster(N, factory, seed=seed)
        c.partition([[pid] for pid in range(N)])
        for pid, op in template_ops(seed):
            c.update(pid, op)
        c.heal()
        c.run()
    return c


def run_corpus():
    results = {
        name: {"converged": 0, "linearizable": 0, "lost": 0} for name in SYSTEMS
    }
    for seed in range(RUNS):
        reference = run_one(SYSTEMS["UC-Set"], seed)
        history = reference.trace.to_history()
        allowed = update_linearization_states(
            history.restrict(history.updates), SPEC
        )
        for name, factory in SYSTEMS.items():
            c = run_one(factory, seed)
            states = {_canonical(s) for s in c.states().values()}
            if len(states) == 1:
                results[name]["converged"] += 1
                if next(iter(states)) in allowed:
                    results[name]["linearizable"] += 1
            results[name]["lost"] += sum(
                getattr(r, "suppressed", 0) for r in c.replicas
            )
    return results


def test_case_study(benchmark, save_result):
    results = benchmark(run_corpus)

    rows = [
        [name, f"{r['converged']}/{RUNS}", f"{r['linearizable']}/{RUNS}", r["lost"]]
        for name, r in results.items()
    ]
    save_result(
        "crdt_case_study",
        format_table(
            ["system", "converged", "state explained by a linearization",
             "ops silently lost"],
            rows,
            title=(
                f"set case study — {RANDOM_RUNS} random conflict workloads "
                f"+ {TEMPLATE_RUNS} Fig.1b templates"
            ),
        ),
    )

    # The universal construction: always converged, always linearizable.
    assert results["UC-Set"]["converged"] == RUNS
    assert results["UC-Set"]["linearizable"] == RUNS
    # LWW-Set orders by the same kind of stamps: also always linearizable.
    assert results["LWW-Set"]["converged"] == RUNS
    assert results["LWW-Set"]["linearizable"] == RUNS
    # Insert-wins keeps concurrently re-inserted elements alive: on every
    # Fig.-1b template its state is not explainable by any linearization.
    assert results["OR-Set"]["converged"] == RUNS
    assert results["OR-Set"]["linearizable"] <= RUNS - TEMPLATE_RUNS
    # Tombstones and counters also stray from the sequential spec.
    for name in ("2P-Set", "PN-Set"):
        assert results[name]["converged"] == RUNS
        assert results[name]["linearizable"] < RUNS, name
    # The C-Set converges (its deltas commute) but silently drops
    # operations whose local precondition failed.
    assert results["C-Set"]["converged"] == RUNS
    assert results["C-Set"]["lost"] > 0
