"""PROP1 — Proposition 1's impossibility, demonstrated on implementations.

The paper proves pipelined convergence (PC + EC) is not wait-free
implementable via the Fig. 2 program under message isolation: wait-freedom
forces the first reads to be {1,3} and {2}; pipelined consistency then
pins each process's future forever, so they can never agree.

We run the gadget against both sides of the dichotomy:

* ``fifo`` (pipelined consistent): first reads as predicted, permanent
  divergence — converged? no;
* ``universal`` (update consistent): same first reads (the wait-free
  indistinguishability), convergence after healing — PC violated instead.

Shape asserted: exactly that dichotomy.  Timing target: one full gadget
run per implementation.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.universal import UniversalReplica
from repro.objects.pipelined import FifoApplyReplica
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()


def run_gadget(kind: str):
    if kind == "fifo":
        c = Cluster(2, lambda pid, n: FifoApplyReplica(pid, n, SPEC), fifo=True)
    else:
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, SPEC))
    c.network.hold(0, 1)
    c.network.hold(1, 0)
    c.update(0, S.insert(1))
    c.update(0, S.insert(3))
    c.update(1, S.insert(2))
    c.update(1, S.delete(3))
    first = (c.query(0, "read"), c.query(1, "read"))
    c.network.release(0, 1, c.now)
    c.network.release(1, 0, c.now)
    c.run()
    final = (c.query(0, "read"), c.query(1, "read"))
    return first, final


@pytest.mark.parametrize("kind", ["fifo", "universal"])
def test_prop1_gadget(benchmark, save_result, kind):
    first, final = benchmark(run_gadget, kind)

    # Wait-freedom: isolated first reads are forced for ANY implementation.
    assert first == (frozenset({1, 3}), frozenset({2}))

    converged = final[0] == final[1]
    if kind == "fifo":
        assert not converged, "the PC implementation must diverge forever"
        assert final == (frozenset({1, 2}), frozenset({1, 2, 3}))
    else:
        assert converged, "the UC implementation must converge"
        assert final[0] == frozenset({1, 2})

    rows = [
        ["first read p0", first[0]],
        ["first read p1", first[1]],
        ["final read p0", final[0]],
        ["final read p1", final[1]],
        ["converged", converged],
    ]
    save_result(
        f"prop1_{kind}",
        format_table(["observable", "value"], rows,
                     title=f"Proposition 1 gadget — {kind} implementation"),
    )
