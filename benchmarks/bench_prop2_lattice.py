"""PROP2 — the criterion lattice, measured over randomized histories.

Proposition 2: SUC ⇒ SEC ∧ UC, UC ⇒ EC; the paper's figures witness the
incomparabilities (UC vs SEC, PC vs EC).  This bench classifies a corpus
of deterministic pseudo-random small histories, counts each criterion
combination and asserts zero implication violations — the empirical
version of the proposition over the whole corpus.

Timing target: classification of the full corpus.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core.criteria.lattice import check_implications, classify
from repro.core.history import History
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
CORPUS_SIZE = 80
_SUBSETS = [frozenset(), frozenset({1}), frozenset({2}), frozenset({1, 2})]


def random_history(rng: np.random.Generator) -> History:
    processes = []
    for _ in range(int(rng.integers(1, 3))):
        ops = []
        length = int(rng.integers(0, 4))
        for i in range(length):
            kind = rng.integers(3)
            if kind == 0:
                ops.append(S.insert(int(rng.integers(1, 3))))
            elif kind == 1:
                ops.append(S.delete(int(rng.integers(1, 3))))
            else:
                q = S.read(_SUBSETS[int(rng.integers(4))])
                if i == length - 1 and rng.random() < 0.5:
                    ops.append((q, True))
                else:
                    ops.append(q)
        processes.append(ops)
    return History.from_processes(processes)


def classify_corpus(seed: int = 2015):
    rng = np.random.default_rng(seed)
    combos: dict[tuple, int] = {}
    violations = 0
    for _ in range(CORPUS_SIZE):
        h = random_history(rng)
        results = classify(h, SPEC)
        violations += len(check_implications(results))
        key = tuple(name for name in ("EC", "SEC", "UC", "SUC", "PC") if results[name])
        combos[key] = combos.get(key, 0) + 1
    return combos, violations


def test_prop2_lattice(benchmark, save_result):
    combos, violations = benchmark(classify_corpus)
    assert violations == 0

    rows = [
        ["+".join(key) if key else "(none)", count]
        for key, count in sorted(combos.items(), key=lambda kv: -kv[1])
    ]
    table = format_table(
        ["criteria satisfied", "histories"], rows,
        title=f"Proposition 2 — {CORPUS_SIZE} random histories, 0 implication violations",
    )
    save_result("prop2_lattice", table)

    # The corpus must actually exercise the lattice's strict structure:
    # some EC-not-UC history and some SEC-not-SUC history must appear.
    assert any("EC" in k and "UC" not in k for k in combos)
    assert any("SEC" in k and "SUC" not in k for k in combos)
