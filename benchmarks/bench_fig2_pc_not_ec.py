"""FIG2 — regenerate Figure 2: a pipelined consistent history that is not
eventually consistent, with the paper's w1/w2 chain linearizations.

Shape asserted: PC holds (and the per-chain witnesses replay correctly),
EC fails (p0 stabilizes on {1,2}, p1 on {1,2,3}).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.criteria import EC, PC
from repro.paper import fig_2
from repro.specs import SetSpec

SPEC = SetSpec()


def classify_fig2():
    h = fig_2()
    return h, PC.check(h, SPEC), EC.check(h, SPEC)


def test_fig2(benchmark, save_result):
    h, pc, ec = benchmark(classify_fig2)
    assert pc and not ec

    rows = [["PC", bool(pc)], ["EC", bool(ec)]]
    lines = [format_table(["criterion", "holds"], rows, title="Fig. 2 gadget"), ""]
    for chain, lin in pc.witness["chain_linearizations"].items():
        pid = chain[0].pid
        word = " . ".join(str(e.label) for e in lin)
        lines.append(f"w{pid + 1} = {word} . (omega suffix)")
        assert SPEC.recognizes([e.label for e in lin])
    save_result("fig2_pc_not_ec", "\n".join(lines))
