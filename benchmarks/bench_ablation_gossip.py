"""ABL-GOSSIP — ablation: op-based broadcast vs state-based gossip.

The paper's universal construction broadcasts one small message per
update (operation-based).  The other classic replication style from its
[Shapiro et al.] citation is state-based: updates stay local and replicas
periodically gossip their whole lattice payload.

Series regenerated (grow-only set, 3 processes, 120 inserts):

* messages sent and total bytes on the wire, per gossip period;
* staleness: how many of the other replicas' elements the average read
  misses while running.

Shape asserted: the op-based construction sends more (but tiny) messages
and is never stale once delivered; state-based sends fewer, much larger
messages, with staleness growing with the gossip period — the classic
trade-off curve.
"""

from __future__ import annotations

from repro.analysis import format_table, payload_size_bits
from repro.core.commutative import CommutativeReplica
from repro.crdt.state_based import GSetLattice, StateBasedReplica, gossip_round
from repro.sim import Cluster
from repro.sim.network import FixedLatency
from repro.specs import GSetSpec
from repro.specs import gset as G

N = 3
INSERTS = 120
PERIODS = (5, 20, 60)  # updates between gossip rounds


def measure_bits(cluster) -> list[int]:
    bits = []
    orig_send = cluster.network.send

    def send(src, dst, payload, now):
        bits.append(payload_size_bits(payload))
        return orig_send(src, dst, payload, now)

    cluster.network.send = send
    return bits


def run_op_based():
    spec = GSetSpec()
    c = Cluster(N, lambda p, n: CommutativeReplica(p, n, spec),
                latency=FixedLatency(1.0))
    bits = measure_bits(c)
    staleness = []
    for i in range(INSERTS):
        c.update(i % N, G.insert(i))
        staleness.append(_staleness(c))
        c.run_until(c.now + 0.5)
    c.run()
    return c, bits, staleness


def run_state_based(period: int):
    c = Cluster(N, lambda p, n: StateBasedReplica(p, n, GSetLattice()),
                latency=FixedLatency(1.0))
    bits = measure_bits(c)
    staleness = []
    for i in range(INSERTS):
        c.update(i % N, G.insert(i))
        staleness.append(_staleness(c))
        if (i + 1) % period == 0:
            gossip_round(c)
        c.run_until(c.now + 0.5)
    gossip_round(c)
    c.run()
    return c, bits, staleness


def _staleness(cluster) -> int:
    """Elements known somewhere but missing from some replica's view."""
    views = [frozenset(cluster.replicas[p].local_state()) for p in range(N)]
    union = frozenset().union(*views)
    return sum(len(union - v) for v in views)


def test_gossip_tradeoff(benchmark, save_result):
    c_op, bits_op, stale_op = benchmark(run_op_based)

    rows = [[
        "op-based (1 bcast/update)", len(bits_op), sum(bits_op) // 8,
        f"{sum(stale_op) / len(stale_op):.1f}",
    ]]
    sb = {}
    for period in PERIODS:
        c_sb, bits_sb, stale_sb = run_state_based(period)
        sb[period] = (bits_sb, stale_sb)
        rows.append([
            f"state-based, gossip every {period}", len(bits_sb),
            sum(bits_sb) // 8, f"{sum(stale_sb) / len(stale_sb):.1f}",
        ])
        # Convergence at the end regardless of cadence.
        views = {frozenset(c_sb.replicas[p].local_state()) for p in range(N)}
        assert len(views) == 1

    save_result(
        "ablation_gossip",
        format_table(
            ["system", "messages", "total bytes", "avg staleness"],
            rows,
            title=f"op-based vs state-based replication ({INSERTS} inserts, n={N})",
        ),
    )

    # Shapes: fewer messages for sparse gossip…
    assert len(sb[60][0]) < len(sb[5][0]) < len(bits_op) + 1
    # …but more staleness…
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(sb[60][1]) > mean(sb[5][1]) > mean(stale_op)
    # …and much bigger payloads per message (full state vs one op).
    assert max(sb[60][0]) > max(bits_op) * 4
