"""PROP3 — the Section VI case study: a SUC set substitutes for the OR-set.

Two measurements on the Fig. 1b conflict scenario (concurrent
I(1)·D(2) ‖ I(2)·D(1)):

* the OR-set converges to {1,2} — insert-wins-SEC ok, update consistency
  violated (no linearization of the updates ends at {1,2});
* the universal-construction set converges to a linearization state and
  its trace passes BOTH the UC check and the insert-wins check
  (Proposition 3: SUC ⇒ insert-wins SEC).

Timing target: one gadget run + both exact criterion checks per system.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.criteria import UC
from repro.core.criteria.cache import CacheConsistency
from repro.core.criteria.insert_wins import InsertWinsSEC
from repro.core.history import Event, History
from repro.core.universal import UniversalReplica
from repro.crdt import ORSetReplica
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S
from repro.util import ordering

SPEC = SetSpec()
IW = InsertWinsSEC()
CC = CacheConsistency()


def omega_history(cluster) -> History:
    records = cluster.trace.records
    last_query = {}
    for r in records:
        if not r.is_update:
            last_query[r.pid] = r.eid
    events = [
        Event(r.eid, r.label, r.pid, omega=(r.eid == last_query.get(r.pid)))
        for r in records
    ]
    po = ordering.empty_relation(events)
    chains: dict[int, list[Event]] = {}
    for ev in events:
        chains.setdefault(ev.pid, []).append(ev)
    for chain in chains.values():
        for a, b in zip(chain, chain[1:]):
            ordering.add_edge(po, a, b)
    return History(events, po)


def run_case(kind: str):
    if kind == "or-set":
        c = Cluster(2, lambda pid, n: ORSetReplica(pid, n))
    else:
        c = Cluster(2, lambda pid, n: UniversalReplica(pid, n, SPEC))
    c.partition([[0], [1]])
    c.update(0, S.insert(1))
    c.update(0, S.delete(2))
    c.update(1, S.insert(2))
    c.update(1, S.delete(1))
    c.heal()
    c.run()
    reads = (c.query(0, "read"), c.query(1, "read"))
    h = omega_history(c)
    return reads, UC.check(h, SPEC), IW.check(h, SPEC), CC.check(h, SPEC)


@pytest.mark.parametrize("kind", ["or-set", "uc-set"])
def test_prop3(benchmark, save_result, kind):
    reads, uc, iw, cc = benchmark(run_case, kind)
    assert reads[0] == reads[1]  # both systems converge

    if kind == "or-set":
        assert reads[0] == frozenset({1, 2})  # inserts win
        assert not uc  # ...but no update linearization explains it
        assert iw
        assert cc  # "can be seen as a cache consistent set [21]"
    else:
        assert reads[0] in (frozenset(), frozenset({1}), frozenset({2}))
        assert uc
        assert iw  # Proposition 3
        assert cc

    rows = [
        ["converged state", reads[0]],
        ["update consistent", bool(uc)],
        ["insert-wins SEC", bool(iw)],
        ["cache consistent", bool(cc)],
    ]
    save_result(
        f"prop3_{kind}",
        format_table(["property", "value"], rows,
                     title=f"Fig. 1b conflict scenario — {kind}"),
    )
