"""AW — the introduction's motivating cost claim, measured.

"Attiya and Welch proved that using strong consistency criteria such as
atomicity is costly as each operation may need an execution time linear
with the latency of the communication network" — while the paper's
wait-free constructions answer from local state in zero network time,
paying instead with convergence lag and the impossibility results.

Series regenerated: operation response time vs mean network latency for

* the ABD majority-quorum atomic register (reference [3]) — two quorum
  round-trips per operation, so response ∝ latency;
* Algorithm 2's update-consistent memory — response identically 0.

Plus the availability contrast: operations attempted from the minority
side of a partition (ABD: blocked; Algorithm 2: served).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.memory import MemoryReplica
from repro.objects.quorum import ABDClient, ABDReplica, Unavailable
from repro.sim import Cluster
from repro.sim.network import FixedLatency
from repro.specs import register as R

N = 5
LATENCIES = (0.5, 2.0, 8.0)
OPS = 10


def abd_mean_response(latency: float) -> float:
    c = Cluster(N, lambda p, total: ABDReplica(p, total),
                latency=FixedLatency(latency))
    clients = [ABDClient(c, pid) for pid in range(N)]
    total = 0.0
    for i in range(OPS):
        _, elapsed = clients[i % N].write(i)
        total += elapsed
        _, elapsed = clients[(i + 1) % N].read()
        total += elapsed
    return total / (2 * OPS)


def uc_mean_response(latency: float) -> float:
    c = Cluster(N, lambda p, total: MemoryReplica(p, total),
                latency=FixedLatency(latency))
    total = 0.0
    for i in range(OPS):
        before = c.now
        c.update(i % N, R.mem_write("r", i))
        total += c.now - before
        before = c.now
        c.query((i + 1) % N, "read", ("r",))
        total += c.now - before
        c.run()  # let the broadcast land between operations
    return total / (2 * OPS)


def test_response_time_vs_latency(benchmark, save_result):
    benchmark(abd_mean_response, 2.0)

    rows = []
    abd_times = []
    for latency in LATENCIES:
        abd_t = abd_mean_response(latency)
        uc_t = uc_mean_response(latency)
        abd_times.append(abd_t)
        rows.append([latency, f"{abd_t:.2f}", f"{uc_t:.2f}"])
        assert uc_t == 0.0  # wait-free: never touches the network
        assert abd_t >= 2 * latency  # at least one quorum round-trip/phase

    save_result(
        "attiya_welch",
        format_table(
            ["mean latency", "ABD response", "UC-memory response"],
            rows,
            title="operation response time: atomic register vs Algorithm 2",
        ),
    )
    # Linear growth: 16x the latency, ~16x the response.
    assert abd_times[2] / abd_times[0] == pytest.approx(16.0, rel=0.05)


def test_availability_under_partition(benchmark, save_result):
    def attempt():
        abd = Cluster(N, lambda p, total: ABDReplica(p, total))
        abd.partition([[0, 1], [2, 3, 4]])
        client = ABDClient(abd, 0)
        blocked = False
        try:
            client.write("x")
        except Unavailable:
            blocked = True

        uc = Cluster(N, lambda p, total: MemoryReplica(p, total))
        uc.partition([[0, 1], [2, 3, 4]])
        uc.update(0, R.mem_write("r", "x"))
        served = uc.query(0, "read", ("r",)) == "x"
        return blocked, served

    blocked, served = benchmark(attempt)
    assert blocked and served
    save_result(
        "attiya_welch_availability",
        format_table(
            ["system", "minority-side write"],
            [["ABD atomic register", "BLOCKED (Unavailable)"],
             ["UC memory (Alg. 2)", "served locally"]],
            title="availability during a partition",
        ),
    )
