"""LIN-GAP — quantifying the gap between update consistency and atomicity.

Update consistency tolerates stale reads that linearizability forbids;
how often does that bite in practice?  For seeded random set workloads on
Algorithm 1 we measure, per mean network latency:

* fraction of runs whose *whole trace* is linearizable (Wing–Gong over
  the real-time order of the instantaneous operations);
* fraction of stale reads (version lag > 0);
* update-consistent convergence (always 100% — the guarantee actually
  paid for).

Shape asserted: at near-zero latency everything is effectively
linearizable; as latency grows, linearizability evaporates while update
consistency never wavers — the quantified version of Fig. 1's "some read
operations may return out-dated values".
"""

from __future__ import annotations

from repro.analysis import format_table, staleness_report
from repro.analysis.convergence import update_consistent_convergence
from repro.core.criteria.realtime import trace_linearizable
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
RUNS = 15
OPS = 10
LATENCIES = (0.01, 2.0, 10.0)


def one_run(latency: float, seed: int):
    c = Cluster(3, lambda p, n: UniversalReplica(p, n, SPEC),
                latency=ExponentialLatency(latency), seed=seed)
    import numpy as np

    rng = np.random.default_rng(seed)
    t = 0.0
    for _ in range(OPS):
        t += float(rng.exponential(1.0))
        c.run_until(t)
        pid = int(rng.integers(3))
        if rng.random() < 0.5:
            v = int(rng.integers(3))
            c.update(pid, S.insert(v) if rng.random() < 0.6 else S.delete(v))
        else:
            c.query(pid, "read")
    stale = staleness_report(c.trace)
    lin = bool(trace_linearizable(c.trace, SPEC))
    c.run()
    uc_ok, _, _ = update_consistent_convergence(c, SPEC)
    return lin, stale, uc_ok


def sweep():
    rows = []
    lin_fracs = []
    for latency in LATENCIES:
        lin_count = 0
        uc_count = 0
        stale_reads = 0
        reads = 0
        for seed in range(RUNS):
            lin, stale, uc_ok = one_run(latency, seed)
            lin_count += lin
            uc_count += uc_ok
            stale_reads += stale.stale_queries
            reads += stale.queries
        lin_frac = lin_count / RUNS
        lin_fracs.append(lin_frac)
        rows.append([
            latency,
            f"{lin_frac:.0%}",
            f"{stale_reads / max(reads, 1):.0%}",
            f"{uc_count / RUNS:.0%}",
        ])
    return rows, lin_fracs


def test_linearizability_gap(benchmark, save_result):
    rows, lin_fracs = benchmark(sweep)
    save_result(
        "linearizability_gap",
        format_table(
            ["mean latency", "linearizable runs", "stale reads",
             "update-consistent"],
            rows,
            title=f"the gap, {RUNS} random runs x {OPS} ops per point",
        ),
    )
    # Near-synchronous: (almost) everything linearizes.
    assert lin_fracs[0] >= 0.9
    # Slow network: linearizability mostly gone...
    assert lin_fracs[-1] <= 0.6
    assert lin_fracs[-1] <= lin_fracs[0]
    # ...while update consistency held in every run (column always 100%).
    assert all(row[3] == "100%" for row in rows)
