"""FIG1 — regenerate the Figure 1 criterion matrix.

The paper's Fig. 1 caption classifies four histories of the shared integer
set under EC / SEC / UC / SUC (we add PC, discussed in the text for 1d):

    1a: EC only          1b: EC + SEC
    1c: EC + SEC + UC    1d: EC + SEC + UC + SUC (but not PC)

This bench reruns the exact checkers and prints/saves the same matrix;
the timing target is the full 4-history x 5-criterion classification.
"""

from __future__ import annotations

from repro.analysis import classification_matrix
from repro.paper import FIG1_BUILDERS, FIG1_EXPECTED
from repro.specs import SetSpec

SPEC = SetSpec()


def classify_all():
    return classification_matrix(
        {name: builder() for name, builder in FIG1_BUILDERS.items()}, SPEC
    )


def test_fig1_matrix(benchmark, save_result):
    table, raw = benchmark(classify_all)
    save_result("fig1_classification", table)
    for name, expected in FIG1_EXPECTED.items():
        for criterion, value in expected.items():
            assert raw[name][criterion] == value, (name, criterion)
