"""ALG1-PERF — Section VII-C: query replay cost and its optimizations.

The paper: "this algorithm re-executes all past updates each time a new
query is issued.  In an effective implementation, a process can keep
intermediate states [recomputed] only if very late messages arrive."

Series regenerated: replayed updates per query as the log grows, for

* ``naive``       — Algorithm 1 verbatim: O(log length) per query;
* ``checkpoint``  — cached prefix: O(new updates) amortized, ~flat;
* ``undo``        — Karsenty–Beaudouin-Lafon (on the counter): O(1) query;
* ``commutative`` — apply-on-receipt fast path: O(1) query, no log.

Shape asserted: naive grows linearly with the log; every optimization's
per-query replay work stays flat (zero at quiescence).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.checkpoint import CheckpointedReplica
from repro.core.commutative import CommutativeReplica
from repro.core.undo import UndoReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.specs import CounterSpec
from repro.specs import counter as C

SPEC = CounterSpec()
SIZES = (100, 400, 1600)

# fast_path=False: the counter commutes, so the universal replicas would
# otherwise auto-activate the commutative fast path and measure it instead
# of the replay machinery this bench characterizes (the fast path itself
# is the `fast` variant of benchmarks/bench_throughput.py).
FACTORIES = {
    "naive": lambda p, n: UniversalReplica(
        p, n, SPEC, track_witness=False, fast_path=False),
    "checkpoint": lambda p, n: CheckpointedReplica(
        p, n, SPEC, track_witness=False, fast_path=False),
    "undo": lambda p, n: UndoReplica(p, n, SPEC, track_witness=False),
    "commutative": lambda p, n: CommutativeReplica(p, n, SPEC),
}


def build_quiescent(kind: str, n_updates: int) -> Cluster:
    """A 2-process cluster driven to the steady state every measurement
    starts from: ``n_updates`` issued with a mid-run query (as real
    workloads have), the network drained, incremental caches warmed by one
    post-quiescence query.  Returned rather than consumed so callers can
    also read its metrics registry (``run_all.py``'s JSON artifact)."""
    c = Cluster(2, FACTORIES[kind], seed=1)
    for i in range(n_updates):
        c.update(i % 2, C.inc(1))
        if i == n_updates // 2:
            c.query(0, "read")
    c.run()
    c.query(0, "read")
    return c


def replay_cost(kind: str, n_updates: int) -> int:
    """Replay work charged to one *steady-state* query: the replica has
    answered queries before (so caches are warm where the strategy has
    them) and the network is quiescent."""
    c = build_quiescent(kind, n_updates)
    r0 = c.replicas[0]
    before = getattr(r0, "replayed_updates", 0)
    c.query(0, "read")
    return getattr(r0, "replayed_updates", 0) - before


@pytest.mark.parametrize("kind", list(FACTORIES))
def test_alg1_replay_cost(benchmark, save_result, kind):
    # Timing target: 50 queries against a 1000-update log.
    def fifty_queries():
        c = Cluster(2, FACTORIES[kind], seed=1)
        for i in range(1000):
            c.update(i % 2, C.inc(1))
        c.run()
        out = 0
        for _ in range(50):
            out = c.query(0, "read")
        return out

    assert benchmark(fifty_queries) == 1000

    series = [(size, replay_cost(kind, size)) for size in SIZES]
    rows = [[size, cost] for size, cost in series]
    save_result(
        f"alg1_replay_{kind}",
        format_table(["log length", "updates replayed by one query"], rows,
                     title=f"query replay cost — {kind}"),
    )

    costs = [cost for _, cost in series]
    if kind == "naive":
        # Linear in the log: quadrupling the log quadruples the replay.
        assert costs[0] == SIZES[0] and costs[-1] == SIZES[-1]
    else:
        # Flat: at quiescence nothing new needs replaying.
        assert all(cost == 0 for cost in costs)
