"""PROP4 — Algorithm 1 traces are strong update consistent (witness check).

Proposition 4 proves every history of Algorithm 1 is SUC by constructing
the visibility relation (message receipt) and arbitration (timestamp
order).  This bench runs the construction at n ∈ {2, 4, 8} processes under
an adversarial exponential-latency network with a crash, reconstructs the
witness from the trace, and verifies Definition 9's five conditions in
polynomial time.

Shape asserted: the witness verifies at every scale.  Timing target: the
run + witness reconstruction + verification (this is the scaling cost of
*certifying* the criterion, the practical analogue of the proof).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.criteria.witness import verify_suc_witness
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
OPS_PER_PROCESS = 6


def run_and_verify(n: int):
    c = Cluster(n, lambda pid, total: UniversalReplica(pid, total, SPEC),
                latency=ExponentialLatency(3.0), seed=n)
    for i in range(OPS_PER_PROCESS * n):
        pid = i % n
        if pid in c.crashed:
            continue
        if i % 3 == 2:
            c.query(pid, "read")
        elif i % 5 == 4:
            c.update(pid, S.delete(i % 7))
        else:
            c.update(pid, S.insert(i % 7))
        if i == OPS_PER_PROCESS:  # crash one process mid-run (n >= 2)
            c.crash(n - 1)
        if i % 4 == 0:
            c.run_until(c.now + 1.0)
    c.run()
    for pid in c.alive():
        c.query(pid, "read")
    h = c.trace.to_history()
    witness = c.trace.suc_witness(h)
    return h, verify_suc_witness(h, SPEC, witness)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_prop4_witness_verifies(benchmark, save_result, n):
    h, result = benchmark(run_and_verify, n)
    assert result, result.reason

    rows = [
        ["processes", n],
        ["events", len(h.events)],
        ["updates", len(h.updates)],
        ["queries", len(h.queries)],
        ["witness verified", bool(result)],
    ]
    save_result(
        f"prop4_n{n}",
        format_table(["metric", "value"], rows,
                     title=f"Proposition 4 witness check, n={n}"),
    )
