"""Benchmark harness plumbing.

Every bench regenerates one of the paper's artifacts (see DESIGN.md's
per-experiment index): it times the computational core with
pytest-benchmark, asserts the *shape* the paper predicts (who wins, by
roughly what factor, where the crossover falls), and saves the regenerated
rows/series under ``benchmarks/results/`` for inspection.

Run everything with::

    pytest benchmarks/ --benchmark-only

or regenerate just the tables (no timing) with ``python benchmarks/run_all.py``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save
