"""ABL-CONV — ablation: convergence time vs network latency and scale.

The motivation for weak criteria (Section I, Attiya–Welch): under strong
consistency the *response time* of operations grows with network latency;
under update consistency operations are local (latency-independent) and
it is the *convergence time* that absorbs the network delay.

Series regenerated:

* operation response time — identically zero simulated time at every
  latency (wait-freedom: queries and updates never touch the network);
* convergence time after the last update vs mean latency — grows
  linearly-ish with latency (one broadcast hop, tail of the exponential);
* convergence time vs process count at fixed latency — near-flat (the
  broadcast is one hop to everyone).
"""

from __future__ import annotations

from repro.analysis import converged, format_table
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
LATENCIES = (0.5, 2.0, 8.0)
SCALES = (2, 4, 8, 16)


def convergence_time(n: int, latency: float, seed: int = 3) -> float:
    c = Cluster(n, lambda p, total: UniversalReplica(p, total, SPEC),
                latency=ExponentialLatency(latency), seed=seed)
    for i in range(20):
        c.update(i % n, S.insert(i))
    last_update_at = c.now
    c.run()
    assert converged(c)
    return c.now - last_update_at


def test_latency_sweep(benchmark, save_result):
    benchmark(convergence_time, 4, 2.0)

    rows = []
    times = []
    for latency in LATENCIES:
        t = convergence_time(4, latency)
        times.append(t)
        rows.append([latency, 0.0, f"{t:.2f}"])
    save_result(
        "ablation_convergence_latency",
        format_table(
            ["mean latency", "op response time", "convergence time"], rows,
            title="wait-free ops vs convergence, n=4",
        ),
    )
    # Convergence time tracks latency (monotone, roughly proportional).
    assert times[0] < times[1] < times[2]
    assert times[2] / times[0] > 4  # 16x latency -> much slower convergence


def test_scale_sweep(benchmark, save_result):
    benchmark(convergence_time, 8, 2.0)

    rows = []
    times = []
    for n in SCALES:
        t = convergence_time(n, 2.0)
        times.append(t)
        rows.append([n, f"{t:.2f}"])
    save_result(
        "ablation_convergence_scale",
        format_table(["processes", "convergence time"], rows,
                     title="convergence vs scale, mean latency 2.0"),
    )
    # One-hop broadcast: convergence grows only with the max-delay tail,
    # not with n — an 8x scale-up must cost far less than 8x.
    assert times[-1] / times[0] < 4
