"""STOR — storage engine: journal appends vs full-image rewrites.

The ISSUE's acceptance shape for the durable storage engine: the old
flusher rewrote the whole JSON snapshot on every dirty flush, so the
bytes written *per update* grew linearly with the log; the journal
appends only the changed cells, so its per-update cost is flat.  And
recovery must stay practical at scale: restoring a replica from a
10⁵-update journal — digest chain verified end to end — in seconds, not
minutes.

Both benches run the journal with ``fsync=False``: the comparison is
bytes and CPU, not disk latency (the fsync cost is identical per flush
for both strategies and would only add noise).
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.core.universal import UniversalReplica
from repro.proto.wire import replica_snapshot, restore_replica
from repro.specs import SetSpec
from repro.specs import set_spec as S
from repro.storage import JournalStore

SPEC = SetSpec()

WRITE_OPS = 300
WRITE_SAMPLE = 25
RECOVERY_OPS = 100_000


def _replica(n_updates, *, n=3):
    r = UniversalReplica(0, n, SPEC, track_witness=False)
    for i in range(n_updates):
        r.on_update(S.insert(i))
    return r


def write_cost(ops: int = WRITE_OPS, sample_every: int = WRITE_SAMPLE) -> dict:
    """Bytes written per flush, journal appends vs full-image rewrites.

    Returns sampled series (update count → bytes written by that flush)
    and the first/last per-flush cost for each strategy.  The journal's
    must be flat; the snapshot rewrite's must grow linearly.
    """
    journal_series: list[tuple[int, int]] = []
    snapshot_series: list[tuple[int, int]] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-storage-") as tmp:
        r = _replica(0)
        st = JournalStore(os.path.join(tmp, "r.journal"), 0, fsync=False)
        st.open()
        st.sync(r)
        for i in range(1, ops + 1):
            r.on_update(S.insert(i))
            before = st.bytes_on_disk()
            st.sync(r)
            if i % sample_every == 0:
                journal_series.append((i, st.bytes_on_disk() - before))
                # the pre-journal flusher: serialize the entire image
                snapshot_series.append(
                    (i, len(replica_snapshot(r, version=2).encode("utf-8")))
                )
        st.close()
    return {
        "journal_bytes_per_flush": journal_series,
        "snapshot_bytes_per_flush": snapshot_series,
        "journal_first": journal_series[0][1],
        "journal_last": journal_series[-1][1],
        "snapshot_first": snapshot_series[0][1],
        "snapshot_last": snapshot_series[-1][1],
    }


def recovery_scale(ops: int = RECOVERY_OPS) -> dict:
    """Recover a replica from a ``ops``-update journal; report seconds
    and bytes on disk for the journal vs the one-shot v2 snapshot."""
    r = _replica(ops)
    with tempfile.TemporaryDirectory(prefix="repro-bench-storage-") as tmp:
        path = os.path.join(tmp, "r.journal")
        st = JournalStore(path, 0, fsync=False)
        st.open()
        st.sync(r)
        st.close()
        journal_bytes = os.path.getsize(path)

        t0 = time.perf_counter()
        st2 = JournalStore(path, 0, fsync=False)
        image = st2.open()  # scans frames, CRCs, replays the digest chain
        fresh = UniversalReplica(0, 3, SPEC, track_witness=False)
        loaded = restore_replica(fresh, image)  # re-verifies the chain
        journal_s = time.perf_counter() - t0
        st2.close()

        snap = replica_snapshot(r, version=2)
        t0 = time.perf_counter()
        fresh2 = UniversalReplica(0, 3, SPEC, track_witness=False)
        restore_replica(fresh2, snap)
        snapshot_s = time.perf_counter() - t0

    assert loaded == ops, f"journal recovery lost entries: {loaded}/{ops}"
    assert fresh.local_state() == r.local_state(), "recovered state diverged"
    assert fresh.clock.value == r.clock.value, "recovered clock diverged"
    return {
        "ops": ops,
        "journal_bytes": journal_bytes,
        "snapshot_bytes": len(snap.encode("utf-8")),
        "journal_recovery_s": journal_s,
        "snapshot_recovery_s": snapshot_s,
        "digest_verified": True,  # restore_replica raised otherwise
    }


def _assert_write_shape(doc: dict) -> None:
    # journal: flat (identical updates at a wider clock differ by a few
    # bytes); snapshot: the whole image, growing with every update
    assert doc["journal_last"] <= doc["journal_first"] + 16, (
        f"journal per-flush cost grew: {doc['journal_first']} -> "
        f"{doc['journal_last']}"
    )
    assert doc["snapshot_last"] > doc["snapshot_first"] * 4, (
        "snapshot rewrite cost should grow linearly with the log"
    )
    assert doc["journal_last"] * 4 < doc["snapshot_last"], (
        "journal appends should beat full-image rewrites at the tail"
    )


def test_write_cost_journal_flat_snapshot_linear(benchmark, save_result):
    doc = benchmark(write_cost)
    _assert_write_shape(doc)
    lines = ["updates  journal_B/flush  snapshot_B/flush"]
    for (i, jb), (_, sb) in zip(
        doc["journal_bytes_per_flush"], doc["snapshot_bytes_per_flush"]
    ):
        lines.append(f"{i:7d}  {jb:15d}  {sb:16d}")
    save_result("storage_write_cost", "\n".join(lines))


def test_recovery_at_scale(benchmark, save_result):
    # one large build, timed restore inside (pytest-benchmark reruns the
    # whole thing; keep the op count CI-sized and let run_all.py do 10⁵)
    doc = benchmark.pedantic(
        lambda: recovery_scale(ops=20_000), rounds=1, iterations=1
    )
    assert doc["digest_verified"]
    assert doc["journal_recovery_s"] < 60
    save_result(
        "storage_recovery",
        "\n".join(f"{k}: {v}" for k, v in doc.items()),
    )
