"""THROUGHPUT — Section VII-C: the replay hot path, end to end.

Where :mod:`bench_alg1_replay_cost` characterizes a single steady-state
query, this bench drives the *sustained* workload the optimizations were
built for: a 2-process cluster issuing updates with a query every
``QUERY_EVERY`` operations (the network drained between rounds, as a
live system would be).  For each variant it reports

* ops/sec             — updates + queries completed per wall second;
* query p50 / p99     — per-query latency percentiles (µs);
* replayed per query  — update-log entries folded to answer one query,
                        averaged over the run (the paper's replay
                        amplification, and the regression gate).

Variants:

* ``legacy``      — ``CheckpointedReplica(fast_path=False)``: the
                    incremental checkpoint-tree replay on its own;
* ``fast``        — ``CheckpointedReplica`` with the auto-activated
                    commutative fast path (the counter commutes);
* ``naive``       — Algorithm 1 verbatim (full replay per query);
* ``commutative`` — the log-free ``CommutativeReplica`` upper bound.

``python benchmarks/bench_throughput.py`` prints the table;
``--check`` compares replayed-per-query against
``benchmarks/baselines/throughput.json`` and exits non-zero when the
fast path regresses — CI's ``bench-throughput`` smoke step.  Only the
deterministic replay counts are gated; wall-clock numbers are reported
but never asserted against.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Any, Callable

import pytest

from repro.analysis import format_table
from repro.core.checkpoint import CheckpointedReplica
from repro.core.commutative import CommutativeReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.specs import CounterSpec
from repro.specs import counter as C

SPEC = CounterSpec()
N_PROCS = 2
N_OPS = 400
QUERY_EVERY = 10
WORKLOAD = "alg1_replay_checkpoint"
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "throughput.json"

#: Wall-clock *reference* (never called by the simulation, which runs on
#: virtual time): held so tests and ``run_all.py`` can inject a fake.
DEFAULT_TIMER = time.perf_counter

VARIANTS: dict[str, Callable[[int, int], Any]] = {
    "legacy": lambda p, n: CheckpointedReplica(
        p, n, SPEC, track_witness=False, fast_path=False),
    "fast": lambda p, n: CheckpointedReplica(p, n, SPEC, track_witness=False),
    "naive": lambda p, n: UniversalReplica(
        p, n, SPEC, track_witness=False, fast_path=False),
    "commutative": lambda p, n: CommutativeReplica(p, n, SPEC),
}


def run_workload(
    kind: str, timer: Callable[[], float] | None = None
) -> dict[str, Any]:
    """Drive the workload once; returns the cluster plus raw measurements.

    The schedule is ``bench_alg1_replay_cost``'s quiescent build with the
    mid-run query generalized to one query per ``QUERY_EVERY`` updates:
    issue a round, drain the network, query replica 0.
    """
    timer = timer if timer is not None else DEFAULT_TIMER
    c = Cluster(N_PROCS, VARIANTS[kind], seed=1)
    latencies: list[float] = []
    queries = 0
    final = 0
    t0 = timer()
    for i in range(N_OPS):
        c.update(i % N_PROCS, C.inc(1))
        if (i + 1) % QUERY_EVERY == 0:
            c.run()
            q0 = timer()
            final = c.query(0, "read")
            latencies.append(timer() - q0)
            queries += 1
    c.run()
    q0 = timer()
    final = c.query(0, "read")
    latencies.append(timer() - q0)
    queries += 1
    elapsed = timer() - t0
    return {
        "cluster": c,
        "final": final,
        "queries": queries,
        "elapsed": elapsed,
        "latencies": latencies,
    }


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[pos]


def measure(kind: str, timer: Callable[[], float] | None = None) -> dict[str, Any]:
    """One run of ``kind`` reduced to the reported metrics."""
    raw = run_workload(kind, timer)
    c = raw["cluster"]
    replayed = sum(getattr(r, "replayed_updates", 0) for r in c.replicas)
    lat = sorted(raw["latencies"])
    elapsed = raw["elapsed"]
    ops = N_OPS + raw["queries"]
    return {
        "workload": WORKLOAD,
        "kind": kind,
        "final": raw["final"],
        "ops": ops,
        "queries": raw["queries"],
        "replayed_total": replayed,
        "replayed_per_query": replayed / raw["queries"],
        "ops_per_sec": ops / elapsed if elapsed > 0 else 0.0,
        "query_p50_us": _percentile(lat, 0.50) * 1e6,
        "query_p99_us": _percentile(lat, 0.99) * 1e6,
        "cluster": c,
    }


def results_table(measurements: dict[str, dict[str, Any]]) -> str:
    rows = [
        [
            kind,
            f"{m['ops_per_sec']:.0f}",
            f"{m['query_p50_us']:.1f}",
            f"{m['query_p99_us']:.1f}",
            f"{m['replayed_per_query']:.1f}",
        ]
        for kind, m in measurements.items()
    ]
    return format_table(
        ["variant", "ops/sec", "query p50 µs", "query p99 µs",
         "replayed/query"],
        rows,
        title=f"replay hot path — {N_OPS} updates, query every {QUERY_EVERY}",
    )


# -- the regression gate ---------------------------------------------------------------


def load_baseline(path: pathlib.Path = BASELINE_PATH) -> dict[str, Any]:
    return json.loads(path.read_text())


def check_against_baseline(
    measurements: dict[str, dict[str, Any]], baseline: dict[str, Any]
) -> list[str]:
    """Deterministic regression checks; returns human-readable problems.

    Two gates, both on replay counts (wall time is too noisy for CI):
    the fast path must stay within ``tolerance`` of its recorded
    replayed-per-query, and the legacy-to-fast reduction factor must stay
    at or above ``min_reduction_factor`` (the issue's ≥10x requirement).
    """
    problems: list[str] = []
    fast = measurements["fast"]["replayed_per_query"]
    legacy = measurements["legacy"]["replayed_per_query"]
    tolerance = baseline["tolerance"]
    ceiling = baseline["replayed_per_query_fast"] + tolerance
    if fast > ceiling:
        problems.append(
            f"fast path replays {fast:.2f} updates/query, above the "
            f"recorded baseline {baseline['replayed_per_query_fast']:.2f} "
            f"(+{tolerance} tolerance)"
        )
    reduction = legacy / max(fast, tolerance)
    if reduction < baseline["min_reduction_factor"]:
        problems.append(
            f"fast path reduces replay only {reduction:.1f}x vs legacy "
            f"({legacy:.2f} -> {fast:.2f} updates/query); the gate requires "
            f">={baseline['min_reduction_factor']:.0f}x"
        )
    if legacy < baseline["replayed_per_query_legacy"] / 2:
        problems.append(
            f"legacy comparator replays only {legacy:.2f} updates/query "
            f"(recorded: {baseline['replayed_per_query_legacy']:.2f}); the "
            "workload no longer exercises replay — re-baseline"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="gate replayed-per-query against baselines/throughput.json",
    )
    parser.add_argument(
        "--profile", default=None, metavar="PREFIX",
        help="cProfile the measurement loop; writes PREFIX.pstats and "
             "PREFIX.collapsed (flamegraph.pl / speedscope input)",
    )
    opts = parser.parse_args(argv)
    from repro.obs.profiling import profiled

    with profiled(opts.profile):
        measurements = {kind: measure(kind) for kind in VARIANTS}
    print(results_table(measurements))
    if not opts.check:
        return 0
    problems = check_against_baseline(measurements, load_baseline())
    for problem in problems:
        print(f"REGRESSION: {problem}")
    if not problems:
        print(
            "bench-throughput gate ok: fast path replays "
            f"{measurements['fast']['replayed_per_query']:.2f}/query "
            f"vs legacy {measurements['legacy']['replayed_per_query']:.2f}"
        )
    return 1 if problems else 0


# -- pytest shape checks ---------------------------------------------------------------


def _fake_timer() -> Callable[[], float]:
    tick = [0.0]

    def timer() -> float:
        tick[0] += 1e-4
        return tick[0]

    return timer


@pytest.mark.parametrize("kind", list(VARIANTS))
def test_throughput_workload(benchmark, save_result, kind):
    m = benchmark(lambda: measure(kind))
    assert m["final"] == N_OPS  # every variant converges to the same counter
    save_result(
        f"throughput_{kind}",
        results_table({kind: m}),
    )


def test_replay_shape():
    # Deterministic replay counts with a fake timer: the fast path replays
    # nothing, legacy replays ~one round per query, naive replays the log.
    timer = _fake_timer()
    m = {kind: measure(kind, timer) for kind in VARIANTS}
    assert m["fast"]["replayed_per_query"] == 0
    assert m["commutative"]["replayed_per_query"] == 0
    assert m["legacy"]["replayed_per_query"] >= QUERY_EVERY / 2
    assert m["naive"]["replayed_per_query"] > m["legacy"]["replayed_per_query"]


def test_gate_passes_on_current_tree():
    timer = _fake_timer()
    measurements = {kind: measure(kind, timer) for kind in ("legacy", "fast")}
    assert check_against_baseline(measurements, load_baseline()) == []


def test_gate_detects_fast_path_regression():
    baseline = load_baseline()
    regressed = {
        "legacy": {"replayed_per_query": baseline["replayed_per_query_legacy"]},
        "fast": {"replayed_per_query": baseline["replayed_per_query_legacy"]},
    }
    problems = check_against_baseline(regressed, baseline)
    assert problems and any("fast path" in p for p in problems)


def test_gate_detects_hollow_workload():
    baseline = load_baseline()
    hollow = {
        "legacy": {"replayed_per_query": 0.0},
        "fast": {"replayed_per_query": 0.0},
    }
    problems = check_against_baseline(hollow, baseline)
    assert any("re-baseline" in p for p in problems)


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
