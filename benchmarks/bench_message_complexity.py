"""MSG — Section VII-C's network complexity claims.

* "A unique message is broadcast for each update": with point-to-point
  channels that is exactly n-1 sends per update, 0 per query.
* "each message only contains ... a timestamp composed of two integer
  values, that only grow logarithmically with the number of processes and
  the number of operations": timestamp bits ~ log2(ops) + log2(n).

Series regenerated: sends-per-update and max timestamp bits over a sweep
of (processes, operations); plus the contrast with the OR-set, whose
delete payloads carry observed tag sets (the payload-size advantage of
the universal construction on delete-heavy workloads).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import collect_message_stats, format_table, payload_size_bits
from repro.core.universal import UniversalReplica
from repro.crdt import ORSetReplica
from repro.sim import Cluster
from repro.sim.network import ExponentialLatency
from repro.sim.workload import conflict_heavy_set_workload, run_workload
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
SWEEP = [(2, 100), (4, 100), (8, 100), (4, 1000), (4, 10_000)]


def measure_cluster(n: int, ops: int) -> Cluster:
    """The sweep workload, returning the finished cluster (so callers can
    read both its message stats and its metrics registry)."""
    c = Cluster(n, lambda p, total: UniversalReplica(p, total, SPEC))
    for i in range(ops):
        c.update(i % n, S.insert(i % 10))
        if i % 50 == 0:
            c.run()
    c.run()
    c.query(0, "read")
    return c


def measure(n: int, ops: int):
    return collect_message_stats(measure_cluster(n, ops))


def test_message_complexity_sweep(benchmark, save_result):
    stats_last = benchmark(measure, 4, 1000)
    assert stats_last.broadcast_optimal()

    rows = []
    for n, ops in SWEEP:
        st = measure(n, ops)
        bound = math.log2(max(st.updates * n, 2)) + math.log2(n) + 2
        rows.append(
            [n, ops, st.messages_sent, f"{st.sends_per_update:.0f}",
             st.max_timestamp_bits, f"{bound:.1f}"]
        )
        assert st.broadcast_optimal(), (n, ops)
        assert st.max_timestamp_bits <= bound, (n, ops)

    save_result(
        "message_complexity",
        format_table(
            ["n", "updates", "msgs sent", "sends/update",
             "max ts bits", "log bound"],
            rows,
            title="one broadcast per update; timestamps grow logarithmically",
        ),
    )


def test_payload_size_vs_or_set(benchmark, save_result):
    """Algorithm 1's payloads stay flat; OR-set deletes grow with the
    number of observed tags on churn-heavy elements."""
    wl = [w for w in conflict_heavy_set_workload(3, 300, support=2, seed=7)
          if w.is_update]

    def run_both():
        sizes = {}
        for name, factory in (
            ("universal", lambda p, n: UniversalReplica(p, n, SPEC)),
            ("or-set", lambda p, n: ORSetReplica(p, n)),
        ):
            c = Cluster(3, factory, latency=ExponentialLatency(40.0), seed=7)
            payload_bits = []
            orig_send = c.network.send

            def send(src, dst, payload, now, _orig=orig_send, _bits=payload_bits):
                _bits.append(payload_size_bits(payload))
                return _orig(src, dst, payload, now)

            c.network.send = send
            run_workload(c, wl)
            sizes[name] = (max(payload_bits), sum(payload_bits) / len(payload_bits))
        return sizes

    sizes = benchmark(run_both)
    rows = [[k, f"{v[1]:.0f}", v[0]] for k, v in sizes.items()]
    save_result(
        "payload_sizes",
        format_table(["system", "avg payload bits", "max payload bits"], rows,
                     title="payload size, churn-heavy set workload"),
    )
    # Shape: the universal construction's *max* payload stays below the
    # OR-set's (whose deletes ship observed-tag sets under churn).
    assert sizes["universal"][0] <= sizes["or-set"][0]
