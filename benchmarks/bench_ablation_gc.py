"""ABL-GC — ablation: stable-prefix garbage collection bounds the log.

Section VII-C: "asynchrony is used as a convenient abstraction for systems
in which transmission delays are actually bounded ... after some time old
messages can be garbage collected."

Series regenerated: live log length vs operations issued, with GC off
(plain Algorithm 1: grows linearly forever) and on (bounded by the
in-flight window).  Shape asserted: the GC'd log stays below a small
constant fraction of the naive one while the final states agree.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.adt import _canonical
from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.specs import SetSpec
from repro.specs import set_spec as S

SPEC = SetSpec()
CHECKPOINTS = (100, 200, 400, 800)


def run_with_log_series(kind: str):
    if kind == "gc":
        factory = lambda p, n: GarbageCollectedReplica(
            p, n, SPEC, gc_interval=16, track_witness=False
        )
    else:
        factory = lambda p, n: UniversalReplica(p, n, SPEC, track_witness=False)
    c = Cluster(3, factory, fifo=True, seed=5)
    series = []
    ops = 0
    for target in CHECKPOINTS:
        while ops < target:
            c.update(ops % 3, S.insert(ops % 9) if ops % 2 else S.delete(ops % 9))
            ops += 1
            if ops % 4 == 0:
                c.run()
        c.run()
        if kind == "gc":
            length = max(r.live_log_length for r in c.replicas)
        else:
            length = max(len(r.updates) for r in c.replicas)
        series.append((target, length))
    return c, series


def test_gc_bounds_log(benchmark, save_result):
    c_gc, gc_series = benchmark(run_with_log_series, "gc")
    c_naive, naive_series = run_with_log_series("naive")

    rows = [
        [ops, naive_len, gc_len]
        for (ops, naive_len), (_, gc_len) in zip(naive_series, gc_series)
    ]
    save_result(
        "ablation_gc",
        format_table(["updates issued", "naive log", "gc log"], rows,
                     title="stable-prefix GC bounds the update log"),
    )

    # Naive grows linearly with the history.
    assert naive_series[-1][1] == CHECKPOINTS[-1]
    # GC'd log is bounded by the in-flight window, far below the history.
    assert gc_series[-1][1] <= CHECKPOINTS[-1] // 4
    # The dedup structures obey the same bound: ids at or below the GC
    # floor are covered implicitly, so the enumerated known set must not
    # quietly re-grow O(total updates) (it did before it was pruned —
    # GC's memory bound was cosmetic).
    assert all(
        r.known_ids_tracked <= CHECKPOINTS[-1] // 4 for r in c_gc.replicas
    ), [r.known_ids_tracked for r in c_gc.replicas]
    # And the semantics did not change.
    assert {_canonical(s) for s in c_gc.states().values()} == {
        _canonical(s) for s in c_naive.states().values()
    }
