"""ABL-BATCH — ablation: batch-folded replay vs per-update apply calls.

The hpc-parallel rulebook: measure first, then vectorize the hot loop.
Algorithm 1's hot loop is the replay fold; ``UQADT.apply_batch`` lets each
spec fold a whole log at once (numpy delta sum for the counter, single
concatenation for the log, reverse membership pass for the set).

Series regenerated: wall-clock of one full replay at log length 20 000,
batch vs loop, per spec.  Shape asserted: batch never loses, and wins by
a large factor on the specs with real fast paths (the log's naive fold is
quadratic, so its factor grows with the log).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.specs import CounterSpec, LogSpec, MemorySpec, SetSpec
from repro.specs import counter as C
from repro.specs import log_spec as L
from repro.specs import register as R
from repro.specs import set_spec as S

LOG_LEN = 20_000


def make_updates(spec_name: str):
    if spec_name == "counter":
        return [C.inc(1) if i % 3 else C.dec(1) for i in range(LOG_LEN)]
    if spec_name == "set":
        return [
            S.insert(i % 50) if i % 4 else S.delete(i % 50) for i in range(LOG_LEN)
        ]
    if spec_name == "log":
        return [L.append(i) for i in range(LOG_LEN)]
    if spec_name == "memory":
        return [R.mem_write(i % 50, i) for i in range(LOG_LEN)]
    raise ValueError(spec_name)


SPECS = {
    "counter": CounterSpec,
    "set": SetSpec,
    "log": LogSpec,
    "memory": MemorySpec,
}


def loop_fold(spec, updates):
    state = spec.initial_state()
    for u in updates:
        state = spec.apply(state, u)
    return state


@pytest.mark.parametrize("name", list(SPECS))
def test_batch_vs_loop(benchmark, save_result, name):
    spec = SPECS[name]()
    updates = make_updates(name)

    batch_state = benchmark(spec.apply_batch, spec.initial_state(), updates)

    t0 = time.perf_counter()
    loop_state = loop_fold(spec, updates)
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    spec.apply_batch(spec.initial_state(), updates)
    batch_s = time.perf_counter() - t0

    assert spec.canonical(batch_state) == spec.canonical(loop_state)

    speedup = loop_s / batch_s if batch_s > 0 else float("inf")
    save_result(
        f"ablation_batch_{name}",
        format_table(
            ["fold", "seconds"],
            [["per-update apply", f"{loop_s:.4f}"],
             ["apply_batch", f"{batch_s:.4f}"],
             ["speedup", f"{speedup:.1f}x"]],
            title=f"replay fold, {LOG_LEN} updates — {name}",
        ),
    )

    # Shape: batch at least competitive everywhere, decisively faster on
    # the specs whose naive fold copies state per update (the log's is
    # quadratic; the set/memory copy per call); the counter's fold is a
    # plain integer add, so only call overhead is saved there.
    if name == "log":
        assert speedup > 20, speedup
    elif name in ("set", "memory"):
        assert speedup > 2, speedup
    else:
        assert speedup > 0.8, speedup
