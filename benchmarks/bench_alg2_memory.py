"""ALG2-PERF — Algorithm 2's O(1) operations vs Algorithm 1 on the memory.

The paper: "[Algorithm 2] only needs constant computation time for both
the reads and the writes, and the complexity in memory only grows
logarithmically with time and the number of participants."

Series regenerated:

* per-read work (updates replayed) as the write log grows —
  Algorithm 1 on MemorySpec grows linearly, Algorithm 2 stays at zero;
* resident state — Algorithm 1 keeps every write, Algorithm 2 one slot
  per register regardless of operation count.

Shape asserted: exactly those growth curves; plus wall-clock: Algorithm 2
reads are measurably faster on a 2000-write history (factor asserted
loosely at >= 5x via replay counts, wall-clock reported by the harness).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.memory import MemoryReplica
from repro.core.universal import UniversalReplica
from repro.sim import Cluster
from repro.specs import MemorySpec
from repro.specs import register as R

SPEC = MemorySpec()
REGISTERS = 8
SIZES = (100, 400, 1600)


def build(kind: str, writes: int):
    if kind == "alg1":
        c = Cluster(2, lambda p, n: UniversalReplica(p, n, SPEC, track_witness=False))
    else:
        c = Cluster(2, lambda p, n: MemoryReplica(p, n))
    for i in range(writes):
        c.update(i % 2, R.mem_write(i % REGISTERS, i))
    c.run()
    return c


@pytest.mark.parametrize("kind", ["alg1", "alg2"])
def test_alg2_read_cost(benchmark, save_result, kind):
    c = build(kind, 2000)

    def hundred_reads():
        out = None
        for i in range(100):
            out = c.query(0, "read", (i % REGISTERS,))
        return out

    benchmark(hundred_reads)

    rows = []
    for size in SIZES:
        cb = build(kind, size)
        r0 = cb.replicas[0]
        before = getattr(r0, "replayed_updates", 0)
        cb.query(0, "read", (0,))
        replayed = getattr(r0, "replayed_updates", 0) - before
        resident = (
            r0.register_count if kind == "alg2" else len(r0.updates)
        )
        rows.append([size, replayed, resident])

    save_result(
        f"alg2_memory_{kind}",
        format_table(
            ["writes", "replayed per read", "resident entries"], rows,
            title=f"shared memory — {kind}",
        ),
    )

    if kind == "alg1":
        assert rows[-1][1] == SIZES[-1]          # replay linear in writes
        assert rows[-1][2] == SIZES[-1]          # log keeps every write
    else:
        assert all(r[1] == 0 for r in rows)      # O(1) reads
        assert all(r[2] == REGISTERS for r in rows)  # space = registers
