"""LWW-element-Set [Shapiro et al. 2011] — timestamps arbitrate conflicts.

Each element carries the stamp of the last operation that touched it; the
later stamp wins (ties cannot occur with Lamport ``(clock, pid)`` stamps).
``bias`` selects the winner between an insert and a delete carrying the
*same* stamp in exotic encodings — kept for API fidelity with the
literature, unreachable with our stamps but exercised in unit tests via
direct state manipulation.

The LWW set is eventually consistent and, unlike the OR-Set, its
converged state *is* explained by a linearization of the updates (sort by
stamp — the same trick as Algorithm 2), making it update consistent for
the set semantics.  What it loses against the universal construction is
generality, not correctness: the per-element LWW trick only works because
set updates on distinct elements commute and same-element updates are
overwrite-like.  The case-study bench shows LWW-Set and UC-Set agreeing
on final states while OR-/PN-/2P-Set diverge from every linearization.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica

Stamp = tuple[int, int]


class LWWSetReplica(OpBasedReplica):
    """Element -> (stamp, present?); highest stamp wins."""

    def __init__(self, pid: int, n: int, bias: str = "insert") -> None:
        super().__init__(pid, n)
        if bias not in ("insert", "delete"):
            raise ValueError(f"bias must be 'insert' or 'delete', got {bias!r}")
        self.bias = bias
        #: element -> (stamp, present flag).
        self.slots: dict[Hashable, tuple[Stamp, bool]] = {}

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "insert", "delete")
        (v,) = update.args
        ts = self._stamp()
        present = update.name == "insert"
        self._store(v, (ts.clock, ts.pid), present)
        return [(ts.clock, ts.pid, v, present)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, j, v, present = payload
        self._merge(cl)
        self._store(v, (cl, j), present)
        return ()

    def _store(self, v: Hashable, stamp: Stamp, present: bool) -> None:
        slot = self.slots.get(v)
        if slot is None or slot[0] < stamp:
            self.slots[v] = (stamp, present)
        elif slot[0] == stamp and slot[1] != present:
            # Unreachable with Lamport stamps; resolved by the bias.
            self.slots[v] = (stamp, self.bias == "insert")

    def value(self) -> frozenset:
        return frozenset(v for v, (_, present) in self.slots.items() if present)
