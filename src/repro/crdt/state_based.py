"""State-based (convergent) CRDTs with gossip replication.

[Shapiro et al. 2011], cited by the paper, gives two sufficient conditions
for an eventually consistent implementation: commuting updates
(operation-based, the rest of :mod:`repro.crdt`) or **reachable states
forming a semi-lattice** with updates inflationary and replicas merging
by join.  This module implements the second style:

* a :class:`JoinSemilattice` describes the payload: bottom element, the
  join (``merge``), the user-facing ``value`` projection, and how each
  update inflates the payload;
* :class:`StateBasedReplica` holds the payload and **does not broadcast
  on update** — anti-entropy happens in explicit gossip rounds that ship
  the whole payload (:func:`gossip_round`).

The trade-off against the operation-based universal construction is the
point of the ``bench_ablation_gossip`` ablation: state-based replication
sends fewer, bigger messages and converges only as fast as the gossip
cadence, while Algorithm 1 broadcasts one small message per update and
converges in one network hop.

Idempotent joins make gossip robust to duplication and reordering — no
reliable-broadcast assumption at all (the reason Dynamo-style systems
love this style).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.sim.cluster import Cluster
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock


class JoinSemilattice:
    """A join-semilattice payload with inflationary update application."""

    def bottom(self, n: int) -> Any:
        """The least element (``n`` = process count, for vector shapes)."""
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        """The join (least upper bound).  Commutative, associative,
        idempotent — the properties the convergence tests check."""
        raise NotImplementedError

    def update(self, state: Any, pid: int, update: Update) -> Any:
        """Apply a local update; must be inflationary (result ⊒ state)."""
        raise NotImplementedError

    def value(self, state: Any) -> Any:
        """The user-facing value of a payload."""
        raise NotImplementedError

    def leq(self, a: Any, b: Any) -> bool:
        """The lattice order (default: via the join)."""
        return self.merge(a, b) == b


class GSetLattice(JoinSemilattice):
    """Grow-only set: payload = frozenset, join = union."""

    def bottom(self, n: int) -> frozenset:
        return frozenset()

    def merge(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def update(self, state: frozenset, pid: int, update: Update) -> frozenset:
        if update.name != "insert":
            raise ValueError(f"g-set lattice supports insert only, got {update.name!r}")
        (v,) = update.args
        return state | {v}

    def value(self, state: frozenset) -> frozenset:
        return state


class TwoPhaseSetLattice(JoinSemilattice):
    """2P-Set: payload = (added, removed), join = pairwise union."""

    def bottom(self, n: int) -> tuple[frozenset, frozenset]:
        return (frozenset(), frozenset())

    def merge(self, a, b):
        return (a[0] | b[0], a[1] | b[1])

    def update(self, state, pid: int, update: Update):
        (v,) = update.args
        added, removed = state
        if update.name == "insert":
            return (added | {v}, removed)
        if update.name == "delete":
            return (added, removed | {v})
        raise ValueError(f"unknown 2p-set update {update.name!r}")

    def value(self, state) -> frozenset:
        added, removed = state
        return added - removed


class PNCounterLattice(JoinSemilattice):
    """PN-counter: payload = (P vector, N vector), join = pointwise max."""

    def bottom(self, n: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return (tuple([0] * n), tuple([0] * n))

    def merge(self, a, b):
        return (
            tuple(max(x, y) for x, y in zip(a[0], b[0])),
            tuple(max(x, y) for x, y in zip(a[1], b[1])),
        )

    def update(self, state, pid: int, update: Update):
        (k,) = update.args
        if k < 0:
            raise ValueError("amounts are positive; use dec to subtract")
        pos, neg = state
        if update.name == "inc":
            pos = pos[:pid] + (pos[pid] + k,) + pos[pid + 1 :]
        elif update.name == "dec":
            neg = neg[:pid] + (neg[pid] + k,) + neg[pid + 1 :]
        else:
            raise ValueError(f"unknown counter update {update.name!r}")
        return (pos, neg)

    def value(self, state) -> int:
        pos, neg = state
        return sum(pos) - sum(neg)


class LWWMapLattice(JoinSemilattice):
    """LWW map: key -> (stamp, value-or-tombstone); join keeps max stamps.

    The stamp is supplied by the replica's Lamport clock through the
    update's extra args (the replica wires it in), keeping the lattice
    itself deterministic and wall-clock-free.
    """

    TOMBSTONE = "<tombstone>"

    def bottom(self, n: int) -> tuple:
        return ()

    def _as_dict(self, state: tuple) -> dict:
        return dict(state)

    def _freeze(self, d: dict) -> tuple:
        return tuple(sorted(d.items()))

    def merge(self, a: tuple, b: tuple) -> tuple:
        out = self._as_dict(a)
        for k, (stamp, v) in self._as_dict(b).items():
            if k not in out or out[k][0] < stamp:
                out[k] = (stamp, v)
        return self._freeze(out)

    def update(self, state: tuple, pid: int, update: Update) -> tuple:
        if update.name == "put":
            k, v, stamp = update.args
        elif update.name == "remove":
            k, stamp = update.args
            v = self.TOMBSTONE
        else:
            raise ValueError(f"unknown map update {update.name!r}")
        out = self._as_dict(state)
        if k not in out or out[k][0] < tuple(stamp):
            out[k] = (tuple(stamp), v)
        return self._freeze(out)

    def value(self, state: tuple) -> dict:
        return {
            k: v for k, (_, v) in self._as_dict(state).items()
            if v != self.TOMBSTONE
        }


class StateBasedReplica(Replica):
    """A replica holding a lattice payload, replicated by gossip.

    ``on_update`` inflates the local payload and sends **nothing**; call
    :meth:`gossip_payload` (or the :func:`gossip_round` driver) to ship
    the payload; ``on_message`` joins whatever arrives, idempotently.
    """

    def __init__(self, pid: int, n: int, lattice: JoinSemilattice) -> None:
        super().__init__(pid, n)
        self.lattice = lattice
        self.clock = LamportClock(pid)  # for LWW-style stamped updates
        self.state = lattice.bottom(n)
        self.merges = 0
        self.noop_merges = 0  # joins that changed nothing (gossip waste)

    def on_update(self, update: Update) -> Sequence[Any]:
        self.clock.tick()
        self.state = self.lattice.update(self.state, self.pid, update)
        return ()  # state-based: nothing on the wire per update

    def stamp(self) -> tuple[int, int]:
        """A fresh (clock, pid) stamp for LWW-style lattice updates."""
        ts = self.clock.tick()
        return (ts.clock, ts.pid)

    def on_message(self, src: int, payload: Any) -> Sequence[Any]:
        merged = self.lattice.merge(self.state, payload)
        self.merges += 1
        if merged == self.state:
            self.noop_merges += 1
        self.state = merged
        return ()

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "read":
            return self.lattice.value(self.state)
        if name == "contains":
            (v,) = args
            return v in self.lattice.value(self.state)
        raise ValueError(f"unknown state-based query {name!r}")

    def gossip_payload(self) -> Any:
        return self.state

    def local_state(self) -> Any:
        return self.lattice.value(self.state)


def gossip_round(cluster: Cluster, *, pids: Sequence[int] | None = None) -> int:
    """One anti-entropy round: every (selected) correct replica broadcasts
    its full payload.  Returns the number of messages enqueued."""
    targets = cluster.alive() if pids is None else [p for p in pids if p in cluster.alive()]
    sent = 0
    for pid in targets:
        replica = cluster.replicas[pid]
        payload = replica.gossip_payload()
        sent += len(cluster.network.broadcast(pid, payload, cluster.now))
    return sent
