"""G-Set — the grow-only set [Shapiro et al. 2011], simplest CRDT.

Insertions of distinct elements commute and repeated insertions are
idempotent, so set-union on receipt converges.  There is no delete: the
type dodges the insert/delete conflict rather than resolving it.  Per
Section VII-C this commutative object is already update consistent under
apply-on-receipt — tested against the exact UC checker.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica


class GSetReplica(OpBasedReplica):
    """Grow-only set replica: state is the union of all heard insertions."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.elements: set = set()

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "insert")
        (v,) = update.args
        ts = self._stamp()
        self.elements.add(v)
        return [(ts.clock, ts.pid, v)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, _j, v = payload
        self._merge(cl)
        self.elements.add(v)
        return ()

    def value(self) -> frozenset:
        return frozenset(self.elements)
