"""Shared machinery for operation-based CRDT replicas.

All the Section VI types are implemented operation-based: the issuing
replica applies the operation locally, stamps it with its Lamport clock
(giving a deterministic, seed-reproducible notion of "last writer" — no
wall clocks anywhere in the repo) and broadcasts one payload; receivers
apply it commutatively.  The simulator's reliable exactly-once channels
are precisely the delivery guarantee op-based CRDTs assume.

Set replicas answer the same query vocabulary as
:class:`repro.specs.set_spec.SetSpec` (``read``, ``contains``) so one
workload runs unchanged against every implementation and against the
universal construction — the comparison the case-study bench prints.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock, Timestamp


def tag_sort_key(tag: tuple[int, int]) -> tuple[int, int]:
    """Sorting key for ``(clock, pid)`` tags (total, deterministic)."""
    return tag


class OpBasedReplica(Replica):
    """Base class: Lamport stamping + witness metadata plumbing."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.clock = LamportClock(pid)
        self._last_meta: dict[str, Any] = {}

    def _stamp(self) -> Timestamp:
        ts = self.clock.tick()
        self._last_meta = {"timestamp": (ts.clock, ts.pid)}
        return ts

    def _merge(self, clock_value: int) -> None:
        self.clock.merge(clock_value)

    def witness_meta(self) -> dict[str, Any]:
        meta, self._last_meta = self._last_meta, {}
        return meta

    # -- set query vocabulary (shared by all set CRDTs) --------------------------

    def value(self) -> frozenset:
        """The set value; set subclasses implement this one method."""
        raise NotImplementedError

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        self._stamp()
        if name == "read":
            return self.value()
        if name == "contains":
            (v,) = args
            return v in self.value()
        raise ValueError(f"unknown set query {name!r}")

    def local_state(self) -> frozenset:
        return self.value()

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _expect(update: Update, *names: str) -> None:
        if update.name not in names:
            raise ValueError(
                f"unsupported update {update.name!r}; expected one of {names}"
            )
