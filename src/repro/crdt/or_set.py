"""OR-Set (Observed-Remove / Insert-wins set) [Shapiro et al. 2011;
Mukund et al. 2014] — "the best documented algorithm for the set".

Every insertion carries a globally unique tag (here the Lamport stamp of
the insert, unique by construction).  A delete black-lists only the tags
*observed locally* at issue time; an element is present iff it has a live
(non-black-listed) tag.  Consequence: when an insert and a delete of the
same element are concurrent, the delete cannot have observed the insert's
tag, so the insert survives — *insert wins*.

This is the concurrent specification of Definition 10.  Section VI's
Proposition 3 shows a strong-update-consistent set can always substitute
for it; the converse fails — the OR-Set is **not** update consistent,
which the Fig. 1b scenario exhibits: run concurrently, the four updates
I(1)·D(2) ‖ I(2)·D(1) leave the OR-Set at {1, 2}, a state no linearization
of the updates reaches (every linearization ends with a deletion).  Both
facts are tested and benchmarked.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica

Tag = tuple[int, int]


class ORSetReplica(OpBasedReplica):
    """Tagged inserts + observed-tag tombstones; insert wins under conflict."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        #: element -> set of live insertion tags.
        self.tags: defaultdict[Hashable, set[Tag]] = defaultdict(set)
        #: all tombstoned tags (kept to make delivery order-insensitive).
        self.tombstones: set[Tag] = set()

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "insert", "delete")
        (v,) = update.args
        ts = self._stamp()
        if update.name == "insert":
            tag = (ts.clock, ts.pid)
            self.tags[v].add(tag)
            return [("ins", ts.clock, ts.pid, v, tag)]
        observed = frozenset(self.tags[v])  # delete only what was observed
        self.tags[v].clear()
        self.tombstones.update(observed)
        return [("del", ts.clock, ts.pid, v, observed)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        kind, cl, _j, v, data = payload
        self._merge(cl)
        if kind == "ins":
            if data not in self.tombstones:
                self.tags[v].add(data)
        else:
            self.tombstones.update(data)
            self.tags[v] -= data
        return ()

    def value(self) -> frozenset:
        return frozenset(v for v, tags in self.tags.items() if tags)

    @property
    def tombstone_count(self) -> int:
        return len(self.tombstones)
