"""2P-Set (Two-Phase Set, a.k.a. U-Set) [Wuu & Bernstein 1986].

Two G-Sets: a white list ``added`` of inserted elements and a black list
``removed`` of deleted ones (tombstones).  An element is present iff
inserted and never deleted — so *deletion is forever*: an element whose
tombstone exists can never be re-inserted, the type's well-known
behavioural wart.  The case-study bench exhibits it on re-insertion
workloads where the update-consistent set happily resurrects elements.

Following the literature, a remove is accepted only for locally visible
elements (remove of a never-seen element is a no-op precondition
violation; we record the tombstone anyway when broadcast reaches us, as
tombstones commute).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica


class TwoPhaseSetReplica(OpBasedReplica):
    """White list + tombstone black list; delete wins forever."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.added: set = set()
        self.removed: set = set()

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "insert", "delete")
        (v,) = update.args
        ts = self._stamp()
        if update.name == "insert":
            self.added.add(v)
        else:
            self.removed.add(v)
        return [(ts.clock, ts.pid, update.name, v)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, _j, name, v = payload
        self._merge(cl)
        if name == "insert":
            self.added.add(v)
        else:
            self.removed.add(v)
        return ()

    def value(self) -> frozenset:
        return frozenset(self.added - self.removed)
