"""LWW-register: a single register resolved by last-writer-wins stamps.

This is Algorithm 2 restricted to one register — included in the zoo so
register workloads can compare the CRDT-framed implementation with
:class:`repro.core.memory.MemoryReplica` (they must agree operation for
operation, which the tests assert).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica

Stamp = tuple[int, int]


class LWWRegisterReplica(OpBasedReplica):
    """Single value + stamp; higher stamp overwrites."""

    def __init__(self, pid: int, n: int, initial: Any = None) -> None:
        super().__init__(pid, n)
        self.initial = initial
        self.stamp: Stamp = (0, -1)
        self.current: Any = initial

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "write")
        (v,) = update.args
        ts = self._stamp()
        self._store((ts.clock, ts.pid), v)
        return [(ts.clock, ts.pid, v)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, j, v = payload
        self._merge(cl)
        self._store((cl, j), v)
        return ()

    def _store(self, stamp: Stamp, v: Any) -> None:
        if stamp > self.stamp:
            self.stamp = stamp
            self.current = v

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        self._stamp()
        if name == "read":
            return self.current
        raise ValueError(f"unknown register query {name!r}")

    def local_state(self) -> Any:
        return self.current

    def value(self) -> Any:
        return self.current
