"""C-Set [Aslan et al., RED 2011] — counters with locally clamped deletes.

Like the PN-Set, each element carries a counter, but an operation is only
issued when it locally changes membership: an insert is broadcast with
effect +1 only if the element is locally absent, a delete with effect -1
only if locally present.  The intent was to avoid PN-Set's negative
counters; the price, pointed out in later analyses (and the cited
criticism around [Bieniusa et al. 2012]), is that the *decision* depends
on local state at issue time.  In this delta formulation the replicas
still converge (the committed deltas commute), but concurrent operations
commit asymmetric effects: counters can reach 2 and then need two deletes,
and an operation whose local precondition fails is *silently dropped* —
the user's insert or delete simply never happened anywhere.

We reproduce the type faithfully, anomalies included — the case-study
bench counts both the non-linearizable final states of the zoo and the
operations the C-Set silently loses.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica


class CSetReplica(OpBasedReplica):
    """Per-element counter; ops are issued conditionally on local state."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.counts: defaultdict = defaultdict(int)
        self.suppressed = 0  # ops that had no local effect and were not sent

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "insert", "delete")
        (v,) = update.args
        ts = self._stamp()
        if update.name == "insert":
            if self.counts[v] > 0:
                self.suppressed += 1  # already present: no-op, nothing sent
                return []
            delta = 1
        else:
            if self.counts[v] <= 0:
                self.suppressed += 1  # already absent: no-op, nothing sent
                return []
            delta = -1
        self.counts[v] += delta
        return [(ts.clock, ts.pid, v, delta)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, _j, v, delta = payload
        self._merge(cl)
        self.counts[v] += delta
        return ()

    def value(self) -> frozenset:
        return frozenset(v for v, c in self.counts.items() if c > 0)
