"""G-Counter and PN-Counter — the textbook commutative CRDTs.

The counter is the paper's first example of a "pure CRDT" (Section VII-C):
all updates commute, so apply-on-receipt is already update consistent.
The G-Counter keeps one component per process (grow-only vector, value =
sum); the PN-Counter is a pair of G-Counters (increments, decrements).

These replicas answer :class:`repro.specs.counter.CounterSpec`'s query
vocabulary so the commutative fast-path benches can swap them in.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica


class GCounterReplica(OpBasedReplica):
    """Grow-only counter: per-process increment components."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.components = [0] * n

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "inc")
        (k,) = update.args
        if k < 0:
            raise ValueError("G-Counter only grows; use PN-Counter to decrement")
        ts = self._stamp()
        self.components[self.pid] += k
        return [(ts.clock, ts.pid, k)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, j, k = payload
        self._merge(cl)
        self.components[j] += k
        return ()

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        self._stamp()
        if name == "read":
            return sum(self.components)
        if name == "sign":
            total = sum(self.components)
            return 0 if total == 0 else 1
        raise ValueError(f"unknown counter query {name!r}")

    def local_state(self) -> int:
        return sum(self.components)

    def value(self) -> int:  # not a set type; keep the introspection useful
        return sum(self.components)


class PNCounterReplica(OpBasedReplica):
    """Increment/decrement counter: two grow-only component vectors."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.pos = [0] * n
        self.neg = [0] * n

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "inc", "dec")
        (k,) = update.args
        ts = self._stamp()
        if update.name == "inc":
            self.pos[self.pid] += k
        else:
            self.neg[self.pid] += k
        return [(ts.clock, ts.pid, update.name, k)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, j, name, k = payload
        self._merge(cl)
        if name == "inc":
            self.pos[j] += k
        else:
            self.neg[j] += k
        return ()

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        self._stamp()
        total = sum(self.pos) - sum(self.neg)
        if name == "read":
            return total
        if name == "sign":
            return 0 if total == 0 else (1 if total > 0 else -1)
        raise ValueError(f"unknown counter query {name!r}")

    def local_state(self) -> int:
        return sum(self.pos) - sum(self.neg)

    def value(self) -> int:
        return self.local_state()
