"""The Section VI baselines: eventually consistent replicated data types.

These are the set implementations the paper's case study surveys —
G-Set, 2P-Set (U-Set), PN-Set, C-Set, OR-Set (the Insert-wins set) and the
LWW-element-Set — plus the classic counters and registers, all as
:class:`repro.sim.replica.Replica` implementations runnable on the same
simulated cluster as the universal construction.

Each type documents its conflict-resolution policy and the behavioural
difference from the update-consistent set: they all converge (except the
C-Set, whose clamping anomaly is reproduced faithfully), but to states the
*sequential* specification may not be able to explain — e.g. the OR-Set
converges to {1, 2} on the Fig. 1b scenario even though every
linearization of the four updates ends with a deletion.
"""

from repro.crdt.base import OpBasedReplica, tag_sort_key
from repro.crdt.gset import GSetReplica
from repro.crdt.two_phase_set import TwoPhaseSetReplica
from repro.crdt.pn_set import PNSetReplica
from repro.crdt.c_set import CSetReplica
from repro.crdt.or_set import ORSetReplica
from repro.crdt.lww_set import LWWSetReplica
from repro.crdt.counters import GCounterReplica, PNCounterReplica
from repro.crdt.lww_register import LWWRegisterReplica
from repro.crdt.mv_register import MVRegisterReplica
from repro.crdt.state_based import (
    GSetLattice,
    JoinSemilattice,
    LWWMapLattice,
    PNCounterLattice,
    StateBasedReplica,
    TwoPhaseSetLattice,
    gossip_round,
)

#: All set CRDTs, keyed by their Section VI names (bench table rows).
SET_CRDTS = {
    "G-Set": GSetReplica,
    "2P-Set": TwoPhaseSetReplica,
    "PN-Set": PNSetReplica,
    "C-Set": CSetReplica,
    "OR-Set": ORSetReplica,
    "LWW-Set": LWWSetReplica,
}

__all__ = [
    "OpBasedReplica",
    "tag_sort_key",
    "GSetReplica",
    "TwoPhaseSetReplica",
    "PNSetReplica",
    "CSetReplica",
    "ORSetReplica",
    "LWWSetReplica",
    "GCounterReplica",
    "PNCounterReplica",
    "LWWRegisterReplica",
    "MVRegisterReplica",
    "SET_CRDTS",
    "JoinSemilattice",
    "StateBasedReplica",
    "GSetLattice",
    "TwoPhaseSetLattice",
    "PNCounterLattice",
    "LWWMapLattice",
    "gossip_round",
]
