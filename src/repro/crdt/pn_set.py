"""PN-Set: a signed counter per element.

Insert adds +1 to the element's counter, delete adds -1; the element is
present iff its counter is strictly positive.  Counters commute, so the
type converges — but to states with surprising semantics: two concurrent
inserts need *two* deletes to remove the element, and a delete racing an
insert can drive the counter negative, making a subsequent single insert
a no-op.  These anomalies are exactly the "different behavior when used in
distributed programs" Section VI warns about, and the case-study bench
surfaces them next to the update-consistent set.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica


class PNSetReplica(OpBasedReplica):
    """Element -> signed counter; present iff counter > 0."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.counts: defaultdict = defaultdict(int)

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "insert", "delete")
        (v,) = update.args
        ts = self._stamp()
        delta = 1 if update.name == "insert" else -1
        self.counts[v] += delta
        return [(ts.clock, ts.pid, v, delta)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, _j, v, delta = payload
        self._merge(cl)
        self.counts[v] += delta
        return ()

    def value(self) -> frozenset:
        return frozenset(v for v, c in self.counts.items() if c > 0)
