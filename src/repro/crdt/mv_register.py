"""MV-register (multi-value register) — keep all concurrent maxima.

Where the LWW register arbitrates concurrent writes by stamp, the
MV-register refuses to choose: it keeps every write not dominated in the
vector-clock order, and a read returns the *set* of concurrent values
(Dynamo's shopping-cart semantics, per the paper's [DeCandia et al.]
citation).  It is eventually consistent but not update consistent as a
plain register: a read returning two values is explained by no sequential
specification of a register — the repo's negative control for the
"eventual consistency under-specifies semantics" argument of the
introduction.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.crdt.base import OpBasedReplica
from repro.util.clocks import VectorClock


class MVRegisterReplica(OpBasedReplica):
    """Set of (vector clock, value) pairs, dominated entries pruned."""

    def __init__(self, pid: int, n: int, initial: Any = None) -> None:
        super().__init__(pid, n)
        self.initial = initial
        self.vclock = VectorClock(n)
        #: concurrent frontier: list of (VectorClock, value).
        self.versions: list[tuple[VectorClock, Any]] = []

    def on_update(self, update: Update) -> Sequence[Any]:
        self._expect(update, "write")
        (v,) = update.args
        ts = self._stamp()
        self.vclock.tick(self.pid)
        stamp = self.vclock.copy()
        self._store(stamp, v)
        return [(ts.clock, ts.pid, stamp.as_tuple(), v)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, _j, vec, v = payload
        self._merge(cl)
        stamp = VectorClock(list(vec))
        self.vclock.merge(stamp)
        self._store(stamp, v)
        return ()

    def _store(self, stamp: VectorClock, v: Any) -> None:
        # Drop versions dominated by the newcomer; drop the newcomer if
        # dominated itself; keep mutually concurrent versions.
        if any(stamp < other or stamp == other for other, _ in self.versions):
            return
        self.versions = [(o, val) for o, val in self.versions if not o < stamp]
        self.versions.append((stamp, v))

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        self._stamp()
        if name == "read":
            if not self.versions:
                return frozenset({self.initial})
            return frozenset(v for _, v in self.versions)
        raise ValueError(f"unknown register query {name!r}")

    def local_state(self) -> frozenset:
        if not self.versions:
            return frozenset({self.initial})
        return frozenset(v for _, v in self.versions)

    def value(self) -> frozenset:
        return self.local_state()

    @property
    def concurrency_degree(self) -> int:
        return len(self.versions)
