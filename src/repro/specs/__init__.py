"""Sequential specifications (concrete UQ-ADTs).

Every class here subclasses :class:`repro.core.adt.UQADT` and is usable
with the consistency-criteria checkers, Algorithm 1's universal
construction and the simulator.  The set (:class:`SetSpec`) is the paper's
running example (Example 1); the memory (:class:`MemorySpec`) is the object
of Algorithm 2; the commutative types (:class:`GSetSpec`,
:class:`CounterSpec`, :class:`MaxRegisterSpec`) are the "pure CRDT" cases
of Section VII-C for which a naive apply-on-receipt implementation is
already update consistent.
"""

from repro.specs.counter import CounterSpec
from repro.specs.flag import FlagSpec
from repro.specs.graph_spec import GraphSpec
from repro.specs.gset import GSetSpec
from repro.specs.log_spec import LogSpec
from repro.specs.map_spec import MapSpec
from repro.specs.max_register import MaxRegisterSpec
from repro.specs.product import ProductSpec
from repro.specs.queue_spec import QueueSpec
from repro.specs.register import MemorySpec, RegisterSpec
from repro.specs.set_spec import SetSpec
from repro.specs.stack_spec import StackSpec

ALL_SPECS = (
    SetSpec,
    GraphSpec,
    GSetSpec,
    RegisterSpec,
    MemorySpec,
    CounterSpec,
    QueueSpec,
    StackSpec,
    LogSpec,
    MapSpec,
    MaxRegisterSpec,
    FlagSpec,
)

__all__ = [
    "SetSpec",
    "GraphSpec",
    "GSetSpec",
    "RegisterSpec",
    "MemorySpec",
    "CounterSpec",
    "QueueSpec",
    "StackSpec",
    "LogSpec",
    "MapSpec",
    "MaxRegisterSpec",
    "FlagSpec",
    "ProductSpec",
    "ALL_SPECS",
]
