"""A boolean flag — the one-element set, the smallest non-commutative UQ-ADT.

``enable``/``disable`` do not commute, making the flag the minimal object
exhibiting the paper's central tension: eventual consistency alone cannot
say whether a converged flag should be up or down after concurrent enable
and disable; update consistency forces the answer to be the last update of
an agreed linearization.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.adt import Query, UQADT, Update


def enable() -> Update:
    return Update("enable", ())


def disable() -> Update:
    return Update("disable", ())


def read(expected: bool) -> Query:
    return Query("read", (), bool(expected))


class FlagSpec(UQADT):
    """Boolean flag, initially down."""

    name = "flag"
    commutative_updates = False

    def initial_state(self) -> bool:
        return False

    def apply(self, state: bool, update: Update) -> bool:
        if update.name == "enable":
            return True
        if update.name == "disable":
            return False
        raise ValueError(f"unknown flag update {update.name!r}")

    def observe(self, state: bool, name: str, args: tuple[Hashable, ...] = ()) -> object:
        if name == "read":
            return state
        raise ValueError(f"unknown flag query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> bool | None:
        value: bool | None = None
        for q in constraints:
            if q.name != "read":
                return None
            if value is not None and value != q.output:
                return None
            value = bool(q.output)
        return False if value is None else value
