"""Product of UQ-ADTs: compose objects, keep universality.

The universal construction works for *any* UQ-ADT, so it works for the
product of two: state is a pair, updates and queries are tagged with the
component they address.  This gives multi-object applications a single
replicated state machine with one totally ordered update log — i.e.
cross-object ordering for free (each replica applies updates to both
components in the same agreed order), something running two independent
replicated objects does not provide.

``ProductSpec`` is associative by nesting, so any finite tuple of
UQ-ADTs composes.  Commutativity and invertibility lift component-wise,
so the Section VII-C fast paths stay available exactly when both
components allow them.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Operation, Query, UQADT, Update

#: Tag prefix separating the two components in operation names.
LEFT = "L."
RIGHT = "R."


def left(op: Operation) -> Operation:
    """Tag an update/query as addressing the left component."""
    return _tag(op, LEFT)


def right(op: Operation) -> Operation:
    """Tag an update/query as addressing the right component."""
    return _tag(op, RIGHT)


def _tag(op: Operation, prefix: str) -> Operation:
    if isinstance(op, Update):
        return Update(prefix + op.name, op.args)
    if isinstance(op, Query):
        return Query(prefix + op.name, op.args, op.output)
    raise TypeError(f"not an operation: {op!r}")


class ProductSpec(UQADT):
    """The product object ``A × B`` with component-tagged operations."""

    def __init__(self, left_spec: UQADT, right_spec: UQADT) -> None:
        self.left_spec = left_spec
        self.right_spec = right_spec
        self.name = f"({left_spec.name} x {right_spec.name})"
        self.commutative_updates = (
            left_spec.commutative_updates and right_spec.commutative_updates
        )
        self.invertible_updates = (
            left_spec.invertible_updates and right_spec.invertible_updates
        )

    def _route(self, name: str) -> tuple[UQADT, str, int]:
        if name.startswith(LEFT):
            return self.left_spec, name[len(LEFT):], 0
        if name.startswith(RIGHT):
            return self.right_spec, name[len(RIGHT):], 1
        raise ValueError(
            f"operation {name!r} lacks a component tag ({LEFT!r}/{RIGHT!r})"
        )

    def initial_state(self) -> tuple:
        return (self.left_spec.initial_state(), self.right_spec.initial_state())

    def apply(self, state: tuple, update: Update) -> tuple:
        spec, inner, side = self._route(update.name)
        new = spec.apply(state[side], Update(inner, update.args))
        return (new, state[1]) if side == 0 else (state[0], new)

    def unapply(self, state: tuple, update: Update) -> tuple:
        spec, inner, side = self._route(update.name)
        new = spec.unapply(state[side], Update(inner, update.args))
        return (new, state[1]) if side == 0 else (state[0], new)

    def observe(self, state: tuple, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        spec, inner, side = self._route(name)
        return spec.observe(state[side], inner, args)

    def solve_state(self, constraints: Sequence[Query]) -> tuple | None:
        left_cs: list[Query] = []
        right_cs: list[Query] = []
        for q in constraints:
            spec, inner, side = self._route(q.name)
            (left_cs if side == 0 else right_cs).append(
                Query(inner, q.args, q.output)
            )
        ls = self.left_spec.solve_state(left_cs)
        if ls is None:
            return None
        rs = self.right_spec.solve_state(right_cs)
        if rs is None:
            return None
        return (ls, rs)

    def canonical(self, state: tuple) -> Hashable:
        return (
            self.left_spec.canonical(state[0]),
            self.right_spec.canonical(state[1]),
        )
