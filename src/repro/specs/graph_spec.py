"""An undirected graph UQ-ADT — the decentralized social network object.

The paper's work was funded by the DeSceNt project ("Plug-based
Decentralized Social Network"); the natural shared object there is a
social graph replicated across personal devices.  Updates add/remove
vertices (members) and edges (friendships); queries inspect membership,
adjacency and connectivity (components/reachability, computed with
``networkx``).

Sequential semantics (the deterministic choices that make it a UQ-ADT):

* ``add_edge(u, v)`` is a no-op unless *both* endpoints are present —
  a friendship needs two members;
* ``remove_vertex(v)`` removes ``v``'s incident edges with it;
* all operations are idempotent on their target.

Add/remove on the same vertex or edge do not commute, so the graph is
not a CRDT: replicating it with apply-on-receipt diverges, and the
eventually consistent encodings (2P-graph etc.) inherit the 2P-Set's
"removal is forever" wart.  The universal construction gives it update
consistency for free — demonstrated in ``examples/social_network.py``.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

import networkx as nx

from repro.core.adt import Query, UQADT, Update

#: Graph states are ``(vertices, edges)`` with edges as frozensets of two
#: endpoints (undirected).
GraphState = tuple[frozenset, frozenset]


def add_vertex(v: Hashable) -> Update:
    return Update("add_vertex", (v,))


def remove_vertex(v: Hashable) -> Update:
    return Update("remove_vertex", (v,))


def add_edge(u: Hashable, v: Hashable) -> Update:
    return Update("add_edge", (u, v))


def remove_edge(u: Hashable, v: Hashable) -> Update:
    return Update("remove_edge", (u, v))


def vertices(expected) -> Query:
    return Query("vertices", (), frozenset(expected))


def edges(expected) -> Query:
    return Query("edges", (), frozenset(frozenset(e) for e in expected))


def has_vertex(v: Hashable, expected: bool) -> Query:
    return Query("has_vertex", (v,), bool(expected))


def has_edge(u: Hashable, v: Hashable, expected: bool) -> Query:
    return Query("has_edge", (u, v), bool(expected))


def neighbors(v: Hashable, expected) -> Query:
    return Query("neighbors", (v,), frozenset(expected))


def degree(v: Hashable, expected: int) -> Query:
    return Query("degree", (v,), int(expected))


def component_count(expected: int) -> Query:
    return Query("component_count", (), int(expected))


def reachable(u: Hashable, v: Hashable, expected: bool) -> Query:
    return Query("reachable", (u, v), bool(expected))


class GraphSpec(UQADT):
    """Undirected graph with edge-needs-endpoints semantics."""

    name = "graph"
    commutative_updates = False

    def initial_state(self) -> GraphState:
        return (frozenset(), frozenset())

    def apply(self, state: GraphState, update: Update) -> GraphState:
        vs, es = state
        if update.name == "add_vertex":
            (v,) = update.args
            return (vs | {v}, es)
        if update.name == "remove_vertex":
            (v,) = update.args
            if v not in vs:
                return state
            return (vs - {v}, frozenset(e for e in es if v not in e))
        if update.name == "add_edge":
            u, v = update.args
            if u == v or u not in vs or v not in vs:
                return state  # a friendship needs two distinct members
            return (vs, es | {frozenset((u, v))})
        if update.name == "remove_edge":
            u, v = update.args
            return (vs, es - {frozenset((u, v))})
        raise ValueError(f"unknown graph update {update.name!r}")

    def observe(self, state: GraphState, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        vs, es = state
        if name == "vertices":
            return frozenset(vs)
        if name == "edges":
            return frozenset(es)
        if name == "has_vertex":
            (v,) = args
            return v in vs
        if name == "has_edge":
            u, v = args
            return frozenset((u, v)) in es
        if name == "neighbors":
            (v,) = args
            return frozenset(w for e in es if v in e for w in e if w != v)
        if name == "degree":
            (v,) = args
            return sum(1 for e in es if v in e)
        if name == "component_count":
            return nx.number_connected_components(self._nx(state))
        if name == "reachable":
            u, v = args
            if u not in vs or v not in vs:
                return False
            return nx.has_path(self._nx(state), u, v)
        raise ValueError(f"unknown graph query {name!r}")

    @staticmethod
    def _nx(state: GraphState) -> "nx.Graph":
        vs, es = state
        g = nx.Graph()
        g.add_nodes_from(vs)
        g.add_edges_from(tuple(e) for e in es)
        return g

    def solve_state(self, constraints: Sequence[Query]) -> GraphState | None:
        """Exact when the state is pinned by vertices+edges reads;
        constructive for membership constraints; conservative otherwise."""
        pinned_vs: frozenset | None = None
        pinned_es: frozenset | None = None
        need_vs: set = set()
        ban_vs: set = set()
        need_es: set = set()
        ban_es: set = set()
        derived: list[Query] = []
        for q in constraints:
            if q.name == "vertices":
                value = frozenset(q.output)
                if pinned_vs is not None and pinned_vs != value:
                    return None
                pinned_vs = value
            elif q.name == "edges":
                value = frozenset(frozenset(e) for e in q.output)
                if pinned_es is not None and pinned_es != value:
                    return None
                pinned_es = value
            elif q.name == "has_vertex":
                (v,) = q.args
                (need_vs if q.output else ban_vs).add(v)
            elif q.name == "has_edge":
                u, v = q.args
                (need_es if q.output else ban_es).add(frozenset((u, v)))
            elif q.name in ("neighbors", "degree", "component_count", "reachable"):
                derived.append(q)
            else:
                return None
        if need_vs & ban_vs or need_es & ban_es:
            return None
        vs = pinned_vs if pinned_vs is not None else frozenset(
            need_vs | {w for e in need_es for w in e}
        )
        es = pinned_es if pinned_es is not None else frozenset(need_es)
        state = (vs, es)
        # S contains only well-formed graphs: every edge endpoint is a
        # member (an invariant of the transition system).
        if any(w not in vs for e in es for w in e):
            return None
        # Validate all constraints against the candidate (sound always;
        # complete when the state was pinned or purely membership-driven).
        for q in constraints:
            if not self.satisfies(state, q):
                return None
        return state

    def canonical(self, state: GraphState) -> Hashable:
        vs, es = state
        return (frozenset(vs), frozenset(es))
