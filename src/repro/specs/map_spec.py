"""Key-value map (dictionary) as a UQ-ADT — the Dynamo-style object.

``put(k, v)`` and ``remove(k)`` update; ``get(k)``, ``keys`` and
``snapshot`` query.  ``get`` on an absent key returns :data:`ABSENT`.
Puts to *different* keys commute but puts/removes on the same key do not,
so the map is not a pure CRDT and genuinely needs the universal
construction for update consistency.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Query, UQADT, Update

#: Returned by ``get`` for a key not in the map.
ABSENT = "<absent>"


def put(k: Hashable, v: Any) -> Update:
    return Update("put", (k, v))


def remove(k: Hashable) -> Update:
    return Update("remove", (k,))


def get(k: Hashable, expected: Any) -> Query:
    return Query("get", (k,), expected)


def keys(expected: frozenset | set) -> Query:
    return Query("keys", (), frozenset(expected))


def snapshot(expected: dict) -> Query:
    return Query("snapshot", (), tuple(sorted(expected.items())))


class MapSpec(UQADT):
    """Dictionary object; state is a plain dict (copied on update)."""

    name = "map"
    commutative_updates = False

    def initial_state(self) -> dict:
        return {}

    def apply(self, state: dict, update: Update) -> dict:
        if update.name == "put":
            k, v = update.args
            new = dict(state)
            new[k] = v
            return new
        if update.name == "remove":
            (k,) = update.args
            if k not in state:
                return state
            new = dict(state)
            del new[k]
            return new
        raise ValueError(f"unknown map update {update.name!r}")

    def probe_updates(self) -> Sequence[Update]:
        # Two puts to the same key, and a put/remove pair: order decides
        # the surviving value, so commutativity checkers must reject both.
        return (put("k", 1), put("k", 2), remove("k"), put("j", 3))

    def observe(self, state: dict, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "get":
            (k,) = args
            return state.get(k, ABSENT)
        if name == "keys":
            return frozenset(state)
        if name == "snapshot":
            return tuple(sorted(state.items()))
        raise ValueError(f"unknown map query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> dict | None:
        pinned: dict | None = None
        gets: dict[Hashable, Any] = {}
        key_sets: list[frozenset] = []
        for q in constraints:
            if q.name == "snapshot":
                value = dict(q.output)
                if pinned is not None and pinned != value:
                    return None
                pinned = value
            elif q.name == "get":
                (k,) = q.args
                if gets.get(k, q.output) != q.output:
                    return None
                gets[k] = q.output
            elif q.name == "keys":
                key_sets.append(frozenset(q.output))
            else:
                return None
        if len(set(key_sets)) > 1:
            return None
        required_keys = key_sets[0] if key_sets else None
        if pinned is None:
            pinned = {k: v for k, v in gets.items() if v != ABSENT}
            if required_keys is not None:
                # Sorted (stable key, persist.py idiom) so the solved dict's
                # insertion order is hash-seed independent: uqlint SIM103.
                for k in sorted(required_keys - set(pinned), key=repr):
                    if gets.get(k, None) == ABSENT:
                        return None
                    pinned[k] = None
        for k, v in gets.items():
            if self.observe(pinned, "get", (k,)) != v:
                return None
        if required_keys is not None and frozenset(pinned) != required_keys:
            return None
        return pinned
