"""The replicated set ``S_Val`` — the paper's running example (Example 1).

Updates: ``I(v)`` (insert) and ``D(v)`` (delete).  Queries: ``R`` (read the
whole content, returning a finite subset of the support) plus a
``contains(v)`` convenience query (derivable from ``R``; having it lets
tests and workloads exercise queries that reveal only part of the state).

States are ``frozenset`` values; the transition function is pure.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.adt import Query, UQADT, Update


def insert(v: Hashable) -> Update:
    """``I(v)``"""
    return Update("insert", (v,))


def delete(v: Hashable) -> Update:
    """``D(v)``"""
    return Update("delete", (v,))


def read(expected: frozenset | set) -> Query:
    """``R/s`` — a read observed to return ``s``."""
    return Query("read", (), frozenset(expected))


def contains(v: Hashable, expected: bool) -> Query:
    """``contains(v)/b``."""
    return Query("contains", (v,), bool(expected))


class SetSpec(UQADT):
    """Sequential specification of the set over an implicit countable support.

    ``T(s, I(v)) = s ∪ {v}``; ``T(s, D(v)) = s \\ {v}``; ``G(s, R) = s``.
    """

    name = "set"
    commutative_updates = False  # insert/delete of the same value conflict

    def initial_state(self) -> frozenset:
        return frozenset()

    def apply(self, state: frozenset, update: Update) -> frozenset:
        if update.name == "insert":
            (v,) = update.args
            return state | {v}
        if update.name == "delete":
            (v,) = update.args
            return state - {v}
        raise ValueError(f"unknown set update {update.name!r}")

    def apply_batch(self, state: frozenset, updates) -> frozenset:
        """Single reverse pass: the last operation on each value decides
        its membership, untouched values keep their old membership —
        O(n + |state|) instead of n frozenset copies."""
        decided: dict = {}
        for u in reversed(updates):
            (v,) = u.args
            if v not in decided:
                if u.name == "insert":
                    decided[v] = True
                elif u.name == "delete":
                    decided[v] = False
                else:
                    raise ValueError(f"unknown set update {u.name!r}")
        kept = (v for v in state if decided.get(v, True))
        added = (v for v, present in decided.items() if present)
        return frozenset(kept) | frozenset(added)

    def probe_updates(self) -> Sequence[Update]:
        # insert("a") / delete("a") is the canonical order-sensitive pair
        # (Example 1): a probe set any commutativity checker must reject.
        return (insert("a"), delete("a"), insert("b"))

    def observe(self, state: frozenset, name: str, args: tuple[Hashable, ...] = ()) -> object:
        if name == "read":
            return frozenset(state)
        if name == "contains":
            (v,) = args
            return v in state
        raise ValueError(f"unknown set query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> frozenset | None:
        """Exact solver: reads pin the state; contains pin membership."""
        pinned: frozenset | None = None
        must_have: set = set()
        must_lack: set = set()
        for q in constraints:
            if q.name == "read":
                value = q.output
                if not isinstance(value, (set, frozenset)):
                    return None
                value = frozenset(value)
                if pinned is not None and pinned != value:
                    return None
                pinned = value
            elif q.name == "contains":
                (v,) = q.args
                (must_have if q.output else must_lack).add(v)
            else:
                return None
        if must_have & must_lack:
            return None
        if pinned is not None:
            if not must_have <= pinned or pinned & must_lack:
                return None
            return pinned
        return frozenset(must_have)
