"""A shared counter — a *pure CRDT* in the sense of Section VII-C.

``inc(k)``/``dec(k)`` commute, so every linearization of the updates yields
the same state and the commutative fast path (apply-on-receipt) is already
update consistent.  The counter is the canonical positive control for the
commutative-objects claim of the paper's complexity discussion.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.adt import Query, UQADT, Update


def inc(amount: int = 1) -> Update:
    return Update("inc", (int(amount),))


def dec(amount: int = 1) -> Update:
    return Update("dec", (int(amount),))


def read(expected: int) -> Query:
    return Query("read", (), int(expected))


class CounterSpec(UQADT):
    """Integer counter with commutative increments/decrements."""

    name = "counter"
    commutative_updates = True
    invertible_updates = True

    def initial_state(self) -> int:
        return 0

    def apply(self, state: int, update: Update) -> int:
        (k,) = update.args
        if update.name == "inc":
            return state + k
        if update.name == "dec":
            return state - k
        raise ValueError(f"unknown counter update {update.name!r}")

    def unapply(self, state: int, update: Update) -> int:
        (k,) = update.args
        if update.name == "inc":
            return state - k
        if update.name == "dec":
            return state + k
        raise ValueError(f"unknown counter update {update.name!r}")

    def apply_batch(self, state: int, updates) -> int:
        """Single-pass signed sum instead of one ``apply`` call per update.

        (Measured: a numpy ``fromiter`` + ``sum`` does *not* beat this —
        extracting the deltas from the update objects is the bottleneck
        either way, so the plain generator wins on simplicity.  See
        ``bench_ablation_batch.py``.)"""
        return state + sum(
            u.args[0] if u.name == "inc" else -u.args[0] for u in updates
        )

    def probe_updates(self) -> Sequence[Update]:
        # Mixed signs and magnitudes: addition commutes regardless.
        return (inc(1), inc(3), dec(2), dec(1))

    def observe(self, state: int, name: str, args: tuple[Hashable, ...] = ()) -> object:
        if name == "read":
            return state
        if name == "sign":
            return 0 if state == 0 else (1 if state > 0 else -1)
        raise ValueError(f"unknown counter query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> int | None:
        value: int | None = None
        signs: set[int] = set()
        for q in constraints:
            if q.name == "read":
                if value is not None and value != q.output:
                    return None
                value = q.output
            elif q.name == "sign":
                signs.add(q.output)
            else:
                return None
        if len(signs) > 1:
            return None
        if value is not None:
            if signs and self.observe(value, "sign") not in signs:
                return None
            return value
        if signs:
            (s,) = signs
            return s  # a state with the required sign
        return 0
