"""Stack as a UQ-ADT, with the pop split the paper prescribes.

A classical ``pop`` both removes the top and returns it — an update and a
query at once, which the UQ-ADT class excludes.  Following the introduction
of the paper, it is split into ``top`` (*lookup top*, a query) and
``drop`` (*delete top*, an update).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Query, UQADT, Update

#: Returned by ``top`` on an empty stack.
EMPTY = "<empty>"


def push(v: Any) -> Update:
    return Update("push", (v,))


def drop() -> Update:
    """Delete-top — the update half of pop."""
    return Update("drop", ())


def top(expected: Any) -> Query:
    """Lookup-top — the query half of pop."""
    return Query("top", (), expected)


def size(expected: int) -> Query:
    return Query("size", (), int(expected))


def snapshot(expected: Sequence[Any]) -> Query:
    return Query("snapshot", (), tuple(expected))


class StackSpec(UQADT):
    """LIFO stack; state is a tuple, top last."""

    name = "stack"
    commutative_updates = False

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state: tuple, update: Update) -> tuple:
        if update.name == "push":
            (v,) = update.args
            return state + (v,)
        if update.name == "drop":
            return state[:-1] if state else state
        raise ValueError(f"unknown stack update {update.name!r}")

    def observe(self, state: tuple, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "top":
            return state[-1] if state else EMPTY
        if name == "size":
            return len(state)
        if name == "snapshot":
            return tuple(state)
        raise ValueError(f"unknown stack query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> tuple | None:
        pinned: tuple | None = None
        top_value: Any = _NOTHING
        length: int | None = None
        for q in constraints:
            if q.name == "snapshot":
                value = tuple(q.output)
                if pinned is not None and pinned != value:
                    return None
                pinned = value
            elif q.name == "top":
                if top_value is not _NOTHING and top_value != q.output:
                    return None
                top_value = q.output
            elif q.name == "size":
                if length is not None and length != q.output:
                    return None
                length = q.output
            else:
                return None
        if pinned is not None:
            if top_value is not _NOTHING and self.observe(pinned, "top") != top_value:
                return None
            if length is not None and len(pinned) != length:
                return None
            return pinned
        if length is not None and length < 0:
            return None
        if top_value is not _NOTHING and top_value == EMPTY:
            if length not in (None, 0):
                return None
            return ()
        if top_value is _NOTHING:
            n = length if length is not None else 0
            return tuple(range(n))
        n = length if length is not None else 1
        if n == 0:
            return None
        return tuple(range(n - 1)) + (top_value,)


_NOTHING = object()
