"""FIFO queue as a UQ-ADT.

The paper notes that mixed operations (like a ``dequeue`` that both removes
and returns) fall outside the UQ-ADT class and must be *split* into a query
plus an update — here ``front`` (query) and ``pop`` (update), mirroring the
stack's lookup-top / delete-top split described in the introduction.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Query, UQADT, Update

#: Returned by ``front`` on an empty queue.
EMPTY = "<empty>"


def enqueue(v: Any) -> Update:
    return Update("enqueue", (v,))


def pop() -> Update:
    """Remove the head (no return — the update half of dequeue)."""
    return Update("pop", ())


def front(expected: Any) -> Query:
    """Observe the head (the query half of dequeue)."""
    return Query("front", (), expected)


def size(expected: int) -> Query:
    return Query("size", (), int(expected))


def snapshot(expected: Sequence[Any]) -> Query:
    return Query("snapshot", (), tuple(expected))


class QueueSpec(UQADT):
    """FIFO queue; state is a tuple (head first)."""

    name = "queue"
    commutative_updates = False

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state: tuple, update: Update) -> tuple:
        if update.name == "enqueue":
            (v,) = update.args
            return state + (v,)
        if update.name == "pop":
            return state[1:] if state else state
        raise ValueError(f"unknown queue update {update.name!r}")

    def observe(self, state: tuple, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "front":
            return state[0] if state else EMPTY
        if name == "size":
            return len(state)
        if name == "snapshot":
            return tuple(state)
        raise ValueError(f"unknown queue query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> tuple | None:
        pinned: tuple | None = None
        head: Any = _NOTHING
        length: int | None = None
        for q in constraints:
            if q.name == "snapshot":
                value = tuple(q.output)
                if pinned is not None and pinned != value:
                    return None
                pinned = value
            elif q.name == "front":
                if head is not _NOTHING and head != q.output:
                    return None
                head = q.output
            elif q.name == "size":
                if length is not None and length != q.output:
                    return None
                length = q.output
            else:
                return None
        if pinned is not None:
            if head is not _NOTHING and self.observe(pinned, "front") != head:
                return None
            if length is not None and len(pinned) != length:
                return None
            return pinned
        # Construct a minimal queue matching head/length.
        if length is not None and length < 0:
            return None
        if head is not _NOTHING and head == EMPTY:
            if length not in (None, 0):
                return None
            return ()
        if head is _NOTHING:
            n = length if length is not None else 0
            return tuple(range(n))
        n = length if length is not None else 1
        if n == 0:
            return None  # head observed on an empty queue
        return (head,) + tuple(range(n - 1))


_NOTHING = object()
