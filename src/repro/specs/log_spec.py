"""Append-only log / sequence — the collaborative-editing substrate.

``append(v)`` adds an entry; ``read`` returns the whole sequence; ``length``
and ``at(i)`` reveal parts of it.  Appends do *not* commute (order is the
content), which makes the log the simplest object where update consistency
visibly beats eventual consistency: an update-consistent log converges to
one agreed document equal to some interleaving of the authors' edits that
respects each author's own order.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Query, UQADT, Update

#: Returned by ``at`` for an out-of-range index.
OUT_OF_RANGE = "<out-of-range>"


def append(v: Any) -> Update:
    return Update("append", (v,))


def read(expected: Sequence[Any]) -> Query:
    return Query("read", (), tuple(expected))


def length(expected: int) -> Query:
    return Query("length", (), int(expected))


def at(index: int, expected: Any) -> Query:
    return Query("at", (int(index),), expected)


class LogSpec(UQADT):
    """Append-only sequence; state is a tuple."""

    name = "log"
    commutative_updates = False
    invertible_updates = True

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state: tuple, update: Update) -> tuple:
        if update.name == "append":
            (v,) = update.args
            return state + (v,)
        raise ValueError(f"unknown log update {update.name!r}")

    def unapply(self, state: tuple, update: Update) -> tuple:
        """Undo an append: drop the tail entry (valid for every state the
        undo algorithm can present, since it unwinds in reverse apply
        order, so the tail is exactly ``update``'s value)."""
        if update.name == "append":
            if not state:
                raise ValueError("cannot unapply append from the empty log")
            return state[:-1]
        raise ValueError(f"unknown log update {update.name!r}")

    def apply_batch(self, state: tuple, updates) -> tuple:
        """One concatenation instead of n (naive per-append folding is
        quadratic in the log length)."""
        for u in updates:
            if u.name != "append":
                raise ValueError(f"unknown log update {u.name!r}")
        return state + tuple(u.args[0] for u in updates)

    def observe(self, state: tuple, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "read":
            return tuple(state)
        if name == "length":
            return len(state)
        if name == "at":
            (i,) = args
            return state[i] if 0 <= i < len(state) else OUT_OF_RANGE
        raise ValueError(f"unknown log query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> tuple | None:
        pinned: tuple | None = None
        cells: dict[int, Any] = {}
        length_: int | None = None
        for q in constraints:
            if q.name == "read":
                value = tuple(q.output)
                if pinned is not None and pinned != value:
                    return None
                pinned = value
            elif q.name == "length":
                if length_ is not None and length_ != q.output:
                    return None
                length_ = q.output
            elif q.name == "at":
                (i,) = q.args
                if cells.get(i, q.output) != q.output:
                    return None
                cells[i] = q.output
            else:
                return None
        if pinned is not None:
            if length_ is not None and len(pinned) != length_:
                return None
            for i, v in cells.items():
                if self.observe(pinned, "at", (i,)) != v:
                    return None
            return pinned
        in_range = {i: v for i, v in cells.items() if v != OUT_OF_RANGE}
        out_range = [i for i, v in cells.items() if v == OUT_OF_RANGE]
        needed = max(in_range, default=-1) + 1
        if length_ is None:
            length_ = needed
        if length_ < needed or length_ < 0:
            return None
        if any(0 <= i < length_ for i in out_range):
            return None
        return tuple(in_range.get(i, None) for i in range(length_))
