"""Registers and the shared memory of Algorithm 2.

:class:`RegisterSpec` is a single read/write register (the object of the
Attiya–Welch lower bounds cited in the introduction).  :class:`MemorySpec`
is the object implemented by Algorithm 2: a set ``X`` of registers holding
values from ``V``, with ``write(x, v)`` updates and ``read(x)`` queries;
``read`` returns the last written value or the initial value ``v0``.

Memory states are immutable mappings (plain dicts treated as immutable —
``apply`` copies).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Query, UQADT, Update, fresh_state


def write(value: Any) -> Update:
    """Single-register ``write(v)``."""
    return Update("write", (value,))


def read(expected: Any) -> Query:
    """Single-register ``read/v``."""
    return Query("read", (), expected)


def mem_write(register: Hashable, value: Any) -> Update:
    """Memory ``write(x, v)``."""
    return Update("write", (register, value))


def mem_read(register: Hashable, expected: Any) -> Query:
    """Memory ``read(x)/v``."""
    return Query("read", (register,), expected)


class RegisterSpec(UQADT):
    """A single read/write register initialized to ``initial``."""

    name = "register"
    commutative_updates = False  # writes overwrite: order matters

    def __init__(self, initial: Any = None) -> None:
        self._initial = initial

    def initial_state(self) -> Any:
        # Fresh-or-immutable s0 (Def. 1, enforced by uqlint UQ005): a
        # mutable ``initial`` must not be shared across replays.
        return fresh_state(self._initial)

    def apply(self, state: Any, update: Update) -> Any:
        if update.name == "write":
            (v,) = update.args
            return v
        raise ValueError(f"unknown register update {update.name!r}")

    def observe(self, state: Any, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "read":
            return state
        raise ValueError(f"unknown register query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> Any | None:
        value = _NOTHING
        for q in constraints:
            if q.name != "read":
                return None
            if value is _NOTHING:
                value = q.output
            elif value != q.output:
                return None
        return self._initial if value is _NOTHING else value


class MemorySpec(UQADT):
    """The shared memory ``mem(X, V, v0)`` of Algorithm 2.

    The register space ``X`` is implicit (any hashable); unwritten registers
    read as ``initial``.
    """

    name = "memory"
    commutative_updates = False

    def __init__(self, initial: Any = None) -> None:
        self._initial = initial

    @property
    def initial_value(self) -> Any:
        return self._initial

    def initial_state(self) -> dict:
        return {}

    def apply(self, state: dict, update: Update) -> dict:
        if update.name == "write":
            x, v = update.args
            new = dict(state)
            new[x] = v
            return new
        raise ValueError(f"unknown memory update {update.name!r}")

    def apply_batch(self, state: dict, updates) -> dict:
        """One dict copy plus n assignments (last write per register wins
        within the batch automatically) instead of n dict copies."""
        new = dict(state)
        for u in updates:
            if u.name != "write":
                raise ValueError(f"unknown memory update {u.name!r}")
            x, v = u.args
            new[x] = v
        return new

    def observe(self, state: dict, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if name == "read":
            (x,) = args
            return state.get(x, self._initial)
        if name == "snapshot":
            return dict(state)
        raise ValueError(f"unknown memory query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> dict | None:
        pinned: dict = {}
        snapshots: list[dict] = []
        for q in constraints:
            if q.name == "read":
                (x,) = q.args
                if pinned.get(x, q.output) != q.output:
                    return None
                pinned[x] = q.output
            elif q.name == "snapshot":
                snap = q.output
                if not isinstance(snap, dict):
                    return None
                snapshots.append(snap)
                for x, v in snap.items():
                    if pinned.get(x, v) != v:
                        return None
                    pinned[x] = v
            else:
                return None
        # Registers pinned to the initial value need no explicit entry.
        state = {x: v for x, v in pinned.items() if v != self._initial}
        # A snapshot asserts the *whole* state: any register pinned to a
        # non-initial value by another constraint must appear in it.
        for snap in snapshots:
            canonical_snap = {x: v for x, v in snap.items() if v != self._initial}
            if canonical_snap != state:
                return None
        return state


_NOTHING = object()
