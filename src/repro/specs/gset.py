"""Grow-only set (G-Set) — insert-only, hence commutative (a pure CRDT).

Cited in Section VI as the simplest eventually consistent set; insertion of
two elements commutes, so the naive apply-on-receipt implementation is
already update consistent (Section VII-C).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.adt import Query, UQADT, Update


def insert(v: Hashable) -> Update:
    return Update("insert", (v,))


def read(expected: frozenset | set) -> Query:
    return Query("read", (), frozenset(expected))


def contains(v: Hashable, expected: bool) -> Query:
    return Query("contains", (v,), bool(expected))


class GSetSpec(UQADT):
    """Insert-only set; all updates commute."""

    name = "g-set"
    commutative_updates = True

    def initial_state(self) -> frozenset:
        return frozenset()

    def apply(self, state: frozenset, update: Update) -> frozenset:
        if update.name == "insert":
            (v,) = update.args
            return state | {v}
        raise ValueError(f"unknown g-set update {update.name!r} (g-set has no delete)")

    def probe_updates(self) -> Sequence[Update]:
        # Re-inserting an element is the only interesting interaction.
        return (insert("a"), insert("b"), insert("a"))

    def observe(self, state: frozenset, name: str, args: tuple[Hashable, ...] = ()) -> object:
        if name == "read":
            return frozenset(state)
        if name == "contains":
            (v,) = args
            return v in state
        raise ValueError(f"unknown g-set query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> frozenset | None:
        pinned: frozenset | None = None
        must_have: set = set()
        must_lack: set = set()
        for q in constraints:
            if q.name == "read":
                value = frozenset(q.output)
                if pinned is not None and pinned != value:
                    return None
                pinned = value
            elif q.name == "contains":
                (v,) = q.args
                (must_have if q.output else must_lack).add(v)
            else:
                return None
        if must_have & must_lack:
            return None
        if pinned is not None:
            if not must_have <= pinned or pinned & must_lack:
                return None
            return pinned
        return frozenset(must_have)
