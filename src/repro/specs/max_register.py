"""Max-register: ``write_max(v)`` keeps the maximum ever written.

Updates commute (max is associative-commutative-idempotent), so this is a
semi-lattice CRDT — the second sufficient condition of [Shapiro et al.]
cited in the introduction.  Serves as another positive control for the
commutative fast path of Section VII-C.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.adt import Query, UQADT, Update


def write_max(v: float) -> Update:
    return Update("write_max", (v,))


def read(expected: float) -> Query:
    return Query("read", (), expected)


class MaxRegisterSpec(UQADT):
    """Register holding the maximum of all written values (init ``floor``)."""

    name = "max-register"
    commutative_updates = True

    def __init__(self, floor: float = 0) -> None:
        self._floor = float(floor)

    def initial_state(self) -> float:
        # float() guarantees an immutable s0 even for float subclasses
        # carrying mutable payloads (Def. 1, enforced by uqlint UQ005).
        return float(self._floor)

    def apply(self, state: float, update: Update) -> float:
        if update.name == "write_max":
            (v,) = update.args
            return v if v > state else state
        raise ValueError(f"unknown max-register update {update.name!r}")

    def probe_updates(self) -> Sequence[Update]:
        # Ascending, descending and duplicate writes: max commutes.
        return (write_max(1.0), write_max(3.0), write_max(1.0))

    def observe(self, state: float, name: str, args: tuple[Hashable, ...] = ()) -> object:
        if name == "read":
            return state
        raise ValueError(f"unknown max-register query {name!r}")

    def solve_state(self, constraints: Sequence[Query]) -> float | None:
        value = None
        for q in constraints:
            if q.name != "read":
                return None
            if value is not None and value != q.output:
                return None
            value = q.output
        if value is None:
            return self._floor
        return value if value >= self._floor else None
