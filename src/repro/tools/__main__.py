"""The repro command line: ``python -m repro.tools <command> ...``.

Commands:

``classify``  (default)
    Read a history in the DSL of :mod:`repro.tools.dsl` (or a paper
    figure via ``--demo``) and print which criteria admit it.

``simulate``
    Run a seeded workload over a replicated object on the simulated
    asynchronous network and report convergence, message complexity and
    read staleness.

``figures``
    Print the full Fig. 1 + Fig. 2 classification matrix.

Examples::

    python -m repro.tools --demo fig1b
    python -m repro.tools classify my_history.txt
    python -m repro.tools simulate --spec set --n 4 --ops 200 --fuzz
    python -m repro.tools figures
"""

from __future__ import annotations

import argparse
import sys

from repro.core.criteria import classify
from repro.paper import FIG1_BUILDERS, fig_2
from repro.specs import SetSpec
from repro.tools.dsl import DSLError, format_history, parse_set_history

DEMOS = {f"fig1{k[-1]}": v for k, v in FIG1_BUILDERS.items()}
DEMOS["fig2"] = fig_2

COMMANDS = ("classify", "simulate", "figures")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in COMMANDS:
        argv = ["classify"] + argv

    parser = argparse.ArgumentParser(prog="python -m repro.tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="classify a set history under the criteria"
    )
    p_classify.add_argument("file", nargs="?", help="DSL file ('-' for stdin)")
    p_classify.add_argument("--demo", choices=sorted(DEMOS))
    p_classify.add_argument("--criteria", default="EC,SEC,UC,SUC,PC")

    p_sim = sub.add_parser(
        "simulate", help="run a workload on the simulated network"
    )
    p_sim.add_argument("--spec", default="set",
                       choices=("set", "counter", "log", "memory"))
    p_sim.add_argument("--strategy", default="universal")
    p_sim.add_argument("--n", type=int, default=3, help="process count")
    p_sim.add_argument("--ops", type=int, default=100)
    p_sim.add_argument("--latency", type=float, default=3.0,
                       help="mean exponential latency")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--crash", type=int, default=0,
                       help="crash budget for the fuzzer")
    p_sim.add_argument("--fuzz", action="store_true",
                       help="adversarial schedule instead of plain latencies")

    sub.add_parser("figures", help="print the paper's figure matrix")

    args = parser.parse_args(argv)
    if args.command == "classify":
        return _classify(args)
    if args.command == "simulate":
        return _simulate(args)
    return _figures()


def _classify(args) -> int:
    if args.demo:
        history = DEMOS[args.demo]()
    elif args.file:
        text = sys.stdin.read() if args.file == "-" else open(args.file).read()
        try:
            history = parse_set_history(text)
        except DSLError as exc:
            print(f"parse error: {exc}", file=sys.stderr)
            return 2
    else:
        print("give a history file or --demo", file=sys.stderr)
        return 2

    criteria = tuple(c.strip().upper() for c in args.criteria.split(",") if c.strip())
    print(format_history(history))
    print()
    results = classify(history, SetSpec(), criteria=criteria)
    worst = 0
    for name, res in results.items():
        if res:
            print(f"{name:4s}: holds")
        else:
            print(f"{name:4s}: FAILS — {res.reason}")
            worst = 1
    return worst


def _simulate(args) -> int:
    from repro.analysis import (
        collect_message_stats,
        staleness_report,
        update_consistent_convergence,
    )
    from repro.objects import make_replicated
    from repro.sim.fuzz import AdversaryFuzzer
    from repro.sim.network import ExponentialLatency
    from repro.sim.workload import (
        collab_edit_workload,
        counter_workload,
        random_set_workload,
        register_workload,
        run_workload,
    )
    from repro.specs import CounterSpec, LogSpec, MemorySpec

    spec = {
        "set": SetSpec, "counter": CounterSpec,
        "log": LogSpec, "memory": MemorySpec,
    }[args.spec]()
    workload = {
        "set": random_set_workload,
        "counter": counter_workload,
        "log": collab_edit_workload,
        "memory": register_workload,
    }[args.spec](args.n, args.ops, seed=args.seed)

    cluster, _ = make_replicated(
        spec, args.n, strategy=args.strategy,
        latency=ExponentialLatency(args.latency), seed=args.seed,
    )
    if args.fuzz:
        fuzzer = AdversaryFuzzer(cluster, seed=args.seed, crash_budget=args.crash)
        ops = [(w.pid, w.op) for w in workload if w.is_update]
        fuzzer.run_workload(ops)
        print(f"adversary: {fuzzer.report.summary()}")
    else:
        run_workload(cluster, workload)

    print(f"{args.spec} x {args.n} processes, {args.ops} ops, "
          f"strategy={args.strategy}, seed={args.seed}")
    try:
        ok, state, _ = update_consistent_convergence(cluster, spec)
        print(f"update-consistent convergence: {'PASS' if ok else 'FAIL'}")
        print(f"converged state: {state!r}")
    except ValueError as exc:
        from repro.analysis import converged

        print(f"(no witness metadata: {exc})")
        print(f"replicas agree: {converged(cluster)}")
        ok = converged(cluster)
    stats = collect_message_stats(cluster)
    print(f"messages: {stats.messages_sent} sent "
          f"({stats.sends_per_update:.1f}/update), "
          f"max timestamp {stats.max_timestamp_bits} bits")
    try:
        stale = staleness_report(cluster.trace)
        if stale.queries:
            print(f"reads: {stale.queries}, fresh {stale.fresh_fraction():.0%}, "
                  f"mean version lag {stale.mean_version_lag:.2f}")
    except ValueError:
        pass
    return 0 if ok else 1


def _figures() -> int:
    from repro.analysis import classification_matrix

    table, _ = classification_matrix(
        {name: b() for name, b in FIG1_BUILDERS.items()} | {"fig2": fig_2()},
        SetSpec(),
    )
    print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
