"""A tiny DSL for set histories, in the paper's notation.

Grammar (one process per line, ``#`` comments, blank lines ignored)::

    history   := line*
    line      := "p" INT ":" op*
    op        := update | query
    update    := ("I" | "D") "(" value ")"
    query     := "R" "{" value ("," value)* "}" omega?
               | "R" "{}" omega?
               | "C" "(" value ")" ("+" | "-") omega?     # contains yes/no
    omega     := "^w" | "^ω"
    value     := integer | identifier

Examples — the paper's Fig. 1b::

    p0: I(1) D(2) R{1,2}^w
    p1: I(2) D(1) R{1,2}^w

Values that parse as integers become ``int``; anything else stays a
string.  ω-operations must be last on their line (the history model
requires ω-events to be program-order maximal).
"""

from __future__ import annotations

import re

from repro.core.adt import Operation
from repro.core.history import History
from repro.specs import set_spec as S

_LINE = re.compile(r"^p(\d+)\s*:\s*(.*)$")
_TOKEN = re.compile(
    r"""
    (?P<upd>[ID])\(\s*(?P<uval>[^)\s]+)\s*\)
    | R\{(?P<rset>[^}]*)\}
    | C\(\s*(?P<cval>[^)\s]+)\s*\)(?P<csign>[+-])
    """,
    re.VERBOSE,
)
_OMEGA = re.compile(r"\^(w|ω)")


class DSLError(ValueError):
    """A history file failed to parse."""


def _value(token: str):
    token = token.strip()
    if not token:
        raise DSLError("empty value")
    try:
        return int(token)
    except ValueError:
        return token


def parse_set_history(text: str) -> History:
    """Parse the DSL into a :class:`~repro.core.history.History`."""
    processes: dict[int, list] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _LINE.match(line)
        if not m:
            raise DSLError(f"line {lineno}: expected 'p<k>: ops...', got {raw!r}")
        pid = int(m.group(1))
        if pid in processes:
            raise DSLError(f"line {lineno}: process p{pid} defined twice")
        ops: list = []
        rest = m.group(2)
        pos = 0
        while pos < len(rest):
            if rest[pos].isspace():
                pos += 1
                continue
            token = _TOKEN.match(rest, pos)
            if not token:
                raise DSLError(
                    f"line {lineno}: cannot parse operation at: {rest[pos:]!r}"
                )
            pos = token.end()
            omega = False
            om = _OMEGA.match(rest, pos)
            if om:
                omega = True
                pos = om.end()
            op = _build(token)
            ops.append((op, True) if omega else op)
        processes[pid] = ops

    if not processes:
        raise DSLError("no processes in history")
    max_pid = max(processes)
    ordered = [processes.get(pid, []) for pid in range(max_pid + 1)]
    missing = [pid for pid in range(max_pid + 1) if pid not in processes]
    if missing:
        raise DSLError(f"missing process lines for pids {missing}")
    try:
        return History.from_processes(ordered)
    except ValueError as exc:
        raise DSLError(str(exc)) from exc


def _build(token: re.Match) -> Operation:
    if token.group("upd"):
        value = _value(token.group("uval"))
        return S.insert(value) if token.group("upd") == "I" else S.delete(value)
    if token.group("rset") is not None:
        body = token.group("rset").strip()
        values = frozenset(_value(v) for v in body.split(",")) if body else frozenset()
        return S.read(values)
    value = _value(token.group("cval"))
    return S.contains(value, token.group("csign") == "+")


def format_history(history: History) -> str:
    """Render a set history back into the DSL (inverse of the parser for
    DSL-expressible histories)."""
    lines = []
    for pid in history.pids:
        tokens = []
        for event in history.process_events(pid):
            label = event.label
            if label.name == "insert":
                tok = f"I({label.args[0]})"
            elif label.name == "delete":
                tok = f"D({label.args[0]})"
            elif label.name == "read":
                body = ",".join(str(v) for v in sorted(label.output, key=repr))
                tok = f"R{{{body}}}"
            elif label.name == "contains":
                tok = f"C({label.args[0]}){'+' if label.output else '-'}"
            else:
                raise ValueError(f"not a set operation: {label}")
            if event.omega:
                tok += "^w"
            tokens.append(tok)
        lines.append(f"p{pid}: " + " ".join(tokens))
    return "\n".join(lines)
