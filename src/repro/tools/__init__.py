"""User-facing tools: the history DSL and the classification CLI.

The DSL (:mod:`repro.tools.dsl`) reads histories in the paper's own
notation — ``I(v)``, ``D(v)``, ``R{...}``, ``^w`` for ω — so consistency
questions can be posed without writing Python::

    p0: I(1) D(2) R{1,2}^w
    p1: I(2) D(1) R{1,2}^w

The CLI (``python -m repro.tools``) classifies such files under the
criterion lattice and ships the paper's figures as built-in demos.
"""

from repro.tools.dsl import format_history, parse_set_history

__all__ = ["parse_set_history", "format_history"]
