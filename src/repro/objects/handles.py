"""Typed per-process handles over a replicated object.

A handle binds ``(cluster, pid)`` and exposes the object's natural API;
every method is one wait-free operation recorded in the cluster trace.
Example::

    cluster, replicas = make_replicated(SetSpec(), n=3, seed=7)
    alice, bob, carol = replicas
    alice.insert("x")          # completes locally, broadcasts
    bob.read()                 # may not see "x" yet — that's the model
    cluster.run()              # adversary delivers everything
    assert alice.read() == bob.read() == carol.read()
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.sim.cluster import Cluster
from repro.specs import (
    counter as _counter_mod,
)
from repro.specs import log_spec as _log_mod
from repro.specs import map_spec as _map_mod
from repro.specs import queue_spec as _queue_mod
from repro.specs import set_spec as _set_mod
from repro.specs import stack_spec as _stack_mod


class ObjectHandle:
    """Base: one process's view of a replicated object."""

    def __init__(self, cluster: Cluster, pid: int) -> None:
        self.cluster = cluster
        self.pid = pid

    def _update(self, update: Update) -> None:
        self.cluster.update(self.pid, update)

    def _query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        return self.cluster.query(self.pid, name, args)

    @property
    def replica(self):
        return self.cluster.replicas[self.pid]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} p{self.pid}>"


class SetHandle(ObjectHandle):
    """The replicated set of Example 1."""

    def insert(self, v: Hashable) -> None:
        """Insert ``v`` into the set (wait-free update)."""
        self._update(_set_mod.insert(v))

    def delete(self, v: Hashable) -> None:
        """Delete ``v`` from the set (wait-free update)."""
        self._update(_set_mod.delete(v))

    def read(self) -> frozenset:
        return self._query("read")

    def contains(self, v: Hashable) -> bool:
        """Membership of ``v`` in this replica's current view."""
        return self._query("contains", (v,))


class MapHandle(ObjectHandle):
    """The replicated dictionary (Dynamo-style KV store)."""

    def put(self, k: Hashable, v: Any) -> None:
        """Bind key ``k`` to ``v``."""
        self._update(_map_mod.put(k, v))

    def remove(self, k: Hashable) -> None:
        """Remove key ``k`` (no-op if absent)."""
        self._update(_map_mod.remove(k))

    def get(self, k: Hashable) -> Any:
        """Value bound to ``k``, or the ABSENT marker."""
        return self._query("get", (k,))

    def keys(self) -> frozenset:
        """The key set of this replica's current view."""
        return self._query("keys")

    def snapshot(self) -> tuple:
        return self._query("snapshot")


class RegisterHandle(ObjectHandle):
    """A single read/write register."""

    def write(self, v: Any) -> None:
        self._update(Update("write", (v,)))

    def read(self) -> Any:
        return self._query("read")


class MemoryHandle(ObjectHandle):
    """The multi-register shared memory of Algorithm 2."""

    def write(self, register: Hashable, v: Any) -> None:
        self._update(Update("write", (register, v)))

    def read(self, register: Hashable) -> Any:
        return self._query("read", (register,))

    def snapshot(self) -> dict:
        return self._query("snapshot")


class CounterHandle(ObjectHandle):
    def inc(self, k: int = 1) -> None:
        """Increment by ``k``."""
        self._update(_counter_mod.inc(k))

    def dec(self, k: int = 1) -> None:
        """Decrement by ``k``."""
        self._update(_counter_mod.dec(k))

    def read(self) -> int:
        return self._query("read")


class QueueHandle(ObjectHandle):
    """FIFO queue with the paper's split dequeue (front + pop)."""

    def enqueue(self, v: Any) -> None:
        """Append ``v`` at the tail."""
        self._update(_queue_mod.enqueue(v))

    def pop(self) -> None:
        """Remove the head (the update half of the split dequeue)."""
        self._update(_queue_mod.pop())

    def front(self) -> Any:
        """Observe the head (the query half of the split dequeue)."""
        return self._query("front")

    def size(self) -> int:
        return self._query("size")

    def snapshot(self) -> tuple:
        return self._query("snapshot")


class StackHandle(ObjectHandle):
    """LIFO stack with the split pop (top + drop)."""

    def push(self, v: Any) -> None:
        """Push ``v`` on top."""
        self._update(_stack_mod.push(v))

    def drop(self) -> None:
        """Delete the top (the update half of the split pop)."""
        self._update(_stack_mod.drop())

    def top(self) -> Any:
        """Observe the top (the query half of the split pop)."""
        return self._query("top")

    def size(self) -> int:
        return self._query("size")

    def snapshot(self) -> tuple:
        return self._query("snapshot")


class LogHandle(ObjectHandle):
    """Append-only log / collaborative document."""

    def append(self, v: Any) -> None:
        """Append an entry to the log."""
        self._update(_log_mod.append(v))

    def read(self) -> tuple:
        return self._query("read")

    def length(self) -> int:
        """Number of entries in this replica's view."""
        return self._query("length")

    def at(self, index: int) -> Any:
        """Entry at ``index`` (or the out-of-range marker)."""
        return self._query("at", (index,))


class GraphHandle(ObjectHandle):
    """The replicated social graph (undirected, edge-needs-endpoints)."""

    def add_vertex(self, v: Hashable) -> None:
        """Add member ``v``."""
        self._update(Update("add_vertex", (v,)))

    def remove_vertex(self, v: Hashable) -> None:
        """Remove member ``v`` and its incident edges."""
        self._update(Update("remove_vertex", (v,)))

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the (undirected) edge; no-op unless both ends are members."""
        self._update(Update("add_edge", (u, v)))

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge if present."""
        self._update(Update("remove_edge", (u, v)))

    def vertices(self) -> frozenset:
        """The member set of this replica's view."""
        return self._query("vertices")

    def edges(self) -> frozenset:
        """The edge set (frozensets of two endpoints)."""
        return self._query("edges")

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Edge membership (undirected)."""
        return self._query("has_edge", (u, v))

    def neighbors(self, v: Hashable) -> frozenset:
        """Members adjacent to ``v``."""
        return self._query("neighbors", (v,))

    def reachable(self, u: Hashable, v: Hashable) -> bool:
        """Path existence between two members."""
        return self._query("reachable", (u, v))

    def component_count(self) -> int:
        """Number of connected components."""
        return self._query("component_count")
