"""FIFO apply-on-receipt — the pipelined-consistency baseline.

"Pipelined consistency can be implemented at a very low cost in wait-free
systems.  Indeed, it only requires FIFO reception.  However, it does not
imply convergence." (Section IV.)

Each replica applies its own updates immediately and every remote update
the moment it is delivered.  Run over FIFO channels
(``Cluster(..., fifo=True)``), every process sees each sender's updates in
that sender's program order, so its local sequence of states is explained
by *some* linearization of all updates with its own chain — Definition 7.
But two replicas interleave concurrent updates differently and, for
non-commutative objects, never reconcile: this is exactly the Fig. 2
history, regenerated in ``benchmarks/bench_prop1_impossibility.py``.

The replica records, per query, the exact update sequence it has applied
(its personal linearization) so tests can verify pipelined consistency
constructively rather than by exponential search.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import UQADT, Update
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock


class FifoApplyReplica(Replica):
    """Apply updates in delivery order; queries read the running state."""

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        record_applied: bool = True,
    ) -> None:
        super().__init__(pid, n)
        self.spec = spec
        self.clock = LamportClock(pid)
        self._state: Any = spec.initial_state()
        self.record_applied = record_applied
        #: the updates applied, in application order — this replica's own
        #: linearization witness for Definition 7.
        self.applied_log: list[tuple[int, int, Update]] = []
        self._last_meta: dict[str, Any] = {}

    def on_update(self, update: Update) -> Sequence[Any]:
        ts = self.clock.tick()
        self._apply(ts.clock, ts.pid, update)
        self._last_meta = {"timestamp": (ts.clock, ts.pid)}
        return [(ts.clock, ts.pid, update)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, j, update = payload
        self.clock.merge(cl)
        self._apply(cl, j, update)
        return ()

    def _apply(self, cl: int, j: int, update: Update) -> None:
        self._state = self.spec.apply(self._state, update)
        if self.record_applied:
            self.applied_log.append((cl, j, update))

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        ts = self.clock.tick()
        self._last_meta = {
            "timestamp": (ts.clock, ts.pid),
            "applied": tuple((cl, j) for cl, j, _ in self.applied_log),
        }
        return self.spec.observe(self._state, name, args)

    def local_state(self) -> Any:
        return self._state

    def witness_meta(self) -> dict[str, Any]:
        meta, self._last_meta = self._last_meta, {}
        return meta
