"""ABD: the majority-quorum atomic register — the strong baseline.

The paper's introduction leans on two classical results to motivate weak
consistency:

* [Attiya & Welch] — sequentially consistent / linearizable operations
  must take time proportional to the network latency;
* [Attiya, Bar-Noy & Dolev — reference 3] — a shared register *can* be
  implemented atomically in message passing, but "the availability of the
  shared object cannot be ensured ... where more than a minority of the
  processes may crash".

This module implements that very algorithm (multi-writer ABD) on the
simulator so both costs are measurable against Algorithm 2:

* every operation is **two round-trips to a majority** (read: query
  phase + write-back phase; write: timestamp-query phase + store phase) —
  response time scales with the network latency
  (``benchmarks/bench_attiya_welch.py``);
* in a partition, the minority side's operations **never complete** —
  unavailability, where the update-consistent memory keeps answering.

Because operations block on quorums, they do not fit the wait-free
``on_update``/``on_query`` hooks; clients start operations with
:class:`ABDClient`, which returns handles completed by message delivery.
The read write-back phase is what makes reads atomic (a read must not be
ordered before an earlier read's value) — the detail most folklore
versions forget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.sim.cluster import Cluster
from repro.sim.replica import Replica

Stamp = tuple[int, int]  # (sequence, writer pid): totally ordered


class Unavailable(RuntimeError):
    """The operation cannot complete: no majority is reachable."""


@dataclass
class _PendingOp:
    kind: str  # "read" | "write"
    opid: int
    value: Any = None  # value to write (write) / value read (read)
    phase: int = 1
    replies: dict[int, Any] = field(default_factory=dict)
    done: bool = False
    result: Any = None


class ABDReplica(Replica):
    """Server and client roles of multi-writer ABD at one process."""

    def __init__(self, pid: int, n: int, initial: Any = None) -> None:
        super().__init__(pid, n)
        self.stamp: Stamp = (0, 0)
        self.value: Any = initial
        self.majority = n // 2 + 1
        self._ops: dict[int, _PendingOp] = {}
        self._opid = itertools.count()

    # -- client side ------------------------------------------------------------

    def begin_read(self) -> int:
        """Start an atomic read; returns the operation id to poll."""
        op = _PendingOp("read", next(self._opid))
        self._ops[op.opid] = op
        self.send_to(None, ("q", self.pid, op.opid))
        self._reply_to_self(("q", self.pid, op.opid))
        return op.opid

    def begin_write(self, value: Any) -> int:
        """Start an atomic write of ``value``; returns the op id."""
        op = _PendingOp("write", next(self._opid), value=value)
        self._ops[op.opid] = op
        self.send_to(None, ("q", self.pid, op.opid))
        self._reply_to_self(("q", self.pid, op.opid))
        return op.opid

    def poll(self, opid: int) -> _PendingOp:
        """The pending-operation record for ``opid`` (check ``.done``)."""
        return self._ops[opid]

    def _reply_to_self(self, request) -> None:
        """The process is its own quorum member: handle locally, now."""
        self._serve(self.pid, request)

    # -- server + client message handling ------------------------------------------

    def on_message(self, src: int, payload) -> tuple:
        """Dispatch a protocol message (server request or client reply)."""
        self._serve(src, payload)
        return ()

    def _serve(self, src: int, payload) -> None:
        tag = payload[0]
        if tag == "q":  # phase-1 query: report (stamp, value)
            _, client, opid = payload
            reply = ("qr", opid, self.stamp, self.value)
            if client == self.pid:
                self._client_handle(reply)
            else:
                self.send_to(client, reply)
        elif tag == "s":  # phase-2 store: adopt if newer, ack
            _, client, opid, stamp, value = payload
            if tuple(stamp) > self.stamp:
                self.stamp, self.value = tuple(stamp), value
            ack = ("sr", opid)
            if client == self.pid:
                self._client_handle(ack)
            else:
                self.send_to(client, ack)
        else:  # replies to this process's own pending operations
            self._client_handle(payload, src=src)

    def _client_handle(self, payload, src: int | None = None) -> None:
        tag, opid = payload[0], payload[1]
        op = self._ops.get(opid)
        if op is None or op.done:
            return  # stale reply after completion
        sender = self.pid if src is None else src
        if tag == "qr" and op.phase == 1:
            _, _, stamp, value = payload
            op.replies[sender] = (tuple(stamp), value)
            if len(op.replies) >= self.majority:
                top_stamp, top_value = max(op.replies.values(), key=lambda sv: sv[0])
                op.phase = 2
                op.replies = {}
                if op.kind == "write":
                    store_stamp = (top_stamp[0] + 1, self.pid)
                    store_value = op.value
                else:
                    store_stamp, store_value = top_stamp, top_value
                    op.result = top_value
                self.send_to(None, ("s", self.pid, opid, store_stamp, store_value))
                self._serve(self.pid, ("s", self.pid, opid, store_stamp, store_value))
        elif tag == "sr" and op.phase == 2:
            op.replies[sender] = True
            if len(op.replies) >= self.majority:
                op.done = True

    # -- hooks the quorum register deliberately does NOT implement ------------------

    def on_update(self, update):  # pragma: no cover - contract documentation
        raise NotImplementedError(
            "ABD operations block on quorums; use ABDClient, not the "
            "wait-free update/query interface"
        )

    def on_query(self, name, args=()):  # pragma: no cover
        raise NotImplementedError(
            "ABD operations block on quorums; use ABDClient, not the "
            "wait-free update/query interface"
        )

    def local_state(self) -> Any:
        """This replica's stored value (for inspection only)."""
        return self.value


class ABDClient:
    """Synchronous driver for one process's ABD operations.

    ``read()``/``write(v)`` start the protocol and deliver messages until
    the operation completes, returning ``(result, elapsed_time)``; if the
    network quiesces first (partition, too many crashes), they raise
    :class:`Unavailable` — the CAP cost the paper's introduction cites.
    """

    def __init__(self, cluster: Cluster, pid: int) -> None:
        self.cluster = cluster
        self.pid = pid

    @property
    def replica(self) -> ABDReplica:
        """The ABD replica this client drives."""
        return self.cluster.replicas[self.pid]

    def read(self) -> tuple[Any, float]:
        """Atomic read: ``(value, elapsed simulated time)``."""
        return self._drive(self.replica.begin_read())

    def write(self, value: Any) -> tuple[None, float]:
        """Atomic write: ``(None, elapsed simulated time)``."""
        result, elapsed = self._drive(self.replica.begin_write(value))
        return None, elapsed

    def read_async(self) -> int:
        """Non-blocking read start; drive the cluster, then ``done()``."""
        return self._begin(self.replica.begin_read)

    def write_async(self, value: Any) -> int:
        """Non-blocking write start; drive the cluster, then ``done()``."""
        return self._begin(lambda: self.replica.begin_write(value))

    def done(self, opid: int) -> bool:
        """Has the operation reached its quorums?"""
        return self.replica.poll(opid).done

    def _begin(self, starter) -> int:
        opid = starter()
        self.cluster._drain_outbox(self.replica)
        return opid

    def _drive(self, opid: int) -> tuple[Any, float]:
        self.cluster._drain_outbox(self.replica)
        start = self.cluster.now
        op = self.replica.poll(opid)
        while not op.done:
            if not self.cluster.step():
                raise Unavailable(
                    f"operation at p{self.pid} cannot reach a majority "
                    f"({self.replica.majority} of {self.cluster.n})"
                )
        return op.result, self.cluster.now - start
