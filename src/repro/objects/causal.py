"""Causal apply-on-receipt — the causal-consistency baseline.

Section IV's impossibility covers causal consistency too ("causal
consistency, that is stronger than pipelined consistency, cannot be
satisfied together with eventual consistency in a wait-free system").
This replica implements classic vector-clock causal broadcast: a received
update is buffered until causally ready (one step ahead of the local
clock in the sender's component, not ahead elsewhere) and applied then;
causally concurrent updates are applied in arrival order, so — like the
FIFO baseline — replicas of non-commutative objects can diverge forever.

It works on plain (non-FIFO) channels: the delivery buffer re-orders.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import UQADT, Update
from repro.sim.replica import Replica
from repro.util.clocks import VectorClock


class CausalApplyReplica(Replica):
    """Vector-clock causal delivery, apply in causal order."""

    def __init__(self, pid: int, n: int, spec: UQADT) -> None:
        super().__init__(pid, n)
        self.spec = spec
        self.vclock = VectorClock(n)
        self._state: Any = spec.initial_state()
        #: not-yet-deliverable messages: (stamp, sender, update).
        self.buffer: list[tuple[VectorClock, int, Update]] = []
        self.applied_log: list[tuple[int, Update]] = []
        self.max_buffered = 0

    def on_update(self, update: Update) -> Sequence[Any]:
        self.vclock.tick(self.pid)
        self._state = self.spec.apply(self._state, update)
        self.applied_log.append((self.pid, update))
        return [(self.vclock.as_tuple(), self.pid, update)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        vec, j, update = payload
        self.buffer.append((VectorClock(list(vec)), j, update))
        self.max_buffered = max(self.max_buffered, len(self.buffer))
        self._drain()
        return ()

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for i, (stamp, j, update) in enumerate(self.buffer):
                if stamp.causally_ready(j, self.vclock):
                    self.vclock.merge(stamp)
                    self._state = self.spec.apply(self._state, update)
                    self.applied_log.append((j, update))
                    del self.buffer[i]
                    progressed = True
                    break

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        return self.spec.observe(self._state, name, args)

    def local_state(self) -> Any:
        return self._state
