"""One-call construction of replicated objects.

``make_replicated(spec, n, strategy=...)`` builds a cluster of ``n``
replicas of ``spec`` and returns it with typed handles.  Strategies map to
the paper's implementations and optimizations:

==============  ==============================================  =========
strategy        replica                                          section
==============  ==============================================  =========
``universal``   :class:`~repro.core.universal.UniversalReplica`  Alg. 1
``checkpoint``  :class:`~repro.core.checkpoint.CheckpointedReplica`  VII-C
``gc``          :class:`~repro.core.checkpoint.GarbageCollectedReplica` VII-C
``undo``        :class:`~repro.core.undo.UndoReplica`            VII-C
``commutative`` :class:`~repro.core.commutative.CommutativeReplica` VII-C
``fifo``        :class:`~repro.objects.pipelined.FifoApplyReplica` Sec. IV
``causal``      :class:`~repro.objects.causal.CausalApplyReplica`  Sec. IV
==============  ==============================================  =========

(The ``fifo`` and ``causal`` strategies are baselines: pipelined/causally
consistent but not convergent — see Proposition 1.)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.adt import UQADT
from repro.core.checkpoint import CheckpointedReplica, GarbageCollectedReplica
from repro.core.commutative import CommutativeReplica
from repro.core.undo import UndoReplica
from repro.core.universal import UniversalReplica
from repro.objects.causal import CausalApplyReplica
from repro.objects.handles import (
    CounterHandle,
    GraphHandle,
    LogHandle,
    MapHandle,
    ObjectHandle,
    QueueHandle,
    RegisterHandle,
    SetHandle,
    StackHandle,
)
from repro.objects.pipelined import FifoApplyReplica
from repro.sim.cluster import Cluster
from repro.sim.network import LatencyModel

STRATEGIES: dict[str, Callable[..., Any]] = {
    "universal": UniversalReplica,
    "checkpoint": CheckpointedReplica,
    "gc": GarbageCollectedReplica,
    "undo": UndoReplica,
    "commutative": CommutativeReplica,
    "fifo": FifoApplyReplica,
    "causal": CausalApplyReplica,
}

#: spec name -> handle class, for the typed-handle convenience.
_HANDLES: dict[str, type[ObjectHandle]] = {
    "set": SetHandle,
    "g-set": SetHandle,
    "map": MapHandle,
    "register": RegisterHandle,
    "counter": CounterHandle,
    "queue": QueueHandle,
    "stack": StackHandle,
    "log": LogHandle,
    "graph": GraphHandle,
}


def make_replicated(
    spec: UQADT,
    n: int,
    *,
    strategy: str = "universal",
    latency: LatencyModel | None = None,
    seed: int = 0,
    fifo: bool | None = None,
    handle_cls: type[ObjectHandle] | None = None,
    **replica_kwargs: Any,
) -> tuple[Cluster, list[ObjectHandle]]:
    """Build a replicated ``spec`` over ``n`` simulated processes.

    ``fifo`` defaults to whatever the strategy needs (FIFO channels for
    the pipelined baseline and the GC variant; plain channels otherwise).
    Extra keyword arguments go to the replica constructor (e.g.
    ``checkpoint_interval=32``, ``track_witness=False``).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick from {sorted(STRATEGIES)}")
    replica_cls = STRATEGIES[strategy]
    if fifo is None:
        fifo = strategy in ("fifo", "gc")

    def factory(pid: int, total: int):
        return replica_cls(pid, total, spec, **replica_kwargs)

    cluster = Cluster(n, factory, latency=latency, seed=seed, fifo=fifo)
    cls = handle_cls if handle_cls is not None else _HANDLES.get(spec.name, ObjectHandle)
    handles = [cls(cluster, pid) for pid in range(n)]
    return cluster, handles


def make_memory(
    n: int,
    *,
    initial: Any = None,
    latency: LatencyModel | None = None,
    seed: int = 0,
) -> tuple[Cluster, list["MemoryHandle"]]:
    """Build the Algorithm 2 shared memory over ``n`` processes.

    Algorithm 2 is object-specific (it *is* the optimization), so it does
    not go through the generic strategy table.
    """
    from repro.core.memory import MemoryReplica
    from repro.objects.handles import MemoryHandle

    cluster = Cluster(
        n, lambda pid, total: MemoryReplica(pid, total, initial=initial),
        latency=latency, seed=seed,
    )
    return cluster, [MemoryHandle(cluster, pid) for pid in range(n)]
