"""Ready-to-use replicated objects and baseline implementations.

* :mod:`repro.objects.handles` — typed per-process handles (``SetHandle``,
  ``MapHandle``, ...) wrapping a cluster + replica pair with the natural
  object API (``insert``, ``put``, ``read`` ...).
* :mod:`repro.objects.factory` — one-call construction of a replicated
  object over any spec and any implementation strategy (naive Algorithm 1,
  checkpointed, undo, commutative fast path, Algorithm 2 memory).
* :mod:`repro.objects.pipelined` — the FIFO apply-on-receipt baseline:
  pipelined consistent, *not* convergent (Fig. 2's behaviour).
* :mod:`repro.objects.causal` — causal-order apply baseline (vector-clock
  causal broadcast): causally consistent, *not* convergent — the other
  half of Proposition 1's impossibility.
"""

from repro.objects.factory import make_memory, make_replicated, STRATEGIES
from repro.objects.handles import (
    CounterHandle,
    GraphHandle,
    LogHandle,
    MapHandle,
    MemoryHandle,
    QueueHandle,
    RegisterHandle,
    SetHandle,
    StackHandle,
)
from repro.objects.pipelined import FifoApplyReplica
from repro.objects.causal import CausalApplyReplica
from repro.objects.quorum import ABDClient, ABDReplica, Unavailable

__all__ = [
    "make_replicated",
    "make_memory",
    "STRATEGIES",
    "SetHandle",
    "GraphHandle",
    "MapHandle",
    "RegisterHandle",
    "MemoryHandle",
    "CounterHandle",
    "QueueHandle",
    "StackHandle",
    "LogHandle",
    "FifoApplyReplica",
    "CausalApplyReplica",
    "ABDReplica",
    "ABDClient",
    "Unavailable",
]
