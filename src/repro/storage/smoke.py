"""Crash-consistency smoke: drive the journal through its fates, fast.

CI entry point (``python -m repro.storage.smoke``): in a throwaway
directory, write a journal through the engine, then inflict each crash
fate — torn tail, mid-file bit rot, interrupted compaction — and check
the recovery contract end to end (including the digest chain re-verified
by :func:`repro.proto.wire.restore_replica`).  Prints one ``PASS`` line
per scenario; any failure is a traceback and a non-zero exit.

The pytest suites (``tests/storage``, ``tests/net``) cover the same
ground exhaustively; this module exists so the chaos CI job — which runs
the fuzzers, not the unit suites — also exercises the storage engine's
recovery path on every push.
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.proto.wire import restore_replica
from repro.specs import SetSpec
from repro.specs import set_spec as S
from repro.storage import CorruptImageError, JournalStore

SPEC = SetSpec()


def _replica(n_updates: int = 16) -> UniversalReplica:
    r = UniversalReplica(0, 3, SPEC)
    for i in range(n_updates):
        r.on_update(S.insert(i))
    return r


def _write_store(path: str, replica) -> None:
    st = JournalStore(path, 0)
    st.open()
    st.sync(replica)
    st.close()


def _recover(path: str, *, cls=UniversalReplica, **kw):
    st = JournalStore(path, 0)
    image = st.open()
    fresh = cls(0, 3, SPEC, **kw)
    if image is not None:
        restore_replica(fresh, image)
    return fresh, st


def scenario_clean_recovery(tmp: str) -> None:
    path = os.path.join(tmp, "clean.journal")
    replica = _replica()
    _write_store(path, replica)
    fresh, st = _recover(path)
    assert fresh.local_state() == replica.local_state(), "state diverged"
    assert fresh.clock.value == replica.clock.value, "clock diverged"
    assert not st.truncated_tail
    st.close()


def scenario_torn_tail(tmp: str) -> None:
    path = os.path.join(tmp, "torn.journal")
    replica = _replica()
    _write_store(path, replica)
    with open(path, "r+b") as fh:
        fh.truncate(os.path.getsize(path) - 7)
    fresh, st = _recover(path)
    assert st.truncated_tail, "torn tail went undetected"
    assert len(fresh.updates) == len(replica.updates) - 1, "wrong prefix"
    assert fresh.clock.value == replica.clock.value, "WAL clock cell lost"
    st.close()


def scenario_bit_rot(tmp: str) -> None:
    path = os.path.join(tmp, "rot.journal")
    _write_store(path, _replica())
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(path, "wb").write(bytes(raw))
    try:
        JournalStore(path, 0).open()
    except CorruptImageError as exc:
        assert exc.path == path and exc.offset > 0
    else:
        raise AssertionError("mid-file bit rot was not detected")


def scenario_interrupted_compaction(tmp: str) -> None:
    path = os.path.join(tmp, "compact.journal")
    replica = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
    for i in range(10):
        replica.on_update(S.insert(i))
    _write_store(path, replica)
    # crash between writing the new generation and the rename
    with open(path + ".tmp", "wb") as fh:
        fh.write(b"half-written generation")
    fresh, st = _recover(path, cls=GarbageCollectedReplica,
                         checkpoint_interval=2)
    assert not os.path.exists(path + ".tmp"), "stale tmp survived"
    assert fresh.local_state() == replica.local_state(), "state diverged"
    st.close()


def scenario_compaction_round_trip(tmp: str) -> None:
    path = os.path.join(tmp, "gc.journal")
    replica = GarbageCollectedReplica(0, 1, SPEC, checkpoint_interval=2)
    st = JournalStore(path, 0)
    st.open()
    for i in range(12):
        replica.on_update(S.insert(i))
        st.sync(replica)
    before = st.bytes_on_disk()
    replica.collect_garbage()
    stats = st.sync(replica)
    assert stats["compacted"] == 1, "floor advance did not compact"
    assert st.bytes_on_disk() < before, "compaction did not shrink the file"
    st.close()
    fresh, st2 = _recover(path, cls=GarbageCollectedReplica,
                          checkpoint_interval=2)
    assert fresh.local_state() == replica.local_state(), "state diverged"
    assert fresh.gc_clock_floor == replica.gc_clock_floor, "floor lost"
    st2.close()


SCENARIOS = [
    scenario_clean_recovery,
    scenario_torn_tail,
    scenario_bit_rot,
    scenario_interrupted_compaction,
    scenario_compaction_round_trip,
]


def main() -> int:
    failures = 0
    for scenario in SCENARIOS:
        with tempfile.TemporaryDirectory(prefix="repro-storage-smoke-") as tmp:
            try:
                scenario(tmp)
            except Exception:  # pragma: no cover - only on regression
                failures += 1
                print(f"FAIL {scenario.__name__}")
                import traceback

                traceback.print_exc()
            else:
                print(f"PASS {scenario.__name__}")
    if failures:
        print(f"{failures} of {len(SCENARIOS)} storage smoke scenarios failed")
        return 1
    print(f"all {len(SCENARIOS)} storage smoke scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
