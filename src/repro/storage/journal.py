"""The append-only binary journal: framed records, torn-tail recovery.

This is the physical realisation of the paper's ``fsync_point`` crash
model.  The simulator *declares* that a crash loses the unflushed log
tail and nothing else; a real filesystem makes no such promise — a power
cut can leave a half-written record at the end of the file, and a rename
that was never followed by a directory fsync can vanish entirely.  The
journal closes that gap:

* every record is framed ``len(4, BE) | crc32(4, BE) | payload`` and the
  payload is the canonical record encoding from
  :mod:`repro.proto.wire` — so a torn write is *detectable*;
* a frame that fails its CRC **at the end of the file** is the torn tail:
  recovery truncates the file back to the last valid frame, which is
  exactly ``fsync_point`` semantics (the tail is lost, the prefix is
  intact).  A frame that fails mid-file — valid frames follow it — is not
  a crash artifact but corruption, and raises
  :class:`CorruptImageError` with the byte offset;
* records thread the rolling digest chain ``H(H'|H(record))`` from
  :func:`repro.proto.wire.genesis_digest`, so splicing, reordering, or
  records from another replica's journal fail verification even when
  every frame's own CRC is fine;
* appends end with ``flush + fsync`` (batched per commit), and the paths
  that create or replace the file fsync the *directory* too — the classic
  crash-consistency bug this PR sweeps out of the snapshot writer.

The journal knows nothing about replicas; it stores dict records.  The
engine (:mod:`repro.storage.engine`) decides what the records mean.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.proto.wire import (
    DIGEST_LINK_HEX,
    advance_digest,
    chain_record,
    encode_record,
    genesis_digest,
)

#: file magic: "repro journal", format generation 3 (the image version).
MAGIC = b"RJL3"
#: frame header: payload length, crc32(payload) — both big-endian u32.
FRAME_HEADER = struct.Struct(">II")
#: a single record larger than this is never legitimate (an update is a
#: few hundred bytes; a compacted base a few KiB) — a length field beyond
#: it means the header bytes themselves are damaged.
MAX_RECORD = 64 * 1024 * 1024


class CorruptImageError(RuntimeError):
    """A durable image failed validation *beyond* a torn tail.

    Carries the offending ``path`` and byte ``offset`` so an operator (or
    ``/healthz``) can point at the damage.  Torn tails never raise this —
    they are the crash model working as designed and are silently
    truncated; this error means bytes the journal *did* fsync came back
    different, or a JSON image did not parse.
    """

    def __init__(self, path: str, offset: int, reason: str) -> None:
        self.path = str(path)
        self.offset = int(offset)
        self.reason = reason
        super().__init__(
            f"{self.path}: corrupt durable image at byte {self.offset}: {reason}"
        )


def fsync_dir(path: str) -> None:
    """fsync the directory ``path`` so a rename/create inside it is
    durable (best-effort: platforms that cannot fsync a directory — or
    cannot open one — simply skip)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def frame_record(stamped: dict) -> bytes:
    """One chained record as its on-disk frame."""
    payload = encode_record(stamped)
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class Journal:
    """One replica's append-only journal file.

    Use :meth:`open` (scans, verifies, truncates a torn tail, returns the
    surviving records) rather than the constructor.  Appends go through
    :meth:`append` + :meth:`commit` — a commit is the durability point
    (``fsync_point`` advances to the last committed record).
    """

    def __init__(self, path: str, pid: int, *, fsync: bool = True) -> None:
        self.path = str(path)
        self.pid = int(pid)
        #: benchmarks building 10^5-record journals turn the per-commit
        #: fsync off; everything else leaves it on.
        self.fsync = fsync
        self.digest = genesis_digest(pid)
        self.records = 0
        self._fh = None  # type: ignore[var-annotated]

    # -- opening / recovery ------------------------------------------------------

    @classmethod
    def open(
        cls, path: str, pid: int, *, fsync: bool = True
    ) -> tuple["Journal", list[dict], bool]:
        """Open (or create) the journal at ``path``.

        Returns ``(journal, records, torn)``: the verified surviving
        records and whether a torn tail was truncated.  A stale
        compaction tmp file (crash between tmp write and rename) is
        removed — the rename never happened, so the old generation is
        still the durable truth.  Raises :class:`CorruptImageError` on
        mid-file damage.
        """
        tmp = path + ".tmp"
        if os.path.exists(tmp):
            os.unlink(tmp)
        journal = cls(path, pid, fsync=fsync)
        if not os.path.exists(path):
            with open(path, "xb") as fh:
                fh.write(MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            fsync_dir(os.path.dirname(path) or ".")
            journal._fh = open(path, "r+b")
            journal._fh.seek(0, os.SEEK_END)
            return journal, [], False
        with open(path, "rb") as fh:
            raw = fh.read()
        records, valid_end, torn = journal._scan(raw)
        journal._fh = open(path, "r+b")
        if torn:
            journal._fh.truncate(valid_end)
            if fsync:
                os.fsync(journal._fh.fileno())
        journal._fh.seek(valid_end)
        journal.records = len(records)
        return journal, records, torn

    def _scan(self, raw: bytes) -> tuple[list[dict], int, bool]:
        """Walk the frames in ``raw``, advancing the digest chain.

        Returns ``(records, valid_end_offset, torn)``.  The torn/corrupt
        distinction: an invalid frame that reaches (or overruns) the end
        of the file is the crash model's lost tail; invalid bytes *with
        valid data after them* mean the storage lied about an fsync.
        """
        path = self.path
        if raw[: len(MAGIC)] != MAGIC:
            raise CorruptImageError(
                path, 0, f"bad magic {raw[:len(MAGIC)]!r} (want {MAGIC!r})"
            )
        records: list[dict] = []
        offset = len(MAGIC)
        size = len(raw)
        while offset < size:
            header = raw[offset:offset + FRAME_HEADER.size]
            if len(header) < FRAME_HEADER.size:
                return records, offset, True  # torn: partial header at EOF
            length, crc = FRAME_HEADER.unpack(header)
            end = offset + FRAME_HEADER.size + length
            if length > MAX_RECORD:
                # The length field itself is garbage; nothing after it can
                # be reframed.  At EOF that is a torn header, but garbage
                # we cannot skip past is indistinguishable from mid-file
                # damage — refuse rather than silently drop a suffix.
                if size - offset <= FRAME_HEADER.size + 8:
                    return records, offset, True
                raise CorruptImageError(
                    path, offset,
                    f"frame length {length} exceeds the {MAX_RECORD}-byte "
                    "record bound",
                )
            if end > size:
                return records, offset, True  # torn: payload ran past EOF
            payload = raw[offset + FRAME_HEADER.size:end]
            if zlib.crc32(payload) != crc:
                if end >= size:
                    return records, offset, True  # torn: last frame damaged
                raise CorruptImageError(
                    path, offset,
                    "CRC mismatch on a frame with valid data after it "
                    "(fsynced bytes changed on disk)",
                )
            try:
                rec = json.loads(payload)
            except ValueError as exc:
                if end >= size:
                    return records, offset, True
                raise CorruptImageError(
                    path, offset, f"frame payload is not valid JSON: {exc}"
                ) from exc
            if not isinstance(rec, dict) or rec.get("d") != (
                self.digest.hex()[:DIGEST_LINK_HEX]
            ):
                raise CorruptImageError(
                    path, offset,
                    "digest chain mismatch (record reordered, spliced, or "
                    "from another replica's journal)",
                )
            self.digest = advance_digest(self.digest, payload)
            records.append(rec)
            offset = end
        return records, offset, False

    # -- appending ---------------------------------------------------------------

    def append(self, record: dict) -> dict:
        """Chain and buffer one record; durable only after :meth:`commit`."""
        if self._fh is None:
            raise RuntimeError("journal is closed")
        self.digest, stamped = chain_record(self.digest, record)
        self._fh.write(frame_record(stamped))
        self.records += 1
        return stamped

    def commit(self) -> None:
        """Flush and fsync the appended batch — the durability point."""
        if self._fh is None:
            raise RuntimeError("journal is closed")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- compaction --------------------------------------------------------------

    def rewrite(self, records: list[dict]) -> list[dict]:
        """Atomically replace the journal with a fresh generation.

        Writes ``records`` (chained from genesis again) to a tmp file,
        fsyncs it, renames over the journal and fsyncs the directory —
        so a crash at any point leaves either the old generation or the
        new one, never a mix.  Returns the stamped records.
        """
        if self._fh is None:
            raise RuntimeError("journal is closed")
        tmp = self.path + ".tmp"
        digest = genesis_digest(self.pid)
        stamped: list[dict] = []
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            for rec in records:
                digest, s = chain_record(digest, rec)
                fh.write(frame_record(s))
                stamped.append(s)
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        fsync_dir(os.path.dirname(self.path) or ".")
        self._fh = open(self.path, "r+b")
        self._fh.seek(0, os.SEEK_END)
        self.digest = digest
        self.records = len(stamped)
        return stamped

    # -- introspection / lifecycle -----------------------------------------------

    @property
    def digest_hex(self) -> str:
        return self.digest.hex()

    def bytes_on_disk(self) -> int:
        if self._fh is None:
            return os.path.getsize(self.path) if os.path.exists(self.path) else 0
        self._fh.flush()
        return os.fstat(self._fh.fileno()).st_size

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
