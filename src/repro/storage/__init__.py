"""Journal-backed durable storage (DESIGN.md §15, ``docs/storage.md``).

The physical realisation of the paper's ``fsync_point`` crash model: an
append-only journal of CRC-framed, digest-chained records
(:mod:`repro.storage.journal`) under a current-state k/v engine with
update-counter references and GC-keyed compaction
(:mod:`repro.storage.engine`).  ``python -m repro.storage.smoke`` runs
the crash-consistency scenarios (torn tail, bit flip, interrupted
compaction) end to end — the chaos CI job's storage leg.
"""

from repro.storage.engine import JournalStore
from repro.storage.journal import CorruptImageError, Journal, fsync_dir

__all__ = ["CorruptImageError", "Journal", "JournalStore", "fsync_dir"]
