"""The storage engine: a journal plus a current-state k/v map.

Modeled on ``statejournal`` (SNIPPETS.md): the durable truth is the
append-only journal (:mod:`repro.storage.journal`); on top of it the
engine keeps an in-memory *current-state* map ``key -> (update_counter,
record)`` — the latest journal record for each logical cell, referenced
by the journal's monotone update counter.  The cells are exactly the
:mod:`repro.proto.wire` v3 record vocabulary:

* ``"clock"`` — the write-ahead Lamport clock cell.  Re-appended (cheap:
  one small record) whenever the clock advanced, *before* the entries of
  the same batch, so a recovering process never reuses a timestamp even
  when the batch's entry tail is torn off.
* ``"base"`` — the compacted GC segment (base state, clock floor, fold
  frontier, heard vector).  Written at journal birth for GC replicas and
  rewritten by compaction.
* ``"heard"`` — the GC replica's heard vector on its own, re-appended
  (one small record) whenever it advanced between compactions, so a
  recovered replica's completeness claims are as fresh as its last
  flush, not its last compaction.
* ``"<clock>.<pid>"`` — one cell per logged update, keyed by its Lamport
  timestamp.  The journal's update counter refines the very total order
  the paper's Algorithm 1 replays in, which is why replaying the journal
  start-to-end and restoring a one-shot snapshot land in the same state.

Writes are *incremental*: :meth:`JournalStore.sync` appends only the
cells that changed since the last sync, so the per-update write cost is
flat in the log length — the whole point over the previous
rewrite-the-entire-JSON-image flusher (see ``benchmarks/bench_storage``).

Compaction is keyed to the GC replica's floor: once
``replica.gc_clock_floor`` passes what the on-disk base record covers,
the folded entry cells are dead weight and the journal is atomically
rewritten (tmp + rename + dir fsync) to a fresh generation holding just
the new base and the surviving tail.
"""

from __future__ import annotations

import os
from typing import Any

from repro.proto.wire import (
    REPLICA_FORMAT_V3,
    decode_value,
    encode_ts_key,
    encode_value,
    journal_image,
    journal_records,
)
from repro.storage.journal import Journal

#: k/v keys of the singleton cells (every other key is a timestamp).
CLOCK_KEY = "clock"
BASE_KEY = "base"
HEARD_KEY = "heard"


class JournalStore:
    """One replica's durable storage engine.

    Lifecycle: :meth:`open` once (recovers whatever the journal holds and
    returns it as a v3 image for ``ProtocolCore.recover``), then
    :meth:`sync` on every dirty-flag flush, :meth:`close` on shutdown.
    """

    def __init__(self, path: str, pid: int, *, fsync: bool = True) -> None:
        self.path = str(path)
        self.pid = int(pid)
        self.fsync = fsync
        self._journal: Journal | None = None
        #: current-state map: key -> (update_counter, record).
        self.kv: dict[str, tuple[int, dict]] = {}
        self._counter = 0
        self._clock_written = -1
        self._base_floor: int | None = None
        self._heard_written: tuple[int, ...] | None = None
        #: whether the last :meth:`open` truncated a torn tail.
        self.truncated_tail = False
        self.compactions = 0
        self.appends = 0

    # -- lifecycle ---------------------------------------------------------------

    def open(self) -> str | None:
        """Open/create the journal; recover its contents.

        Returns the surviving state as a v3 image (text) to feed to
        ``ProtocolCore.recover`` — whose restore re-verifies the digest
        chain end to end — or ``None`` when the journal is fresh/empty.
        Raises :class:`CorruptImageError` on mid-file damage.
        """
        journal, records, torn = Journal.open(self.path, self.pid, fsync=self.fsync)
        self._journal = journal
        self.truncated_tail = torn
        for rec in records:
            self._account(rec)
        if len(records) <= 1:  # nothing but (at most) the meta record
            return None
        return journal_image(
            self.pid, records, journal.digest_hex, complete=not torn
        )

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- the write path ----------------------------------------------------------

    def sync(self, replica: Any) -> dict[str, int]:
        """Append whatever changed since the last sync; maybe compact.

        The append order is the write-ahead discipline: base (only at
        journal birth), then the clock cell, then new entry cells — so
        any torn suffix of a batch loses entries, never the clock that
        stamped them.  Returns ``{"appended": ..., "compacted": 0|1}``.
        """
        journal = self._require_journal()
        durable_gc = getattr(replica, "durable_gc_state", None)
        floor = int(getattr(replica, "gc_clock_floor", 0))
        if (
            durable_gc is not None
            and self._base_floor is not None
            and floor > self._base_floor
        ):
            # The folded prefix on disk is dead weight: rewrite.
            self.compact(replica)
            return {"appended": 0, "compacted": 1}
        batch: list[dict] = []
        if journal.records == 0:
            batch.append({"r": "meta", "format": REPLICA_FORMAT_V3, "pid": self.pid})
            if durable_gc is not None:
                batch.append(self._base_record(durable_gc()))
        clock = int(replica.clock.value)
        if clock > self._clock_written:
            self._counter += 1
            batch.append({"r": "clock", "c": self._counter, "value": clock})
        for cl, j, update in replica.updates:
            key = encode_ts_key((cl, j))
            if key in self.kv:
                continue
            self._counter += 1
            batch.append({
                "r": "entry", "c": self._counter, "k": key,
                "e": encode_value((cl, j, update)),
            })
        if durable_gc is not None:
            # The heard vector is a completeness claim, so it goes *last*
            # in the batch: a torn suffix must never keep a heard advance
            # while dropping the entry cells that justify it.  One small
            # record per flush keeps the base segment compaction-only.
            heard = tuple(int(h) for h in replica.heard)
            if heard != self._heard_written:
                self._counter += 1
                batch.append({
                    "r": "heard", "c": self._counter,
                    "h": encode_value(heard),
                })
        if not batch:
            return {"appended": 0, "compacted": 0}
        for rec in batch:
            self._account(journal.append(rec))
        journal.commit()
        self.appends += len(batch)
        return {"appended": len(batch), "compacted": 0}

    def compact(self, replica: Any) -> None:
        """Rewrite the journal as a fresh generation of ``replica``'s
        current durable state (atomic: tmp + rename + dir fsync)."""
        journal = self._require_journal()
        records, _complete = journal_records(replica)
        stamped = journal.rewrite(records)
        self.kv.clear()
        self._counter = 0
        self._clock_written = -1
        self._base_floor = None
        self._heard_written = None
        for rec in stamped:
            self._account(rec)
        self.appends += len(stamped)
        self.compactions += 1

    # -- introspection -----------------------------------------------------------

    @property
    def digest_hex(self) -> str:
        return self._require_journal().digest_hex

    @property
    def counter(self) -> int:
        """The journal's current update counter (this generation)."""
        return self._counter

    def bytes_on_disk(self) -> int:
        if self._journal is None:
            return os.path.getsize(self.path) if os.path.exists(self.path) else 0
        return self._journal.bytes_on_disk()

    def info(self) -> dict[str, Any]:
        """Operator-facing summary (surfaced by ``/healthz``)."""
        return {
            "path": self.path,
            "records": 0 if self._journal is None else self._journal.records,
            "counter": self._counter,
            "digest": None if self._journal is None else self.digest_hex,
            "bytes": self.bytes_on_disk(),
            "appends": self.appends,
            "compactions": self.compactions,
            "truncated_tail": self.truncated_tail,
        }

    # -- internals ---------------------------------------------------------------

    def _account(self, rec: dict) -> None:
        """Fold one (stamped) journal record into the current-state map."""
        kind = rec.get("r")
        counter = int(rec.get("c", 0))
        self._counter = max(self._counter, counter)
        if kind == "clock":
            self.kv[CLOCK_KEY] = (counter, rec)
            self._clock_written = max(self._clock_written, int(rec["value"]))
        elif kind == "base":
            self.kv[BASE_KEY] = (counter, rec)
            self._base_floor = int(rec["clock_floor"])
            self._heard_written = tuple(
                int(h) for h in decode_value(rec["heard"])
            )
        elif kind == "heard":
            self.kv[HEARD_KEY] = (counter, rec)
            self._heard_written = tuple(
                int(h) for h in decode_value(rec["h"])
            )
        elif kind == "entry":
            self.kv[str(rec["k"])] = (counter, rec)
        # meta (and unknown kinds): not a state cell.

    def _base_record(self, gc: dict) -> dict:
        self._counter += 1
        # the base carries the heard vector, so a heard record in the
        # same batch would be redundant
        self._heard_written = tuple(int(h) for h in gc["heard"])
        return {
            "r": "base", "c": self._counter,
            "base": encode_value(gc["base"]),
            "clock_floor": int(gc["clock_floor"]),
            "frontier": encode_value(gc["frontier"]),
            "heard": encode_value(tuple(gc["heard"])),
        }

    def _require_journal(self) -> Journal:
        if self._journal is None:
            raise RuntimeError("store is not open (call open() first)")
        return self._journal
