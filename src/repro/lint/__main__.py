"""Entry point for ``python -m repro.lint``."""

from __future__ import annotations

import sys

import repro.lint  # noqa: F401  (registers the rules)
from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
