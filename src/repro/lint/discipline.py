"""REP2xx — replica discipline (the wait-free system model, Section VII-A).

A replica's hooks run "based solely on the local knowledge of the
process": the only legal effects are mutating *its own* state and handing
payloads to the runtime via the send API.  Reaching around the runtime —
appending to the outbox by hand, calling a network object directly, or
mutating a delivered payload that other replicas share — breaks the model
the proofs (and the fault-injection adversaries of PR 1) rely on.

| code   | invariant                                                       |
|--------|-----------------------------------------------------------------|
| REP201 | hooks send only via ``self.send_to`` / returned payloads        |
| REP202 | hooks never mutate delivered payloads or foreign objects        |
| REP203 | the Lamport clock is restored/merged *before* the update log    |
|        | is touched (the PR-1 WAL rule: no timestamp reuse after crash)  |
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ClassInfo, Finding, ModuleInfo, register
from repro.lint.mutation import find_mutations, function_params, root_name

#: Replica hook prefixes: the runtime-invoked entry points plus their
#: conventional private helpers.
HOOK_PREFIXES = ("on_", "_on_")

#: Method names on non-self objects that reach the network directly.
NETWORK_METHODS = frozenset({"broadcast", "deliver", "transmit", "unicast", "post"})

#: Calls that append to the durable update log.
LOG_CALLS = frozenset({"load_log", "_insert"})


def _finding(module: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


def _methods(cls: ClassInfo) -> Iterator[ast.FunctionDef]:
    for node in cls.node.body:
        if isinstance(node, ast.FunctionDef):
            yield node


def _is_hook(method: ast.FunctionDef) -> bool:
    return method.name.startswith(HOOK_PREFIXES)


@register("REP201", "hooks touch the network only via the send API")
def rep201_send_api(module: ModuleInfo) -> Iterator[Finding]:
    for cls in module.replica_classes():
        for method in _methods(cls):
            if method.name == "send_to":
                continue  # the send API itself owns the outbox
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                # self.outbox.append(...) — bypasses send_to, losing any
                # invariant the API maintains (and hiding sends from hooks).
                if (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr == "outbox"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                ):
                    yield _finding(
                        module,
                        node,
                        "REP201",
                        f"{cls.node.name}.{method.name} manipulates "
                        "self.outbox directly; route every send through "
                        "self.send_to(dst, payload) (or return payloads) so "
                        "the runtime sees a single send path",
                    )
                # network.broadcast(...) etc. on anything that is not self:
                # a replica has no reference to the network in the wait-free
                # model — delivery is the runtime's job.
                elif func.attr in NETWORK_METHODS:
                    root = root_name(func.value)
                    if root is not None and root != "self":
                        yield _finding(
                            module,
                            node,
                            "REP201",
                            f"{cls.node.name}.{method.name} calls "
                            f"{ast.unparse(func)!r}: replicas must not drive "
                            "the network object directly — return payloads "
                            "or use self.send_to and let the runtime deliver",
                        )


@register("REP202", "hooks never mutate delivered payloads or foreign objects")
def rep202_foreign_mutation(module: ModuleInfo) -> Iterator[Finding]:
    """Hook parameters (``payload``, ``update``, ``src``…) are shared with
    the runtime and — under the zero-copy simulator — with every other
    receiver of the same broadcast; mutating them corrupts other replicas'
    deliveries, the precise cross-replica interference the model forbids."""
    for cls in module.replica_classes():
        for method in _methods(cls):
            if not _is_hook(method):
                continue
            params = set(function_params(method))
            if not params:
                continue
            for node, description in find_mutations(method, params):
                yield _finding(
                    module,
                    node,
                    "REP202",
                    f"{cls.node.name}.{method.name} mutates a hook argument "
                    f"({description}); delivered payloads are shared objects "
                    "— copy before changing, and never reach into another "
                    "replica's state",
                )


@register("REP203", "restore/merge the Lamport clock before touching the log")
def rep203_clock_before_log(module: ModuleInfo) -> Iterator[Finding]:
    """In any function that both restores a Lamport clock and loads/inserts
    into the update log, the clock must come first.

    The clock is a write-ahead cell (see ``repro.sim.persist``): a
    recovering process that replays log entries before raising its clock
    can stamp a fresh update with a ``(clock, pid)`` pair its pre-crash
    broadcasts already used — two different updates with one identity, and
    Algorithm 1's total order silently stops being an order.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        clock_line: int | None = None
        log_line: int | None = None
        log_node: ast.AST | None = None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                attr = sub.func.attr
                owner = sub.func.value
                if (
                    attr in ("merge", "tick")
                    and isinstance(owner, ast.Attribute)
                    and owner.attr in ("clock", "vclock")
                ):
                    if clock_line is None or sub.lineno < clock_line:
                        clock_line = sub.lineno
                elif attr in LOG_CALLS:
                    if log_line is None or sub.lineno < log_line:
                        log_line = sub.lineno
                        log_node = sub
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Attribute) and target.attr in (
                        "clock",
                        "vclock",
                    ):
                        if clock_line is None or sub.lineno < clock_line:
                            clock_line = sub.lineno
        if clock_line is not None and log_line is not None and log_line < clock_line:
            assert log_node is not None
            yield _finding(
                module,
                log_node,
                "REP203",
                f"{node.name} touches the update log (line {log_line}) "
                f"before restoring the Lamport clock (line {clock_line}); "
                "the clock is a write-ahead cell — merge it first or a "
                "recovered replica can reuse a (clock, pid) timestamp",
            )
