"""UQ006 — declared commutativity must survive a behavioural probe.

The commutative fast path (Section VII-C, implemented in
:mod:`repro.core.universal` and :mod:`repro.core.commutative`) trusts a
spec's ``commutative_updates = True`` declaration and applies updates in
arrival order.  A spec that *lies* — declares commutativity but has an
order-sensitive ``apply`` — silently diverges under that path, which is
the worst failure mode a declaration-driven optimization can have.

UQ006 cross-checks the declaration behaviourally: for every UQ-ADT class
whose body sets ``commutative_updates = True``, it instantiates the spec,
takes the probe set the spec itself advertises
(:meth:`repro.core.adt.UQADT.probe_updates`), and applies every pair in
both orders from the initial state and a few derived states.  A pair with
``T(T(s,a),b) != T(T(s,b),a)`` (compared via the spec's ``canonical``) is
reported, as is a commutative declaration with *no* probes (unverifiable
— the fast path would activate on nothing but the author's word).  The
no-probes half is decided statically (a ``probe_updates`` definition is
visible in the class body or a locally defined base), so it fires even on
files the import system cannot load; the order-sensitivity half needs
the import.

This is the engine's one documented exception to "the linter never
executes the linted code": probing commutativity is a semantic property
no AST walk can decide.  The execution is tightly scoped — a module is
imported only when (a) it syntactically declares a commutative spec and
(b) :func:`importlib.util.find_spec` resolves its dotted name to the very
file being linted, i.e. only code that is importable from the current
environment anyway ever runs.  Modules outside any package, unimportable
modules and uninstantiable specs are skipped silently (other rules still
apply to them).
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
from pathlib import Path
from typing import Any, Iterator

from repro.lint.engine import ClassInfo, Finding, ModuleInfo, register

#: Cap on derived probe states: pairs are quadratic and specs may ship
#: generous probe sets; a handful of reachable states catches the
#: pair-order conflicts the probes were designed to expose.
_MAX_DERIVED_STATES = 3


def _finding(module: ModuleInfo, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code="UQ006",
        message=message,
    )


def _commutative_declaration(cls: ClassInfo) -> ast.stmt | None:
    """The class-body statement setting ``commutative_updates = True``."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target.id] if isinstance(stmt.target, ast.Name) else []
            value = stmt.value
        else:
            continue
        if (
            "commutative_updates" in targets
            and isinstance(value, ast.Constant)
            and value.value is True
        ):
            return stmt
    return None


def _defines_probe_updates(module: ModuleInfo, cls: ClassInfo) -> bool:
    """Is ``probe_updates`` defined on the class or a locally defined
    base?  (An inherited definition from another module is invisible to
    the AST; such specs are probed behaviourally when importable, and a
    cross-module inheritor is exotic enough to warrant the finding.)"""
    local = {c.node.name: c for c in module.classes}
    stack = [cls.node.name]
    seen: set[str] = set()
    while stack:
        name = stack.pop()
        if name in seen or name not in local:
            continue
        seen.add(name)
        candidate = local[name]
        for stmt in candidate.node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "probe_updates"
            ):
                return True
        stack.extend(candidate.base_names)
    return False


def _dotted_module_name(path: Path) -> str | None:
    """Dotted import name of ``path``, derived from its ``__init__.py``
    chain; ``None`` when the file is not inside a package (then there is
    no name the current environment could import it under)."""
    try:
        path = path.resolve()
    except OSError:  # pragma: no cover - defensive
        return None
    if path.name == "__init__.py":
        parts = []
        parent = path.parent
    else:
        parts = [path.stem]
        parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) < 2:
        return None
    return ".".join(reversed(parts))


def _import_module_for(path: Path) -> Any | None:
    """Import the package module living at ``path`` — only if the import
    system agrees that the dotted name resolves to this exact file."""
    dotted = _dotted_module_name(path)
    if dotted is None:
        return None
    try:
        spec = importlib.util.find_spec(dotted)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None:
        return None
    try:
        if not Path(spec.origin).resolve() == path.resolve():
            return None
        return importlib.import_module(dotted)
    except Exception:  # import-time errors in linted code are not ours
        return None


def _order_sensitive_pair(spec: Any) -> tuple[Any, Any] | None:
    """A probe pair whose application order changes the state, if any."""
    probes = list(spec.probe_updates())
    states = [spec.initial_state()]
    for probe in probes[:_MAX_DERIVED_STATES]:
        states.append(spec.apply(states[-1], probe))
    for state in states:
        for i, a in enumerate(probes):
            for b in probes[i + 1 :]:
                ab = spec.canonical(spec.apply(spec.apply(state, a), b))
                ba = spec.canonical(spec.apply(spec.apply(state, b), a))
                if ab != ba:
                    return (a, b)
    return None


@register("UQ006", "declared commutativity verified on the spec's probe set")
def uq006_commutativity_probe(module: ModuleInfo) -> Iterator[Finding]:
    declared = [
        (cls, stmt)
        for cls in module.uqadt_classes()
        if (stmt := _commutative_declaration(cls)) is not None
    ]
    if not declared:
        return
    probeable: list[tuple[ClassInfo, ast.stmt]] = []
    for cls, stmt in declared:
        if _defines_probe_updates(module, cls):
            probeable.append((cls, stmt))
        else:
            yield _finding(
                module,
                stmt,
                f"{cls.node.name} declares commutative_updates=True but "
                "defines no probe_updates(); the commutative fast path "
                "will trust an unverifiable claim — return a small probe "
                "set covering the spec's conflicting update pairs",
            )
    if not probeable:
        return
    path = Path(module.path)
    if not path.is_file():
        return  # lint_source on a string: nothing importable to probe
    imported = _import_module_for(path)
    if imported is None:
        return
    for cls, stmt in probeable:
        spec_cls = getattr(imported, cls.node.name, None)
        if spec_cls is None:
            continue
        try:
            spec = spec_cls()
        except Exception:
            continue  # needs constructor arguments: cannot probe blind
        try:
            probes = list(spec.probe_updates())
        except Exception:
            continue
        if not probes:
            yield _finding(
                module,
                stmt,
                f"{cls.node.name} declares commutative_updates=True but "
                "probe_updates() returns nothing; the commutative fast "
                "path will trust an unverifiable claim — return a small "
                "probe set covering the spec's conflicting update pairs",
            )
            continue
        try:
            pair = _order_sensitive_pair(spec)
        except Exception:
            continue  # broken apply/canonical is another rule's business
        if pair is not None:
            a, b = pair
            yield _finding(
                module,
                stmt,
                f"{cls.node.name} declares commutative_updates=True but "
                f"apply is order-sensitive on its own probes: "
                f"{a} then {b} differs from {b} then {a}; the commutative "
                "fast path would diverge — fix apply or drop the "
                "declaration",
            )
