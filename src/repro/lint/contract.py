"""EFX4xx — protocol effect-contract exhaustiveness (whole-program).

The sans-io refactor rests on one implicit promise: the event/effect
vocabulary of :mod:`repro.proto` is a *closed* set, and every backend
interprets all of it the same way.  A new effect added to
``repro.proto.effects`` that only one backend understands is precisely
the kind of bug the sim↔net differential test exists to catch — but the
differential test only sees workloads that happen to *emit* the effect.
These rules close the gap statically: the effect and event unions are
extracted from the project model, and every interpreter must account for
every member, so the divergence becomes a lint failure at authoring
time, not a 3 a.m. chaos-run surprise.

The contract is **declared, not guessed**: a backend module that imports
effect classes must carry two module-level tuples::

    HANDLED_EFFECTS = (Broadcast, Send)          # dispatched in this module
    IGNORED_EFFECTS = (Persist, Timer)           # deliberately not acted on

``HANDLED_EFFECTS`` entries must actually appear in dispatch code;
``IGNORED_EFFECTS`` entries document a per-backend decision (the sim
ignores ``Persist`` because its durable image is taken on demand).  The
union of the two must equal the closed effect set exactly.

| code   | invariant                                                       |
|--------|-----------------------------------------------------------------|
| EFX401 | every backend accounts for every effect type (and actually      |
|        | dispatches on what it declares handled)                         |
| EFX402 | the declared contract names only real effect types, with no     |
|        | handled/ignored overlap                                         |
| EFX403 | the core event dispatcher (``ProtocolCore.handle``) covers      |
|        | every event type in the ``Event`` union                         |
| EFX404 | backends hand the core *typed* events, never raw payloads       |
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ProjectInfo,
    register_project,
)

HANDLED_NAME = "HANDLED_EFFECTS"
IGNORED_NAME = "IGNORED_EFFECTS"


def _finding(module: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


# -- closed-set extraction -----------------------------------------------------


def _union_assign(module: ModuleInfo, union_name: str) -> ast.Assign | None:
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if any(isinstance(t, ast.Name) and t.id == union_name for t in stmt.targets):
            if _type_names(stmt.value):
                return stmt
    return None


def _union_members(module: ModuleInfo, union_name: str) -> tuple[str, ...]:
    """Member class names of a module-level ``X = Union[...]`` (or PEP 604
    ``A | B | ...``) assignment named ``union_name``."""
    stmt = _union_assign(module, union_name)
    return _type_names(stmt.value) if stmt is not None else ()


def _type_names(expr: ast.expr) -> tuple[str, ...]:
    if isinstance(expr, ast.Subscript):  # Union[A, B, C]
        base = expr.value
        if not (
            (isinstance(base, ast.Name) and base.id == "Union")
            or (isinstance(base, ast.Attribute) and base.attr == "Union")
        ):
            return ()
        inner = expr.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return tuple(n for n in (_terminal(e) for e in elts) if n)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):  # A | B
        return _type_names(expr.left) + _type_names(expr.right)
    name = _terminal(expr)
    return (name,) if name else ()


def _terminal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _universe_for(
    project: ProjectInfo, module: ModuleInfo, union_name: str
) -> tuple[ModuleInfo, frozenset[str]] | None:
    """The closed set *this* module is bound to, and the module defining it.

    A module that defines ``union_name = Union[...]`` itself is bound to
    its own union (single-module fixture layouts); otherwise the union is
    looked up in the modules it imports names from.  Scoping the universe
    per interpreter keeps unrelated projects linted in one run (e.g. the
    fixture corpus) from shadowing each other's contracts.
    """
    members = _union_members(module, union_name)
    if members:
        return module, frozenset(members)
    seen: set[str] = set()
    for dotted in sorted(set(module.imports.values())):
        owner_name = dotted.rsplit(".", 1)[0] if "." in dotted else dotted
        if owner_name in seen:
            continue
        seen.add(owner_name)
        owner = project.module(owner_name)
        if owner is None:
            continue
        members = _union_members(owner, union_name)
        if members:
            return owner, frozenset(members)
    return None


# -- contract declarations -----------------------------------------------------


def _declaration(module: ModuleInfo, name: str) -> tuple[tuple[str, ...], ast.Assign] | None:
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in stmt.targets):
            continue
        if isinstance(stmt.value, (ast.Tuple, ast.List)):
            names = tuple(n for n in (_terminal(e) for e in stmt.value.elts) if n)
            return names, stmt
        return (), stmt
    return None


def _imported_members(module: ModuleInfo, effects_module: str, closed: frozenset[str]) -> set[str]:
    """Effect class names this module imports from the effects module."""
    prefix = effects_module + "."
    return {
        dotted[len(prefix) :]
        for dotted in module.imports.values()
        if dotted.startswith(prefix) and dotted[len(prefix) :] in closed
    }


def _loads_outside(module: ModuleInfo, name: str, excluded: list[ast.Assign]) -> int:
    """Count ``Name`` loads of ``name`` outside the declaration statements."""
    spans = [(stmt.lineno, stmt.end_lineno or stmt.lineno) for stmt in excluded]
    count = 0
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
            line = node.lineno
            if not any(lo <= line <= hi for lo, hi in spans):
                count += 1
    return count


def _interpreters(
    project: ProjectInfo,
) -> Iterator[tuple[ModuleInfo, ModuleInfo, frozenset[str]]]:
    """Every ``(module, effects_module, closed_set)`` owing a contract.

    A module owes the effect contract when it imports effect classes from
    a union-defining module, or carries contract declarations itself (the
    single-module fixture layout).  Modules inside the union's own package
    are producers, not interpreters, and are exempt.
    """
    for module in project.modules:
        hit = _universe_for(project, module, "Effect")
        if hit is None:
            continue
        effects_module, closed = hit
        if module is not effects_module and "." in effects_module.name:
            package = effects_module.name.rsplit(".", 1)[0]
            if module.name == package or module.name.startswith(package + "."):
                continue  # the proto package itself produces, not interprets
        imported = _imported_members(module, effects_module.name, closed)
        declares = (
            _declaration(module, HANDLED_NAME) is not None
            or _declaration(module, IGNORED_NAME) is not None
        )
        if imported or declares:
            yield module, effects_module, closed


@register_project("EFX401", "backends account for every protocol effect type")
def efx401_effect_exhaustive(project: ProjectInfo) -> Iterator[Finding]:
    for module, effects_module, closed in _interpreters(project):
        handled_decl = _declaration(module, HANDLED_NAME)
        ignored_decl = _declaration(module, IGNORED_NAME)
        if handled_decl is None and ignored_decl is None:
            yield _finding(
                module,
                module.tree,
                "EFX401",
                f"{module.name} imports protocol effect types but declares no "
                f"effect contract: add module-level {HANDLED_NAME} / "
                f"{IGNORED_NAME} tuples covering "
                f"{{{', '.join(sorted(closed))}}} so uqlint can prove the "
                f"backend interprets the whole closed set",
            )
            continue
        handled = handled_decl[0] if handled_decl else ()
        ignored = ignored_decl[0] if ignored_decl else ()
        declared = set(handled) | set(ignored)
        missing = closed - declared
        decls = [d[1] for d in (handled_decl, ignored_decl) if d is not None]
        anchor: ast.AST = decls[0]
        for name in sorted(missing):
            yield _finding(
                module,
                anchor,
                "EFX401",
                f"effect type {name} (from {effects_module.name}) is not "
                f"accounted for by {module.name}: add a dispatch arm and list "
                f"it in {HANDLED_NAME}, or record the deliberate decision in "
                f"{IGNORED_NAME} — an uninterpreted effect silently diverges "
                f"the backends",
            )
        if module is effects_module:
            # Single-module layouts (fixtures): the union definition's own
            # member references are declarations too, not dispatch code.
            union_stmt = _union_assign(module, "Effect")
            if union_stmt is not None:
                decls.append(union_stmt)
        for name in handled:
            if name in closed and _loads_outside(module, name, decls) == 0:
                yield _finding(
                    module,
                    anchor,
                    "EFX401",
                    f"{module.name} declares {name} in {HANDLED_NAME} but "
                    f"never dispatches on it: the declaration must describe "
                    f"real interpreter code, not aspiration",
                )


@register_project("EFX402", "effect contracts name only real, disjoint types")
def efx402_contract_wellformed(project: ProjectInfo) -> Iterator[Finding]:
    for module, effects_module, closed in _interpreters(project):
        handled_decl = _declaration(module, HANDLED_NAME)
        ignored_decl = _declaration(module, IGNORED_NAME)
        handled = handled_decl[0] if handled_decl else ()
        ignored = ignored_decl[0] if ignored_decl else ()
        for name, decl in (
            *((n, handled_decl) for n in handled),
            *((n, ignored_decl) for n in ignored),
        ):
            if name not in closed and decl is not None:
                yield _finding(
                    module,
                    decl[1],
                    "EFX402",
                    f"{name} is not a member of the {effects_module.name} "
                    f"Effect union: the contract declaration is stale — "
                    f"remove it or fix the name",
                )
        for name in sorted(set(handled) & set(ignored)):
            anchor = handled_decl[1] if handled_decl else None
            if anchor is not None:
                yield _finding(
                    module,
                    anchor,
                    "EFX402",
                    f"{name} appears in both {HANDLED_NAME} and "
                    f"{IGNORED_NAME}: the contract must make one unambiguous "
                    f"claim per effect type",
                )


@register_project("EFX403", "the core event dispatcher covers every event type")
def efx403_event_exhaustive(project: ProjectInfo) -> Iterator[Finding]:
    """``ProtocolCore.handle`` is the one uniform entry point; an event
    type missing there is an event backends can construct but the core
    silently cannot consume (it would fall through to the TypeError)."""
    for module in project.modules:
        handle = module.functions.get("ProtocolCore.handle")
        if handle is None:
            continue
        hit = _universe_for(project, module, "Event")
        if hit is None:
            continue
        events_module, closed = hit
        referenced: set[str] = set()
        for node in ast.walk(handle):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                referenced.update(_type_names_or_tuple(node.args[1]))
            elif isinstance(node, ast.MatchClass):
                name = _terminal(node.cls)
                if name:
                    referenced.add(name)
        for name in sorted(closed - referenced):
            yield _finding(
                module,
                handle,
                "EFX403",
                f"event type {name} (from {events_module.name}) has no "
                f"dispatch arm in ProtocolCore.handle: backends can construct "
                f"it but the core cannot consume it",
            )


def _type_names_or_tuple(expr: ast.expr) -> tuple[str, ...]:
    if isinstance(expr, ast.Tuple):
        return tuple(n for n in (_terminal(e) for e in expr.elts) if n)
    name = _terminal(expr)
    return (name,) if name else ()


@register_project("EFX404", "backends hand the core typed events only")
def efx404_typed_events_only(project: ProjectInfo) -> Iterator[Finding]:
    """A raw payload passed to ``core.handle(...)`` bypasses the typed
    vocabulary — the core would raise (or worse, a future permissive core
    would guess), and the two backends stop speaking the same language.
    Only construct :mod:`repro.proto.events` classes.
    """
    for module in project.modules:
        if not any("proto" in dotted.split(".") for dotted in module.imports.values()):
            continue
        if "proto" in module.name.split("."):
            continue
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "handle"
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, (ast.Tuple, ast.List, ast.Dict, ast.Set, ast.Constant)):
                yield _finding(
                    module,
                    node,
                    "EFX404",
                    "raw payload passed to .handle(): the core speaks typed "
                    "events only — construct the matching repro.proto.events "
                    "class so both backends keep one vocabulary",
                )
