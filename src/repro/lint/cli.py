"""``python -m repro.lint`` — the uqlint command line.

Usage::

    python -m repro.lint [paths...] [--format text|json] [--select CODES]
                         [--list-rules] [--no-project]

Paths default to ``src``.  Exit status: 0 when no findings, 1 when any
finding is reported, 2 on bad invocation.  ``--format json`` emits a
machine-readable document (consumed by the CI ``static-analysis`` job).

``--select`` accepts exact codes and rule-family prefixes, mixed freely:
``--select ASY,UQ001`` runs every ASY3xx rule plus UQ001.  ``--no-project``
skips the phase-2 whole-program rules (per-module analysis only), which
is occasionally useful when linting a loose file that is not part of the
``src`` tree.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import repro.lint  # noqa: F401  (imports the rule modules -> populates registry)
from repro.lint.engine import (
    FAMILIES,
    catalog,
    expand_selection,
    family_of,
    lint_paths,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "uqlint: AST-based protocol-invariant linter for UQ-ADT purity "
            "(UQ0xx), simulation determinism (SIM1xx), replica/sans-io "
            "discipline (REP2xx), asyncio atomicity (ASY3xx) and effect-"
            "contract exhaustiveness (EFX4xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help=(
            "comma-separated rule codes and/or family prefixes to run "
            "(e.g. 'ASY,UQ001'; default: all)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog, grouped by family, and exit",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip phase-2 whole-program rules (per-module analysis only)",
    )
    return parser


def _print_catalog() -> None:
    by_family: dict[str, list[tuple[str, str, bool]]] = {}
    for code, summary, is_project in catalog():
        by_family.setdefault(family_of(code), []).append((code, summary, is_project))
    for family in sorted(by_family):
        heading = FAMILIES.get(family, "")
        print(f"{family} — {heading}" if heading else family)
        for code, summary, is_project in by_family[family]:
            scope = "project" if is_project else "module"
            print(f"  {code}  [{scope}]  {summary}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_catalog()
        return 0

    codes = None
    if args.select is not None:
        try:
            codes = expand_selection(args.select.split(","))
        except ValueError as exc:
            parser.error(str(exc))

    try:
        findings, checked = lint_paths(args.paths, codes=codes, project=not args.no_project)
    except FileNotFoundError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises SystemExit(2)

    if args.format == "json":
        doc = {
            "tool": "uqlint",
            "files_checked": checked,
            "findings": [f.as_dict() for f in findings],
        }
        print(json.dumps(doc, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        plural = "" if checked == 1 else "s"
        summary = f"{len(findings)} finding(s) in {checked} file{plural}"
        print(summary if findings else f"ok: {summary}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
