"""``python -m repro.lint`` — the uqlint command line.

Usage::

    python -m repro.lint [paths...] [--format text|json] [--select CODES]
                         [--list-rules]

Paths default to ``src``.  Exit status: 0 when no findings, 1 when any
finding is reported, 2 on bad invocation.  ``--format json`` emits a
machine-readable document (consumed by the CI ``static-analysis`` job).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import repro.lint  # noqa: F401  (imports the rule modules -> populates registry)
from repro.lint.engine import lint_paths, registered_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "uqlint: AST-based protocol-invariant linter for UQ-ADT purity "
            "(UQ0xx), simulation determinism (SIM1xx) and replica "
            "discipline (REP2xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary, _rule in registered_rules():
            print(f"{code}  {summary}")
        return 0

    codes = None
    if args.select is not None:
        codes = {c.strip().upper() for c in args.select.split(",") if c.strip()}
        known = {code for code, _s, _r in registered_rules()}
        unknown = codes - known
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    try:
        findings, checked = lint_paths(args.paths, codes=codes)
    except FileNotFoundError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises SystemExit(2)

    if args.format == "json":
        doc = {
            "tool": "uqlint",
            "files_checked": checked,
            "findings": [f.as_dict() for f in findings],
        }
        print(json.dumps(doc, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        plural = "" if checked == 1 else "s"
        summary = f"{len(findings)} finding(s) in {checked} file{plural}"
        print(summary if findings else f"ok: {summary}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
