"""REP204 — the protocol layer is sans-io.

The whole point of :mod:`repro.proto` is that one protocol state machine
is driven by *two* backends — the deterministic simulator and the asyncio
transport — and that every chaos/fuzz/persistence test of the first
validates the code that runs in the second.  That guarantee dies the
moment protocol code touches a socket, an event loop, a file or a clock
directly: the behaviour would depend on which backend (or which machine)
is running it, and the sim↔net differential test would be comparing two
different programs.

The rule therefore bans *imports* of I/O, scheduling and wall-clock
modules — and calls to the ``open`` builtin — inside protocol code.  A
module counts as protocol code when its path contains a ``proto``
directory segment, or when it defines a class with ``ProtocolCore`` among
its (transitive, syntactic) bases — so a core subclass in some other
package is held to the same contract.

| code   | invariant                                                      |
|--------|----------------------------------------------------------------|
| REP204 | protocol modules import no I/O / asyncio / socket / wall-clock |
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, ModuleInfo, register

#: Top-level modules whose import marks I/O, scheduling or wall-clock
#: dependence — everything a sans-io state machine must receive as events
#: or emit as effects instead of doing itself.
BANNED_TOPLEVEL = frozenset(
    {
        # event loops & network
        "asyncio", "socket", "socketserver", "selectors", "ssl",
        "http", "urllib", "ftplib", "smtplib", "requests", "aiohttp",
        # filesystem & processes
        "io", "os", "pathlib", "shutil", "tempfile", "subprocess",
        "signal", "fcntl",
        # concurrency & scheduling
        "threading", "multiprocessing", "concurrent", "sched", "queue",
        # clocks
        "time", "datetime",
    }
)


def _is_protocol_module(module: ModuleInfo) -> bool:
    """Path under a ``proto`` package, or defines a ProtocolCore subclass."""
    parts = module.path.replace("\\", "/").split("/")
    if "proto" in parts[:-1]:
        return True
    return any(
        "ProtocolCore" in module._transitive_bases(cls) for cls in module.classes
    )


@register("REP204", "protocol modules are sans-io")
def rep204_sans_io(module: ModuleInfo) -> Iterator[Finding]:
    if not _is_protocol_module(module):
        return
    why = (
        "the protocol layer is sans-io: both backends (the deterministic "
        "simulator and repro.net) must be able to drive it, so I/O, "
        "scheduling and clocks arrive as events and leave as effects"
    )
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in BANNED_TOPLEVEL:
                    yield Finding(
                        path=module.path, line=node.lineno, col=node.col_offset,
                        code="REP204",
                        message=f"import of {alias.name!r} in protocol code: {why}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                continue  # relative: stays inside the protocol package
            top = (node.module or "").split(".")[0]
            if top in BANNED_TOPLEVEL:
                yield Finding(
                    path=module.path, line=node.lineno, col=node.col_offset,
                    code="REP204",
                    message=f"import from {node.module!r} in protocol code: {why}",
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and module.imports.get("open", "open") == "open"
        ):
            yield Finding(
                path=module.path, line=node.lineno, col=node.col_offset,
                code="REP204",
                message=f"open() in protocol code: {why} — persistence is a "
                        "Persist effect the backend interprets",
            )
