"""SIM1xx — simulated-world determinism.

Algorithm 1's universal construction replays update logs; the criterion
checkers replay whole traces; the fuzzer reproduces failures from a seed.
All of that holds only if a run is a pure function of its seed: no wall
clock, no ambient entropy, no unseeded RNG, no hash-order-dependent
ordering decisions.  These rules mechanically enforce the repo-wide
contract stated in ``repro.util.ids`` ("reproducible from a seed alone —
no uuid4/wall-clock anywhere").

| code   | invariant                                                       |
|--------|-----------------------------------------------------------------|
| SIM101 | no wall-clock / ambient-entropy calls (time, datetime, urandom) |
| SIM102 | every RNG is an injected, seeded ``np.random.Generator``        |
| SIM103 | no ordering decision built from bare ``set`` iteration          |
| SIM104 | no ``id()``-based ordering (CPython address = nondeterminism)   |
| SIM105 | instrumentation classes hold no wall-clock *references*         |

SIM101/SIM105 are *scoped*: the networked backend and its wall-clock
observability twin (:data:`WALL_CLOCK_DOMAINS`) legitimately live on real
time — frames cross real sockets, convergence lag is a wall-clock
quantity — so both rules skip those module subtrees entirely.  The
simulated world keeps the full ban.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, ModuleInfo, register

#: Dotted call targets that read the wall clock or ambient entropy.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``numpy.random`` attributes that are fine to *reference* (types, seeding
#: machinery); everything else called through ``numpy.random`` is the legacy
#: global-state RNG and is banned outright.
NUMPY_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Builtins whose output order mirrors their input iteration order.
ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

#: Module subtrees sanctioned to read the wall clock.  ``repro.net`` is
#: the asyncio backend (real sockets, real timers); ``repro.obs.wall``
#: and ``repro.obs.log`` are its observability twins (wall-clock tracer,
#: epoch-stamped JSON logs).  SIM101 and SIM105 do not fire inside these
#: prefixes; everything else — the simulator, the replicas, the sim-side
#: obs modules — keeps the determinism contract.
WALL_CLOCK_DOMAINS: tuple[str, ...] = (
    "repro.net",
    "repro.obs.wall",
    "repro.obs.log",
)


def _in_wall_domain(module: ModuleInfo) -> bool:
    """Is this module inside a sanctioned wall-clock subtree?"""
    name = module.name
    return any(
        name == domain or name.startswith(domain + ".")
        for domain in WALL_CLOCK_DOMAINS
    )


def _finding(module: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


@register("SIM101", "no wall-clock or ambient-entropy calls")
def sim101_wall_clock(module: ModuleInfo) -> Iterator[Finding]:
    if _in_wall_domain(module):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.resolve_call(node.func)
        if dotted is None:
            continue
        if dotted in WALL_CLOCK_CALLS or dotted.startswith("secrets."):
            yield _finding(
                module,
                node,
                "SIM101",
                f"call to {dotted!r}: simulated runs must be a pure function "
                "of their seed — wall clocks and ambient entropy make "
                "replays (Algorithm 1) and criterion checks unreproducible",
            )


@register("SIM102", "RNGs must be injected, seeded np.random.Generator")
def sim102_unseeded_rng(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.resolve_call(node.func)
        if dotted is None:
            continue
        if dotted == "random" or dotted.startswith("random."):
            yield _finding(
                module,
                node,
                "SIM102",
                f"call to {dotted!r}: the stdlib global RNG is process-wide "
                "mutable state; use an injected seeded "
                "np.random.default_rng(seed) Generator instead",
            )
        elif dotted.startswith("numpy.random."):
            attr = dotted.removeprefix("numpy.random.")
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield _finding(
                        module,
                        node,
                        "SIM102",
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; pass the run's seed explicitly so every "
                        "trace is reproducible",
                    )
            elif attr not in NUMPY_RANDOM_ALLOWED:
                yield _finding(
                    module,
                    node,
                    "SIM102",
                    f"call to {dotted!r}: the legacy numpy global RNG is "
                    "shared mutable state; use an injected seeded "
                    "np.random.default_rng(seed) Generator instead",
                )


def _is_bare_set_expr(node: ast.expr, module: ModuleInfo) -> bool:
    """Syntactically evident unordered-set expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        resolved = module.imports.get(node.func.id, node.func.id)
        return resolved in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra on an evident set operand yields a set
        return _is_bare_set_expr(node.left, module) or _is_bare_set_expr(
            node.right, module
        )
    return False


@register("SIM103", "no ordering decision from bare set iteration")
def sim103_set_order(module: ModuleInfo) -> Iterator[Finding]:
    """Flag order-sensitive consumption of a bare ``set``.

    Set iteration order depends on the process hash seed, so feeding a set
    straight into ``list``/``tuple``/``enumerate``/``join``, a ``for``
    statement or a list comprehension bakes hash order into an ordered
    artifact (a broadcast sequence, a replay order, a printed report).
    Wrap the set in ``sorted(...)`` to make the order explicit.
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ORDER_SENSITIVE_CONSUMERS
                and node.args
                and _is_bare_set_expr(node.args[0], module)
            ):
                yield _finding(
                    module,
                    node,
                    "SIM103",
                    f"{func.id}() over a bare set bakes hash order into an "
                    "ordered value; use sorted(...) to make the order "
                    "explicit and deterministic",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and _is_bare_set_expr(node.args[0], module)
            ):
                yield _finding(
                    module,
                    node,
                    "SIM103",
                    "str.join over a bare set produces hash-order-dependent "
                    "text; use sorted(...) first",
                )
        elif isinstance(node, ast.For) and _is_bare_set_expr(node.iter, module):
            yield _finding(
                module,
                node,
                "SIM103",
                "for-loop over a bare set: iteration order follows the "
                "process hash seed; iterate sorted(...) if any ordered "
                "effect (append, send, emit) depends on it",
            )
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                if _is_bare_set_expr(gen.iter, module):
                    yield _finding(
                        module,
                        node,
                        "SIM103",
                        "list comprehension over a bare set produces a "
                        "hash-order-dependent sequence; iterate sorted(...)",
                    )


#: Class-name suffixes marking telemetry machinery (the ``repro.obs``
#: naming convention): these classes must live entirely on virtual time.
INSTRUMENTATION_SUFFIXES = ("Tracer", "Registry", "Collector")


@register("SIM105", "instrumentation classes stay on the virtual clock")
def sim105_instrumentation_wall_clock(module: ModuleInfo) -> Iterator[Finding]:
    """Flag wall-clock *references* smuggled into instrumentation classes.

    SIM101 catches wall-clock calls; a bare reference — ``time.monotonic``
    as a default argument, ``time.perf_counter`` stashed on ``self`` —
    defers the call past the linter's sight and resurfaces at record time.
    Outside instrumentation that is the sanctioned injectable-timer idiom
    (the bench harness holds exactly such a reference so tests can swap in
    a fake).  Inside a tracer or metrics registry it means simulated
    telemetry silently mixes wall time into virtual-time artifacts: traces
    stop being a pure function of the seed.  Instrumentation must take
    timestamps as arguments (``Cluster.now``), never capture a clock.

    The wall-clock domains (:data:`WALL_CLOCK_DOMAINS`) are exempt: a
    ``WallTracer`` holding ``time.time`` is its entire point.
    """
    if _in_wall_domain(module):
        return
    for info in module.classes:
        if not info.node.name.endswith(INSTRUMENTATION_SUFFIXES):
            continue
        call_funcs: set[ast.expr] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                call_funcs.add(node.func)
        for node in ast.walk(info.node):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if node in call_funcs:
                continue  # an actual call: SIM101's territory
            dotted = module.resolve_call(node)
            if dotted is None:
                continue
            if dotted in WALL_CLOCK_CALLS or dotted.startswith("secrets."):
                yield _finding(
                    module,
                    node,
                    "SIM105",
                    f"reference to {dotted!r} inside instrumentation class "
                    f"{info.node.name!r}: tracers and registries must be "
                    "stamped with virtual time (Cluster.now) by their "
                    "callers, not capture a wall clock for later",
                )


@register("SIM104", "no id()-based identity ordering")
def sim104_id_ordering(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and module.imports.get("id", "id") == "id"
        ):
            yield _finding(
                module,
                node,
                "SIM104",
                "id() exposes a CPython heap address — any ordering, hashing "
                "or tie-breaking built on it differs between runs; use an "
                "explicit (clock, pid) timestamp or a seeded counter",
            )
