"""uqlint engine: findings, pragmas, per-module analysis context, registry.

The linter is a plain :mod:`ast` walker — no imports of the linted code are
ever executed, so it is safe to run on broken or hostile trees.  (One
documented exception: :mod:`repro.lint.commutativity`'s UQ006 is a
*behavioural* cross-check and imports a module, but only when its dotted
name resolves — via :func:`importlib.util.find_spec` — to the very file
being linted, i.e. only code already importable from the current
environment.)  Each rule
is a callable class with a stable ``code`` (``UQ0xx`` / ``SIM1xx`` /
``REP2xx``); the engine parses each file once, derives the shared facts the
rules need (import aliases, class bases, pragma lines) and hands every rule
the same :class:`ModuleInfo`.

Suppression follows the classic per-line pragma model::

    risky_call()  # uqlint: disable=SIM101 -- wall-clock CLI budget only

suppresses ``SIM101`` findings reported on that line (the text after
``--`` is a human justification, required by convention, not enforced).
A file-wide escape hatch exists for generated or fixture code::

    # uqlint: disable-file=UQ001,UQ002

``disable=all`` (either form) silences every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Pseudo-code reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "LINT000"

_PRAGMA_RE = re.compile(r"#\s*uqlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True, slots=True)
class ClassInfo:
    """A class definition plus the (syntactic) names of its bases."""

    node: ast.ClassDef
    base_names: tuple[str, ...]


class ModuleInfo:
    """Everything the rules need to know about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: local name -> dotted module/object path (import tracking).
        self.imports: dict[str, str] = {}
        self.classes: list[ClassInfo] = []
        self._collect()

    # -- derivation ------------------------------------------------------------

    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` (to package a) unless aliased.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: keep the tail only
                    prefix = node.module or ""
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{prefix}.{alias.name}" if prefix else alias.name
                    self.imports[local] = dotted
            elif isinstance(node, ast.ClassDef):
                self.classes.append(
                    ClassInfo(node, tuple(_base_name(b) for b in node.bases))
                )

    # -- class taxonomy --------------------------------------------------------

    def _transitive_bases(self, cls: ClassInfo) -> set[str]:
        """Base names reachable through classes defined in this module."""
        local = {c.node.name: c for c in self.classes}
        seen: set[str] = set()
        stack = list(cls.base_names)
        while stack:
            name = stack.pop()
            if not name or name in seen:
                continue
            seen.add(name)
            if name in local:
                stack.extend(local[name].base_names)
        return seen

    def uqadt_classes(self) -> Iterator[ClassInfo]:
        """Classes that (syntactically) specialize :class:`repro.core.adt.UQADT`.

        Detection is heuristic but layered: a direct/transitive local base
        named ``UQADT``, or any base whose name ends in ``Spec`` (the
        cross-module subclassing convention of :mod:`repro.specs`).
        """
        for cls in self.classes:
            bases = self._transitive_bases(cls)
            if "UQADT" in bases or any(b.endswith("Spec") for b in bases):
                yield cls

    def replica_classes(self) -> Iterator[ClassInfo]:
        """Classes specializing :class:`repro.sim.replica.Replica` (by name)."""
        for cls in self.classes:
            bases = self._transitive_bases(cls)
            if any(b == "Replica" or b.endswith("Replica") for b in bases):
                yield cls

    # -- name resolution -------------------------------------------------------

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted path of a call target, following import aliases.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; unresolvable shapes return ``None``.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _base_name(node: ast.expr) -> str:
    """Rightmost identifier of a base-class expression (``x.Y[Z]`` -> ``Y``)."""
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# -- pragmas ------------------------------------------------------------------


def collect_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Return (per-line disabled codes, file-wide disabled codes)."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if not match:
            continue
        kind, raw = match.groups()
        codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
        if kind == "disable-file":
            file_wide |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


def _suppressed(
    finding: Finding, per_line: dict[int, set[str]], file_wide: set[str]
) -> bool:
    if "ALL" in file_wide or finding.code in file_wide:
        return True
    codes = per_line.get(finding.line, ())
    return "ALL" in codes or finding.code in codes


# -- rule registry ------------------------------------------------------------

Rule = Callable[[ModuleInfo], Iterable[Finding]]

#: populated by the rule modules at import time (see :mod:`repro.lint`).
_REGISTRY: list[tuple[str, str, Rule]] = []


def register(code: str, summary: str) -> Callable[[Rule], Rule]:
    """Class/function decorator adding a rule to the global registry."""

    def deco(rule: Rule) -> Rule:
        _REGISTRY.append((code, summary, rule))
        return rule

    return deco


def registered_rules() -> list[tuple[str, str, Rule]]:
    return sorted(_REGISTRY, key=lambda item: item[0])


# -- entry points -------------------------------------------------------------


def lint_source(
    source: str, path: str = "<string>", *, codes: set[str] | None = None
) -> list[Finding]:
    """Lint one unit of source text; ``codes`` optionally restricts rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    module = ModuleInfo(path, source, tree)
    per_line, file_wide = collect_pragmas(source)
    findings: list[Finding] = []
    for code, _summary, rule in registered_rules():
        if codes is not None and code not in codes:
            continue
        findings.extend(rule(module))
    findings = [f for f in findings if not _suppressed(f, per_line, file_wide)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            yield p
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")


def lint_paths(
    paths: Sequence[str | Path], *, codes: set[str] | None = None
) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, files_checked)``.
    """
    findings: list[Finding] = []
    checked = 0
    for file in iter_python_files(paths):
        checked += 1
        findings.extend(lint_source(file.read_text(), str(file), codes=codes))
    return findings, checked
