"""uqlint engine: findings, pragmas, the two-phase project model, registries.

The linter is a plain :mod:`ast` walker — no imports of the linted code are
ever executed, so it is safe to run on broken or hostile trees.  (One
documented exception: :mod:`repro.lint.commutativity`'s UQ006 is a
*behavioural* cross-check and imports a module, but only when its dotted
name resolves — via :func:`importlib.util.find_spec` — to the very file
being linted, i.e. only code already importable from the current
environment.)  Each rule
is a callable class with a stable ``code`` (``UQ0xx`` / ``SIM1xx`` /
``REP2xx`` / ``ASY3xx`` / ``EFX4xx``); the engine parses each file once,
derives the shared facts the rules need (import aliases, class bases,
symbol tables, pragma lines) and hands every rule the same
:class:`ModuleInfo`.

Since uqlint v2 the engine runs in **two phases**.  Phase 1 parses every
file into a :class:`ModuleInfo` (per-module symbol table, import aliases,
class taxonomy).  Phase 2 assembles them into a :class:`ProjectInfo` —
dotted module names, a cross-module symbol index, the import graph — and
runs two registries over the result: the classic *per-module* rules (one
module at a time, exactly as in v1) and the *project* rules
(:func:`register_project`), which see the whole program at once and can
therefore check cross-module contracts such as effect-dispatch
exhaustiveness (EFX4xx) or imported-coroutine awaiting (ASY302).

Suppression follows the classic per-line pragma model::

    risky_call()  # uqlint: disable=SIM101 -- wall-clock CLI budget only

suppresses ``SIM101`` findings reported on that line (the text after
``--`` is a human justification, required by convention, not enforced).
A file-wide escape hatch exists for generated or fixture code::

    # uqlint: disable-file=UQ001,UQ002

``disable=all`` (either form) silences every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

#: Pseudo-code reported when a file cannot be parsed at all.
PARSE_ERROR_CODE = "LINT000"

_PRAGMA_RE = re.compile(r"#\s*uqlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True, slots=True)
class ClassInfo:
    """A class definition plus the (syntactic) names of its bases."""

    node: ast.ClassDef
    base_names: tuple[str, ...]


def module_name_for(path: str) -> str:
    """Dotted module name for a file path (phase-1 project indexing).

    ``src/repro/net/node.py`` -> ``repro.net.node``; the name is derived
    from the path segments after the last ``src`` directory (the repo's
    package root convention), falling back to the bare stem for loose
    files such as fixtures.  ``__init__.py`` names the package itself.
    """
    parts = list(Path(path).with_suffix("").parts)
    if "src" in parts[:-1]:
        idx = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[idx + 1 :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or Path(path).stem


class ModuleInfo:
    """Everything the rules need to know about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: dotted module name (``repro.net.node``) — the project-model key.
        self.name = module_name_for(path)
        #: local name -> dotted module/object path (import tracking).
        self.imports: dict[str, str] = {}
        self.classes: list[ClassInfo] = []
        #: top-level symbol table: name -> defining node (functions,
        #: classes, plain assignments).  Methods appear qualified as
        #: ``Class.method`` in :attr:`functions`.
        self.symbols: dict[str, ast.AST] = {}
        #: (possibly qualified) function name -> def node, covering
        #: top-level functions and immediate class methods.
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self._collect()

    # -- derivation ------------------------------------------------------------

    def _collect(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.symbols[stmt.name] = stmt
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.symbols[stmt.name] = stmt
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.functions[f"{stmt.name}.{sub.name}"] = sub
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.symbols[target.id] = stmt
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    self.symbols[stmt.target.id] = stmt
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` (to package a) unless aliased.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                # Relative imports keep the tail only; the project model
                # retries them under the origin package (resolve_symbol).
                prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{prefix}.{alias.name}" if prefix else alias.name
                    self.imports[local] = dotted
            elif isinstance(node, ast.ClassDef):
                self.classes.append(ClassInfo(node, tuple(_base_name(b) for b in node.bases)))

    # -- class taxonomy --------------------------------------------------------

    def _transitive_bases(self, cls: ClassInfo) -> set[str]:
        """Base names reachable through classes defined in this module."""
        local = {c.node.name: c for c in self.classes}
        seen: set[str] = set()
        stack = list(cls.base_names)
        while stack:
            name = stack.pop()
            if not name or name in seen:
                continue
            seen.add(name)
            if name in local:
                stack.extend(local[name].base_names)
        return seen

    def uqadt_classes(self) -> Iterator[ClassInfo]:
        """Classes that (syntactically) specialize :class:`repro.core.adt.UQADT`.

        Detection is heuristic but layered: a direct/transitive local base
        named ``UQADT``, or any base whose name ends in ``Spec`` (the
        cross-module subclassing convention of :mod:`repro.specs`).
        """
        for cls in self.classes:
            bases = self._transitive_bases(cls)
            if "UQADT" in bases or any(b.endswith("Spec") for b in bases):
                yield cls

    def replica_classes(self) -> Iterator[ClassInfo]:
        """Classes specializing :class:`repro.sim.replica.Replica` (by name)."""
        for cls in self.classes:
            bases = self._transitive_bases(cls)
            if any(b == "Replica" or b.endswith("Replica") for b in bases):
                yield cls

    # -- name resolution -------------------------------------------------------

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted path of a call target, following import aliases.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; unresolvable shapes return ``None``.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _base_name(node: ast.expr) -> str:
    """Rightmost identifier of a base-class expression (``x.Y[Z]`` -> ``Y``)."""
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# -- the project model (phase 2) ----------------------------------------------


class ProjectInfo:
    """The whole linted program at once: every module plus cross-module
    indexes.  Phase 1 builds one :class:`ModuleInfo` per file; this class
    is what phase-2 (project) rules receive instead of a single module.

    The model is purely syntactic, like everything else in uqlint: names
    are resolved through the per-module import tables against the dotted
    module names derived from file paths — no code is imported.
    """

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: list[ModuleInfo] = sorted(modules, key=lambda m: m.path)
        self.by_name: dict[str, ModuleInfo] = {m.name: m for m in self.modules}

    def module(self, dotted: str) -> ModuleInfo | None:
        return self.by_name.get(dotted)

    def import_graph(self) -> dict[str, set[str]]:
        """Project-internal import edges: module name -> imported modules.

        Only edges whose target parses as a module of *this* project are
        kept — stdlib and third-party imports are not project edges.
        """
        graph: dict[str, set[str]] = {}
        for mod in self.modules:
            edges: set[str] = set()
            for dotted in mod.imports.values():
                hit = self._module_prefix(dotted)
                if hit is not None and hit != mod.name:
                    edges.add(hit)
            graph[mod.name] = edges
        return graph

    def resolve_symbol(
        self, dotted: str, *, origin: ModuleInfo | None = None
    ) -> tuple[ModuleInfo, ast.AST] | None:
        """Resolve ``pkg.mod.symbol`` (or ``Class.method``) to its def site.

        ``origin`` enables package-relative resolution: a dotted path that
        does not resolve absolutely is retried under the origin module's
        package (covering ``from .sibling import name``).
        """
        hit = self._lookup(dotted)
        if hit is None and origin is not None and "." in origin.name:
            package = origin.name.rsplit(".", 1)[0]
            hit = self._lookup(f"{package}.{dotted}")
        return hit

    def _lookup(self, dotted: str) -> tuple[ModuleInfo, ast.AST] | None:
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self.by_name.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1 and rest[0] in mod.symbols:
                return mod, mod.symbols[rest[0]]
            if len(rest) == 2 and ".".join(rest) in mod.functions:
                return mod, mod.functions[".".join(rest)]
            return None
        return None

    def _module_prefix(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            name = ".".join(parts[:cut])
            if name in self.by_name:
                return name
        return None


# -- rule families ------------------------------------------------------------

#: family prefix -> human summary (the ``--list-rules`` group headers).
FAMILIES: dict[str, str] = {
    "UQ": "UQ-ADT purity (Definition 1)",
    "SIM": "simulation determinism",
    "REP": "replica & sans-io protocol discipline",
    "ASY": "asyncio atomicity (await-point hazards)",
    "EFX": "protocol effect-contract exhaustiveness",
    "LINT": "engine diagnostics",
}


def family_of(code: str) -> str:
    """Leading alphabetic prefix of a rule code (``ASY301`` -> ``ASY``)."""
    alpha = code.rstrip("0123456789")
    return alpha.upper()


def expand_selection(entries: Iterable[str]) -> set[str]:
    """Expand a ``--select`` list of codes and family prefixes into codes.

    Each entry is either an exact rule code (``UQ001``) or a family prefix
    (``ASY``, matching every registered ``ASY3xx`` rule).  Unknown entries
    raise ``ValueError`` — a typo'd selection silently linting nothing is
    worse than an error.
    """
    known = {code for code, _s, _r in catalog()}
    families = {family_of(code) for code in known}
    selected: set[str] = set()
    unknown: list[str] = []
    for raw in entries:
        entry = raw.strip().upper()
        if not entry:
            continue
        if entry in known:
            selected.add(entry)
        elif entry in families:
            selected.update(code for code in known if family_of(code) == entry)
        else:
            unknown.append(entry)
    if unknown:
        raise ValueError(f"unknown rule code(s) or families: {', '.join(sorted(unknown))}")
    return selected


# -- pragmas ------------------------------------------------------------------


def collect_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Return (per-line disabled codes, file-wide disabled codes)."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if not match:
            continue
        kind, raw = match.groups()
        codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
        if kind == "disable-file":
            file_wide |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


def _suppressed(finding: Finding, per_line: dict[int, set[str]], file_wide: set[str]) -> bool:
    if "ALL" in file_wide or finding.code in file_wide:
        return True
    codes = per_line.get(finding.line, ())
    return "ALL" in codes or finding.code in codes


# -- rule registries ----------------------------------------------------------

Rule = Callable[[ModuleInfo], Iterable[Finding]]
ProjectRule = Callable[[ProjectInfo], Iterable[Finding]]

#: populated by the rule modules at import time (see :mod:`repro.lint`).
_REGISTRY: list[tuple[str, str, Rule]] = []
_PROJECT_REGISTRY: list[tuple[str, str, ProjectRule]] = []


def register(code: str, summary: str) -> Callable[[Rule], Rule]:
    """Class/function decorator adding a per-module rule to the registry."""

    def deco(rule: Rule) -> Rule:
        _REGISTRY.append((code, summary, rule))
        return rule

    return deco


def register_project(code: str, summary: str) -> Callable[[ProjectRule], ProjectRule]:
    """Decorator adding a phase-2 (whole-program) rule to the registry."""

    def deco(rule: ProjectRule) -> ProjectRule:
        _PROJECT_REGISTRY.append((code, summary, rule))
        return rule

    return deco


def registered_rules() -> list[tuple[str, str, Rule]]:
    return sorted(_REGISTRY, key=lambda item: item[0])


def registered_project_rules() -> list[tuple[str, str, ProjectRule]]:
    return sorted(_PROJECT_REGISTRY, key=lambda item: item[0])


def catalog() -> list[tuple[str, str, bool]]:
    """Every registered rule as ``(code, summary, is_project_rule)``."""
    merged = [(code, summary, False) for code, summary, _r in _REGISTRY]
    merged += [(code, summary, True) for code, summary, _r in _PROJECT_REGISTRY]
    return sorted(merged, key=lambda item: item[0])


# -- entry points -------------------------------------------------------------


def _parse_module(source: str, path: str) -> ModuleInfo | Finding:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR_CODE,
            message=f"could not parse file: {exc.msg}",
        )
    return ModuleInfo(path, source, tree)


def _run_rules(
    modules: Sequence[ModuleInfo],
    *,
    codes: set[str] | None,
    project: bool,
) -> list[Finding]:
    """Phase 2: per-module rules on each module, project rules on the whole."""
    findings: list[Finding] = []
    for module in modules:
        for code, _summary, rule in registered_rules():
            if codes is not None and code not in codes:
                continue
            findings.extend(rule(module))
    if project:
        info = ProjectInfo(modules)
        for code, _summary, project_rule in registered_project_rules():
            if codes is not None and code not in codes:
                continue
            findings.extend(project_rule(info))
    return findings


def _suppress_and_sort(
    findings: list[Finding],
    pragmas: Mapping[str, tuple[dict[int, set[str]], set[str]]],
) -> list[Finding]:
    kept = [f for f in findings if not _suppressed(f, *pragmas.get(f.path, ({}, set())))]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    codes: set[str] | None = None,
    project: bool = True,
) -> list[Finding]:
    """Lint one unit of source text; ``codes`` optionally restricts rules.

    The text is treated as a one-module project, so project rules whose
    facts are self-contained (e.g. an effect union and its interpreter in
    the same file — the fixture corpus) still fire; pass
    ``project=False`` for the phase-1-only behaviour.
    """
    parsed = _parse_module(source, path)
    if isinstance(parsed, Finding):
        return [parsed]
    findings = _run_rules([parsed], codes=codes, project=project)
    return _suppress_and_sort(findings, {path: collect_pragmas(source)})


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            yield p
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")


def lint_paths(
    paths: Sequence[str | Path],
    *,
    codes: set[str] | None = None,
    project: bool = True,
) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under ``paths`` (the two-phase pipeline).

    Phase 1 parses every file once into the project model; phase 2 runs
    the per-module rules over each module and — unless ``project`` is
    False — the whole-program rules over the assembled
    :class:`ProjectInfo`.  Returns ``(findings, files_checked)``.
    """
    findings: list[Finding] = []
    modules: list[ModuleInfo] = []
    pragmas: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    checked = 0
    for file in iter_python_files(paths):
        checked += 1
        source = file.read_text()
        parsed = _parse_module(source, str(file))
        if isinstance(parsed, Finding):
            findings.append(parsed)
            continue
        pragmas[str(file)] = collect_pragmas(source)
        modules.append(parsed)
    findings.extend(_run_rules(modules, codes=codes, project=project))
    return _suppress_and_sort(findings, pragmas), checked


def lint_sources(
    sources: Mapping[str, str], *, codes: set[str] | None = None, project: bool = True
) -> list[Finding]:
    """Lint an in-memory ``{path: source}`` mapping as one project.

    The testing twin of :func:`lint_paths`: mutation-style tests build a
    synthetic project (e.g. an effects module plus two backends) without
    touching the filesystem.
    """
    findings: list[Finding] = []
    modules: list[ModuleInfo] = []
    pragmas: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    for path in sorted(sources):
        source = sources[path]
        parsed = _parse_module(source, path)
        if isinstance(parsed, Finding):
            findings.append(parsed)
            continue
        pragmas[path] = collect_pragmas(source)
        modules.append(parsed)
    findings.extend(_run_rules(modules, codes=codes, project=project))
    return _suppress_and_sort(findings, pragmas)
