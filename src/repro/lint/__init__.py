"""uqlint — the protocol-invariant linter.

The paper's definitions are *disciplines*, not just docstrings: Definition
1 requires the transition function ``T`` and output function ``G`` to be
pure; Algorithm 1 requires deterministic replay; the crash-recovery model
of PR 1 requires the Lamport clock to be write-ahead.  This package
enforces all three mechanically with a Python-AST rule engine:

* **UQ0xx** (:mod:`repro.lint.purity`) — UQ-ADT purity;
* **SIM1xx** (:mod:`repro.lint.determinism`) — simulation determinism;
* **REP2xx** (:mod:`repro.lint.discipline`) — replica discipline;
* **ASY3xx** (:mod:`repro.lint.asyncatomic`) — asyncio await-point atomicity;
* **EFX4xx** (:mod:`repro.lint.contract`) — protocol effect-contract
  exhaustiveness (whole-program).

Since v2 the engine is two-phase: phase 1 parses every input file into a
per-module symbol table, phase 2 runs per-module rules *and* cross-module
project rules over the assembled :class:`~repro.lint.engine.ProjectInfo`.

Run it with ``python -m repro.lint [paths] --format text|json``; suppress
individual findings with ``# uqlint: disable=CODE -- justification``.
``--select`` accepts exact codes or family prefixes (``ASY,UQ001``).
The rule catalog lives in ``docs/lint.md``.
"""

from __future__ import annotations

from repro.lint.engine import (
    FAMILIES,
    Finding,
    ModuleInfo,
    ProjectInfo,
    catalog,
    expand_selection,
    family_of,
    lint_paths,
    lint_source,
    lint_sources,
    registered_project_rules,
    registered_rules,
)

# Importing the rule modules populates the registry (side-effect imports,
# kept explicit and last so `registered_rules` above is already bound).
from repro.lint import (  # noqa: E402,F401
    asyncatomic,
    commutativity,
    contract,
    determinism,
    discipline,
    purity,
    sansio,
)

__all__ = [
    "FAMILIES",
    "Finding",
    "ModuleInfo",
    "ProjectInfo",
    "catalog",
    "expand_selection",
    "family_of",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "registered_project_rules",
    "registered_rules",
]
