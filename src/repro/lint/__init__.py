"""uqlint — the protocol-invariant linter.

The paper's definitions are *disciplines*, not just docstrings: Definition
1 requires the transition function ``T`` and output function ``G`` to be
pure; Algorithm 1 requires deterministic replay; the crash-recovery model
of PR 1 requires the Lamport clock to be write-ahead.  This package
enforces all three mechanically with a Python-AST rule engine:

* **UQ0xx** (:mod:`repro.lint.purity`) — UQ-ADT purity;
* **SIM1xx** (:mod:`repro.lint.determinism`) — simulation determinism;
* **REP2xx** (:mod:`repro.lint.discipline`) — replica discipline.

Run it with ``python -m repro.lint [paths] --format text|json``; suppress
individual findings with ``# uqlint: disable=CODE -- justification``.
The rule catalog lives in ``docs/lint.md``.
"""

from __future__ import annotations

from repro.lint.engine import (
    Finding,
    lint_paths,
    lint_source,
    registered_rules,
)

# Importing the rule modules populates the registry (side-effect imports,
# kept explicit and last so `registered_rules` above is already bound).
from repro.lint import (  # noqa: E402,F401
    commutativity,
    determinism,
    discipline,
    purity,
    sansio,
)

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "registered_rules",
]
