"""UQ0xx — purity of the sequential specification (paper Definition 1).

A UQ-ADT is a transition system ``(U, Qi, Qo, S, s0, T, G)`` whose
transition function ``T`` and output function ``G`` are *pure*: ``apply``
must return a new state without mutating its argument, ``observe`` must
not have side effects on the state, and ``s0`` must be a fresh (or
immutable) value — otherwise replaying the same update word twice gives
different results and every criterion check and Algorithm 1 replay in the
repo is silently invalid.

| code  | invariant (paper clause)                                        |
|-------|-----------------------------------------------------------------|
| UQ001 | ``T``/``G`` never store into the ``state`` argument (Def. 1)    |
| UQ002 | ``T``/``G`` never call in-place mutators on the state (Def. 1)  |
| UQ003 | ``G`` never invokes ``T`` (queries are side-effect-free, Def. 1)|
| UQ004 | update helpers construct ``Update`` values, never ``Query``     |
| UQ005 | ``initial_state`` returns a fresh or immutable ``s0`` (Def. 1)  |
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ClassInfo, Finding, ModuleInfo, register
from repro.lint.mutation import find_mutations, function_params

#: UQADT methods whose first non-self parameter is the state and must stay pure.
PURE_STATE_METHODS = ("apply", "observe", "unapply", "apply_batch", "evaluate")

#: Calls that re-enter the transition function from inside ``observe``.
TRANSITION_CALLS = frozenset({"apply", "apply_batch", "unapply", "replay"})

#: Containers whose *display* or constructor produces a fresh mutable object —
#: module-level names bound to these must not be returned from initial_state.
_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _methods(cls: ClassInfo) -> Iterator[ast.FunctionDef]:
    for node in cls.node.body:
        if isinstance(node, ast.FunctionDef):
            yield node


def _finding(module: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


@register("UQ001", "T/G must not store into the state argument")
def uq001_state_store(module: ModuleInfo) -> Iterator[Finding]:
    for cls in module.uqadt_classes():
        for method in _methods(cls):
            if method.name not in PURE_STATE_METHODS:
                continue
            params = function_params(method)
            if not params:
                continue
            state = params[0]
            for node, description in find_mutations(method, {state}):
                if "store" in description or "augmented" in description or "del " in description:
                    yield _finding(
                        module,
                        node,
                        "UQ001",
                        f"{cls.node.name}.{method.name} mutates its state "
                        f"argument ({description}); T and G must be pure "
                        "(Def. 1) — build and return a new state instead",
                    )


@register("UQ002", "T/G must not call in-place mutators on the state")
def uq002_state_mutator(module: ModuleInfo) -> Iterator[Finding]:
    for cls in module.uqadt_classes():
        for method in _methods(cls):
            if method.name not in PURE_STATE_METHODS:
                continue
            params = function_params(method)
            if not params:
                continue
            state = params[0]
            for node, description in find_mutations(method, {state}):
                if "in-place mutator" in description:
                    yield _finding(
                        module,
                        node,
                        "UQ002",
                        f"{cls.node.name}.{method.name}: {description}; copy "
                        "the state first (the copy-on-write idiom of "
                        "repro.specs) so T and G stay pure (Def. 1)",
                    )


@register("UQ003", "observe must never invoke the transition function")
def uq003_observe_calls_apply(module: ModuleInfo) -> Iterator[Finding]:
    for cls in module.uqadt_classes():
        for method in _methods(cls):
            if method.name != "observe":
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                called: str | None = None
                if isinstance(func, ast.Attribute) and func.attr in TRANSITION_CALLS:
                    # self.apply(...) — re-entering T from G.  Delegating to a
                    # *component* spec's observe (ProductSpec) is fine and
                    # never matches: ``spec.observe`` is not a transition.
                    if isinstance(func.value, ast.Name) and func.value.id == "self":
                        called = func.attr
                elif isinstance(func, ast.Name) and func.id in TRANSITION_CALLS:
                    called = func.id
                if called is not None:
                    yield _finding(
                        module,
                        node,
                        "UQ003",
                        f"{cls.node.name}.observe calls {called!r}: the output "
                        "function G must not invoke the transition function T "
                        "(queries are side-effect-free, Def. 1)",
                    )


@register("UQ004", "update helpers must construct Update values")
def uq004_update_helper_return(module: ModuleInfo) -> Iterator[Finding]:
    """Functions annotated ``-> Update`` must return ``Update(...)`` (or
    delegate); returning a ``Query`` or a bare literal breaks the U/Q split
    of Definition 1 at the API boundary."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        returns = node.returns
        annotated = _mentions_update(returns)
        if not annotated:
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            value = stmt.value
            if isinstance(value, ast.Constant) and value.value is None:
                continue
            if _is_query_call(value):
                yield Finding(
                    path=module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    code="UQ004",
                    message=(
                        f"update helper {node.name!r} is annotated to return "
                        "Update but returns a Query — updates have side "
                        "effects and no return value, queries the reverse "
                        "(Def. 1); they are not interchangeable"
                    ),
                )
            elif isinstance(value, (ast.Constant, ast.List, ast.Dict, ast.Set, ast.Tuple)):
                yield Finding(
                    path=module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    code="UQ004",
                    message=(
                        f"update helper {node.name!r} is annotated to return "
                        "Update but returns a bare literal; construct an "
                        "Update(name, args) so histories stay symbolic"
                    ),
                )


def _mentions_update(annotation: ast.expr | None) -> bool:
    """True when the annotation promises a *single* ``Update`` value.

    Only the top level counts: ``Sequence[Update]`` / ``list[Update]``
    promise a collection, where returning a tuple/list display of
    ``Update(...)`` calls is exactly right (e.g. ``probe_updates``), so
    container annotations must not trip the bare-literal check.
    ``Update | None`` and ``Optional[Update]`` still qualify.
    """
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:  # string annotation: "Update | None" — re-parse and recurse
            annotation = ast.parse(annotation.value.strip(), mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "Update"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Update"
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _mentions_update(annotation.left) or _mentions_update(
            annotation.right
        )
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        base_name = (
            base.id if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute) else ""
        )
        if base_name == "Optional":
            return _mentions_update(annotation.slice)
        return False  # Sequence[Update] etc.: a collection, not an Update
    return False


def _is_query_call(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name == "Query"


@register("UQ005", "initial_state must return a fresh or immutable s0")
def uq005_initial_state_alias(module: ModuleInfo) -> Iterator[Finding]:
    """Flag ``initial_state`` returning a shared mutable object.

    Two shapes are detected: ``return self.<attr>`` (every replica would
    alias one instance attribute — any later in-place change corrupts all
    replays) and ``return NAME`` where ``NAME`` is bound at module or class
    level to a mutable display (``_EMPTY = []`` and friends).
    """
    mutable_globals = _mutable_module_names(module.tree)
    for cls in module.uqadt_classes():
        mutable_class = _mutable_class_names(cls.node)
        for method in _methods(cls):
            if method.name != "initial_state":
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Return) or stmt.value is None:
                    continue
                value = stmt.value
                if (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                ):
                    yield Finding(
                        path=module.path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        code="UQ005",
                        message=(
                            f"{cls.node.name}.initial_state returns "
                            f"self.{value.attr}: s0 must be a fresh or "
                            "immutable value (Def. 1) — a shared mutable "
                            "attribute aliases every replay; return a copy "
                            "or guarantee immutability"
                        ),
                    )
                elif isinstance(value, ast.Name) and (
                    value.id in mutable_globals or value.id in mutable_class
                ):
                    yield Finding(
                        path=module.path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        code="UQ005",
                        message=(
                            f"{cls.node.name}.initial_state returns the "
                            f"module/class-level mutable {value.id!r}: every "
                            "replay would share one object; return a fresh "
                            "container instead (Def. 1)"
                        ),
                    )


def _mutable_module_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, _MUTABLE_DISPLAYS):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.value, _MUTABLE_DISPLAYS
        ):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _mutable_class_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, _MUTABLE_DISPLAYS):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names
