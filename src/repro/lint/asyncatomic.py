"""ASY3xx — asyncio atomicity (await-point hazards in the net backend).

Algorithm 1's correctness argument assumes each replica handles one event
*atomically*: the paper's processes are sequential, and the simulator
enforces that by construction (one delivery at a time, synchronous
hooks).  The asyncio backend preserves the property only as long as no
coroutine yields the event loop in the middle of a read-modify-write on
shared replica state — every ``await`` is a point where another handler
(a peer frame, an HTTP request, a timer tick) may interleave.  These
rules make the await-point discipline mechanical:

| code   | hazard                                                          |
|--------|-----------------------------------------------------------------|
| ASY301 | await-point TOCTOU: ``self.*``/module-global state read before  |
|        | an ``await`` and written after it without re-validation, inside |
|        | ``*Node``/``*Handler``/``*Server`` classes and serve/handle     |
|        | coroutines                                                      |
| ASY302 | a coroutine is called but never awaited (the call allocates a   |
|        | coroutine object and silently does nothing) — whole-program:    |
|        | imported coroutines are resolved through the project model      |
| ASY303 | ``asyncio.create_task``/``ensure_future`` result dropped: the   |
|        | event loop keeps only a weak reference, so the task can be      |
|        | garbage-collected mid-flight                                    |
| ASY304 | blocking call (``time.sleep``, ``open()``, sync sockets,        |
|        | ``subprocess``) inside ``async def`` stalls the whole loop —    |
|        | every replica duty (frames, sync ticks, HTTP) stops             |
| ASY305 | a synchronous lock held across an ``await`` (use ``async with`` |
|        | on an ``asyncio.Lock``, or drop the lock before yielding)       |

The analysis is a linear *segmentation* of each ``async def`` body: the
statements are flattened into an evaluation-ordered token stream of
state loads, state stores and yield points (``await`` / ``async for`` /
``async with``), and the rules reason about what crosses a yield.  The
classic safe pattern — re-reading the state after the await before
acting on it — is recognised and not flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    ProjectInfo,
    register,
    register_project,
)

#: classes whose async methods must respect await-point atomicity (the
#: backend effect interpreters and request handlers).
GUARDED_CLASS_SUFFIXES = ("Node", "Handler", "Server")

#: module-level coroutines treated as handlers (the hand-rolled HTTP
#: front-end uses free functions, not classes).
GUARDED_FUNC_PREFIXES = ("serve", "_serve", "handle", "_handle", "on_", "_on_")

#: method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "extend",
        "insert",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: dotted call targets that block the event loop when run on it.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.fsync",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: constructors of synchronous (thread) locks.
_SYNC_LOCKS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
    }
)

#: nested scopes whose bodies do not run inline with the coroutine.
_NESTED_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _finding(module: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Every node of ``root``'s own scope, skipping nested def bodies."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, _NESTED_DEFS):
            continue
        yield child
        yield from _own_nodes(child)


def _self_attr(node: ast.expr) -> str | None:
    """``x`` for a direct ``self.x`` attribute access."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_root(node: ast.expr) -> str | None:
    """Innermost ``self.x`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        attr = _self_attr(node)
        if attr is not None:
            return attr
        node = node.value
    return None


def _name_root(node: ast.expr) -> str | None:
    """Innermost bare name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# -- the token stream (shared by ASY301 / ASY305) ------------------------------


@dataclass(frozen=True, slots=True)
class _Tok:
    kind: str  # "await" | "load" | "store"
    key: str  # "a:<attr>" for self state, "g:<name>" for module globals
    node: ast.AST


class _TokenStream:
    """Flatten one coroutine body into evaluation-ordered state accesses.

    Assignment values are emitted before their targets, so
    ``self.x = await f()`` correctly places the store *after* the yield
    point; mutator calls (``self.tasks.add(...)``) count as stores.
    """

    def __init__(
        self,
        fn: ast.AsyncFunctionDef,
        module_globals: frozenset[str],
    ) -> None:
        self.out: list[_Tok] = []
        self._module_globals = module_globals
        self._locals: set[str] = {a.arg for a in _all_args(fn)}
        self._globals_declared: set[str] = set()
        for node in _own_nodes(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self._locals.add(node.id)
            elif isinstance(node, ast.Global):
                self._globals_declared.update(node.names)
        self._locals -= self._globals_declared
        for stmt in fn.body:
            self._emit(stmt)

    # -- emission -------------------------------------------------------------

    def _emit(self, node: ast.AST) -> None:
        if isinstance(node, _NESTED_DEFS):
            return
        if isinstance(node, ast.Await):
            self._emit(node.value)
            self.out.append(_Tok("await", "", node))
        elif isinstance(node, ast.AsyncFor):
            self._emit(node.iter)
            self.out.append(_Tok("await", "", node))
            self._store_target(node.target)
            for stmt in node.body:
                self._emit(stmt)
            for stmt in node.orelse:
                self._emit(stmt)
        elif isinstance(node, ast.AsyncWith):
            for item in node.items:
                self._emit(item.context_expr)
                if item.optional_vars is not None:
                    self._store_target(item.optional_vars)
            self.out.append(_Tok("await", "", node))
            for stmt in node.body:
                self._emit(stmt)
        elif isinstance(node, ast.Assign):
            self._emit(node.value)
            for target in node.targets:
                self._store_target(target)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._emit(node.value)
            self._store_target(node.target)
        elif isinstance(node, ast.AugAssign):
            self._emit(node.value)
            self._emit_load_of_target(node.target)
            self._store_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._store_target(target)
        elif isinstance(node, ast.Call):
            func = node.func
            root: str | None = None
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _self_root(func.value)
                if root is not None:
                    key = f"a:{root}"
                else:
                    gname = _name_root(func.value)
                    if gname is not None and self._is_global(gname):
                        root, key = gname, f"g:{gname}"
            if root is not None:
                for arg in node.args:
                    self._emit(arg)
                for kw in node.keywords:
                    self._emit(kw.value)
                self.out.append(_Tok("store", key, node))
            else:
                self._emit(func)
                for arg in node.args:
                    self._emit(arg)
                for kw in node.keywords:
                    self._emit(kw.value)
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self.out.append(_Tok("load", f"a:{attr}", node))
            else:
                self._emit(node.value)
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and self._is_global(node.id):
                self.out.append(_Tok("load", f"g:{node.id}", node))
        else:
            for child in ast.iter_child_nodes(node):
                self._emit(child)

    def _emit_load_of_target(self, target: ast.expr) -> None:
        root = _self_root(target)
        if root is not None:
            self.out.append(_Tok("load", f"a:{root}", target))
            return
        gname = _name_root(target)
        if gname is not None and self._is_global(gname):
            self.out.append(_Tok("load", f"g:{gname}", target))

    def _store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt)
        elif isinstance(target, ast.Starred):
            self._store_target(target.value)
        elif isinstance(target, ast.Name):
            if target.id in self._globals_declared and self._is_global(target.id):
                self.out.append(_Tok("store", f"g:{target.id}", target))
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _self_root(target)
            if root is not None:
                self.out.append(_Tok("store", f"a:{root}", target))
                return
            gname = _name_root(target)
            if gname is not None and self._is_global(gname):
                self.out.append(_Tok("store", f"g:{gname}", target))

    def _is_global(self, name: str) -> bool:
        return name in self._module_globals and name not in self._locals


def _all_args(fn: ast.AsyncFunctionDef) -> list[ast.arg]:
    a = fn.args
    args = [*a.posonlyargs, *a.args, *a.kwonlyargs]
    if a.vararg is not None:
        args.append(a.vararg)
    if a.kwarg is not None:
        args.append(a.kwarg)
    return args


def _module_globals(module: ModuleInfo) -> frozenset[str]:
    """Module-level data bindings (plain assignments, not defs/imports)."""
    return frozenset(
        name
        for name, node in module.symbols.items()
        if isinstance(node, (ast.Assign, ast.AnnAssign))
    )


def _guarded_coroutines(
    module: ModuleInfo,
) -> Iterator[tuple[str, ast.AsyncFunctionDef]]:
    for cls in module.classes:
        names = (cls.node.name, *cls.base_names)
        if not any(n.endswith(GUARDED_CLASS_SUFFIXES) for n in names if n):
            continue
        for sub in cls.node.body:
            if isinstance(sub, ast.AsyncFunctionDef):
                yield f"{cls.node.name}.{sub.name}", sub
    for stmt in module.tree.body:
        if isinstance(stmt, ast.AsyncFunctionDef) and stmt.name.startswith(GUARDED_FUNC_PREFIXES):
            yield stmt.name, stmt


@register("ASY301", "no await-point TOCTOU on shared replica state")
def asy301_await_toctou(module: ModuleInfo) -> Iterator[Finding]:
    """Read-before-await, write-after-await on the same ``self`` attribute
    (or module global) without re-reading it after the yield.

    The event loop may run any other handler at the await, so the write
    acts on state observed *before* the interleaving — the exact torn
    critical section Algorithm 1's atomic-handler assumption forbids.
    Re-validating (loading the attribute again between the last await and
    the write) is the sanctioned pattern and is not flagged.
    """
    globals_ = _module_globals(module)
    for qual, fn in _guarded_coroutines(module):
        tokens = _TokenStream(fn, globals_).out
        awaits = [i for i, tok in enumerate(tokens) if tok.kind == "await"]
        if not awaits:
            continue
        for i, tok in enumerate(tokens):
            if tok.kind != "store":
                continue
            prior = [w for w in awaits if w < i]
            if not prior:
                continue
            w_last = prior[-1]
            stale_read = next(
                (
                    tokens[j]
                    for j in range(w_last)
                    if tokens[j].kind == "load" and tokens[j].key == tok.key
                ),
                None,
            )
            if stale_read is None:
                continue
            revalidated = any(
                tokens[j].kind == "load" and tokens[j].key == tok.key
                for j in range(w_last + 1, i)
            )
            if revalidated:
                continue
            what = f"self.{tok.key[2:]}" if tok.key.startswith("a:") else tok.key[2:]
            yield _finding(
                module,
                tok.node,
                "ASY301",
                f"{qual} reads {what} (line {getattr(stale_read.node, 'lineno', '?')}) "
                f"before an await and writes it afterwards: the event loop may "
                f"interleave another handler at the await, so the write acts on "
                f"stale state (await-point TOCTOU) — re-read {what} after the "
                f"await before writing, as Algorithm 1 assumes atomic event "
                f"handling",
            )


@register_project("ASY302", "coroutines must be awaited or scheduled")
def asy302_unawaited_coroutine(project: ProjectInfo) -> Iterator[Finding]:
    """A bare-statement call to an ``async def`` — local, ``self.``-bound or
    imported (resolved through the project model) — creates a coroutine
    object and drops it: the body never runs, and Python only surfaces a
    ``RuntimeWarning`` at GC time, typically long after the lost effect
    mattered.  Await it, or hand it to a task the caller retains.
    """
    for module in project.modules:
        for call, cls_name in _bare_calls(module.tree, None):
            target = _async_call_target(project, module, call, cls_name)
            if target is None:
                continue
            yield _finding(
                module,
                call,
                "ASY302",
                f"coroutine {target!r} is called but never awaited: the call "
                f"only builds a coroutine object — await it, or schedule it "
                f"with a retained asyncio task",
            )


def _bare_calls(node: ast.AST, cls_name: str | None) -> Iterator[tuple[ast.Call, str | None]]:
    for child in ast.iter_child_nodes(node):
        inner_cls = child.name if isinstance(child, ast.ClassDef) else cls_name
        if isinstance(child, ast.Expr) and isinstance(child.value, ast.Call):
            yield child.value, inner_cls
        yield from _bare_calls(child, inner_cls)


def _async_call_target(
    project: ProjectInfo,
    module: ModuleInfo,
    call: ast.Call,
    cls_name: str | None,
) -> str | None:
    """Dotted description of the coroutine this call builds, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        local = module.functions.get(func.id)
        if isinstance(local, ast.AsyncFunctionDef):
            return func.id
        dotted = module.imports.get(func.id)
        if dotted is not None:
            hit = project.resolve_symbol(dotted, origin=module)
            if hit is not None and isinstance(hit[1], ast.AsyncFunctionDef):
                return dotted
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = func.value.id
        if owner == "self" and cls_name is not None:
            method = module.functions.get(f"{cls_name}.{func.attr}")
            if isinstance(method, ast.AsyncFunctionDef):
                return f"self.{func.attr}"
            return None
        dotted_mod = module.imports.get(owner)
        if dotted_mod is not None:
            hit = project.resolve_symbol(f"{dotted_mod}.{func.attr}", origin=module)
            if hit is not None and isinstance(hit[1], ast.AsyncFunctionDef):
                return f"{dotted_mod}.{func.attr}"
    return None


@register("ASY303", "retain every created task (GC-cancellation hazard)")
def asy303_task_not_retained(module: ModuleInfo) -> Iterator[Finding]:
    """The event loop holds only a *weak* reference to tasks: a
    ``create_task``/``ensure_future`` whose result is immediately dropped
    can be garbage-collected mid-execution, silently cancelling the
    timer/flush/sync work it carried (the asyncio docs' own warning).
    """
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        dotted = module.resolve_call(call.func)
        loopish = (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "create_task"
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id.endswith("loop")
        )
        if dotted in ("asyncio.create_task", "asyncio.ensure_future") or loopish:
            yield _finding(
                module,
                node,
                "ASY303",
                "task created and immediately dropped: the event loop keeps "
                "only a weak reference, so the task may be garbage-collected "
                "mid-flight — keep it in a collection (and discard on done) "
                "like ReplicaNode._spawn does",
            )


@register("ASY304", "no blocking calls inside async def")
def asy304_blocking_call(module: ModuleInfo) -> Iterator[Finding]:
    """``time.sleep``, ``open()``, sync sockets and ``subprocess`` inside a
    coroutine stall the entire event loop: peer frames, sync ticks and
    HTTP requests all stop for the duration.  Use the asyncio equivalent
    (``asyncio.sleep``, ``asyncio.to_thread``, loop executors).
    """
    open_is_builtin = module.imports.get("open", "open") == "open"
    for fn in ast.walk(module.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_call(node.func)
            if dotted in BLOCKING_CALLS:
                hint = (
                    "await asyncio.sleep(...)"
                    if dotted == "time.sleep"
                    else "await asyncio.to_thread(...) or a loop executor"
                )
                yield _finding(
                    module,
                    node,
                    "ASY304",
                    f"blocking call {dotted}() inside async def {fn.name}: it "
                    f"stalls the whole event loop (frames, sync ticks, HTTP) "
                    f"— use {hint}",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and open_is_builtin
                and "open" not in module.functions
            ):
                yield _finding(
                    module,
                    node,
                    "ASY304",
                    f"blocking open() inside async def {fn.name}: file I/O "
                    f"stalls the event loop — use await asyncio.to_thread(...) "
                    f"or do the I/O outside the coroutine",
                )


@register("ASY305", "never hold a synchronous lock across an await")
def asy305_lock_across_await(module: ModuleInfo) -> Iterator[Finding]:
    """A thread lock held over a yield point blocks every other coroutine
    that wants it for the full await duration — and deadlocks outright if
    the awaited work needs the same lock.  Use ``async with`` on an
    ``asyncio.Lock``, or release before yielding.
    """
    for fn in ast.walk(module.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        # (a) `with lock:` blocks containing a yield point.
        for node in _own_nodes(fn):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                if not _is_sync_lock(item.context_expr, module):
                    continue
                if any(
                    isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith))
                    for sub in _own_nodes(node)
                ):
                    yield _finding(
                        module,
                        node,
                        "ASY305",
                        f"synchronous lock held across an await in {fn.name}: "
                        f"the lock stays taken while the event loop runs other "
                        f"handlers — use `async with` on an asyncio.Lock, or "
                        f"release before awaiting",
                    )
        # (b) explicit acquire()/release() bracketing a yield point.
        held: set[str] = set()
        reported: set[str] = set()
        for sub in _own_nodes(fn):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                owner = ast.unparse(sub.func.value)
                if sub.func.attr == "acquire":
                    held.add(owner)
                elif sub.func.attr == "release":
                    held.discard(owner)
            elif isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                for owner in sorted(held - reported):
                    reported.add(owner)
                    yield _finding(
                        module,
                        sub,
                        "ASY305",
                        f"{owner}.acquire() is still held at this await in "
                        f"{fn.name}: release before yielding, or use an "
                        f"asyncio.Lock with `async with`",
                    )


def _is_sync_lock(expr: ast.expr, module: ModuleInfo) -> bool:
    if isinstance(expr, ast.Call):
        if module.resolve_call(expr.func) in _SYNC_LOCKS:
            return True
        expr = expr.func
    term = _terminal_name(expr)
    if term is None:
        return False
    t = term.lower()
    return (
        t in ("lock", "mutex")
        or t.endswith(("_lock", "_mutex"))
        or t.startswith(("lock_", "mutex_"))
    )
