"""Alias-aware mutation detection shared by the UQ and REP rule families.

The analysis is deliberately shallow — a single forward pass over one
function body with name-level taint propagation:

* the *tainted roots* (e.g. the ``state`` parameter of ``apply``) seed the
  alias set;
* ``x = tainted`` / ``x = tainted.attr`` / ``x = tainted[k]`` and tuple
  unpacking (``vs, es = state``) extend it — these may alias the original
  object or its interior;
* any *call* on the right-hand side breaks the chain (``dict(state)``,
  ``state.copy()``, ``sorted(state)`` all build fresh objects), which keeps
  the copy-on-write idiom used throughout :mod:`repro.specs` clean.

A *mutation* is then any of: an attribute/subscript store or delete rooted
at a tainted name, an augmented assignment to a tainted name or its
interior, or a call of a known in-place mutator method on a tainted name.
This catches every in-place update of the builtin containers plus the
common ``collections`` types without type inference; a function that
launders the state through a helper and mutates it there is out of reach
(documented limitation — soundness is traded for a near-zero false-positive
rate on idiomatic code).
"""

from __future__ import annotations

import ast
from typing import Iterator

#: Methods that mutate builtin / stdlib containers in place.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "difference_update",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "intersection_update",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "symmetric_difference_update",
        "update",
    }
)


def root_name(node: ast.expr) -> str | None:
    """Base identifier of an attribute/subscript chain (``a.b[c].d`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_in(node: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _aliasing_names(value: ast.expr) -> set[str]:
    """Names the RHS of an assignment may alias (calls break the chain)."""
    if isinstance(value, ast.Name):
        return {value.id}
    if isinstance(value, (ast.Attribute, ast.Subscript)):
        inner = root_name(value)
        return {inner} if inner else set()
    if isinstance(value, ast.IfExp):
        return _aliasing_names(value.body) | _aliasing_names(value.orelse)
    if isinstance(value, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for elt in value.elts:
            names |= _aliasing_names(elt)
        return names
    if isinstance(value, ast.NamedExpr):
        return _aliasing_names(value.value)
    return set()


def _bind_targets(target: ast.expr, tainted: bool, taint: set[str]) -> None:
    """Propagate (or clear) taint through an assignment target."""
    if isinstance(target, ast.Name):
        if tainted:
            taint.add(target.id)
        else:
            taint.discard(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            if isinstance(elt, ast.Starred):
                elt = elt.value
            _bind_targets(elt, tainted, taint)
    # attribute/subscript targets do not (re)bind a local name


def find_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, roots: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for each in-place mutation of a root.

    ``roots`` seeds the taint set; the walk is a single forward pass in
    source order, skipping nested function/class definitions (their scopes
    rebind names independently).
    """
    taint = set(roots)

    def tainted_expr(node: ast.expr) -> bool:
        name = root_name(node)
        return name is not None and name in taint

    def visit(stmts: list[ast.stmt]) -> Iterator[tuple[ast.AST, str]]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) and tainted_expr(
                        target
                    ):
                        yield stmt, (
                            f"store into {ast.unparse(target)!r} mutates a tainted object"
                        )
                aliases = _aliasing_names(stmt.value) & taint
                for target in stmt.targets:
                    _bind_targets(target, bool(aliases), taint)
                yield from visit_calls(stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.target is not None and isinstance(
                    stmt.target, (ast.Attribute, ast.Subscript)
                ) and tainted_expr(stmt.target):
                    yield stmt, (
                        f"store into {ast.unparse(stmt.target)!r} mutates a tainted object"
                    )
                if stmt.value is not None:
                    aliases = _aliasing_names(stmt.value) & taint
                    _bind_targets(stmt.target, bool(aliases), taint)
                    yield from visit_calls(stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, (ast.Attribute, ast.Subscript)):
                    if tainted_expr(stmt.target):
                        yield stmt, (
                            f"augmented assignment to {ast.unparse(stmt.target)!r} "
                            "mutates a tainted object"
                        )
                elif isinstance(stmt.target, ast.Name) and stmt.target.id in taint:
                    yield stmt, (
                        f"augmented assignment to {stmt.target.id!r} may mutate "
                        "in place (lists/sets/dicts implement += destructively)"
                    )
                yield from visit_calls(stmt.value)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) and tainted_expr(
                        target
                    ):
                        yield stmt, (
                            f"del {ast.unparse(target)!r} mutates a tainted object"
                        )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from visit_calls(stmt.iter)
                yield from visit(stmt.body)
                yield from visit(stmt.orelse)
            elif isinstance(stmt, ast.While):
                yield from visit_calls(stmt.test)
                yield from visit(stmt.body)
                yield from visit(stmt.orelse)
            elif isinstance(stmt, ast.If):
                yield from visit_calls(stmt.test)
                yield from visit(stmt.body)
                yield from visit(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield from visit_calls(item.context_expr)
                yield from visit(stmt.body)
            elif isinstance(stmt, ast.Try):
                yield from visit(stmt.body)
                for handler in stmt.handlers:
                    yield from visit(handler.body)
                yield from visit(stmt.orelse)
                yield from visit(stmt.finalbody)
            elif isinstance(stmt, (ast.Expr, ast.Return)):
                if stmt.value is not None:
                    yield from visit_calls(stmt.value)
            elif isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    yield from visit_calls(stmt.exc)
            elif isinstance(stmt, ast.Assert):
                yield from visit_calls(stmt.test)

    def visit_calls(expr: ast.expr) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and tainted_expr(node.func.value)
            ):
                yield node, (
                    f"call to in-place mutator "
                    f"{ast.unparse(node.func)!r} on a tainted object"
                )

    yield from visit(list(func.body))


def function_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef, *, skip_self: bool = True
) -> list[str]:
    """Positional + keyword-only parameter names, optionally minus ``self``."""
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    if skip_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names
