"""repro — update consistency for wait-free concurrent objects.

A production-quality reproduction of Perrin, Mostéfaoui & Jard,
*Update Consistency for Wait-free Concurrent Objects*, IEEE IPDPS 2015.

Packages
--------
``repro.core``
    The formalism (UQ-ADTs, histories, linearizations), the consistency
    criteria EC/SEC/PC/UC/SUC/SC with exact and witness-based checkers,
    Algorithm 1 (universal SUC construction), Algorithm 2 (UC memory) and
    the Section VII-C optimizations.
``repro.specs``
    Concrete sequential specifications: set, registers/memory, counter,
    queue, stack, log, map, max-register, flag.
``repro.sim``
    Deterministic discrete-event simulator of an asynchronous crash-prone
    message-passing system (the wait-free system model of Section VII-A).
``repro.crdt``
    The Section VI baselines: G-Set, 2P-Set, PN-Set, C-Set, OR-Set,
    LWW-element-Set, counters and registers.
``repro.objects``
    Ready-to-run replicated objects over Algorithm 1 plus the pipelined
    (FIFO) and causal baselines used by the Proposition 1 experiments.
``repro.analysis``
    Convergence detection, message/byte accounting, history
    classification reports.
"""

__version__ = "1.0.0"

from repro.core.adt import Query, UQADT, Update
from repro.core.history import Event, History

__all__ = ["UQADT", "Update", "Query", "Event", "History", "__version__"]
