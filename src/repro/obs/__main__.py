"""CLI: render machine-readable run reports and Perfetto traces.

::

    python -m repro.obs report --seed 0 --out report.json --trace trace.json

runs the canonical chaos scenario (crash + recover + anti-entropy over a
lossy network) with tracing enabled and emits the run report; ``--trace``
additionally writes a Chrome-trace-event file loadable at
https://ui.perfetto.dev, ``--metrics`` the Prometheus text exposition, and
``--validate`` checks the report against the documented schema (non-zero
exit on violation) — the CI ``obs-smoke`` contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.report import run_report, validate_report
from repro.obs.scenario import chaos_scenario
from repro.obs.tracer import write_chrome_trace


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability reports for simulated runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report",
        help="run the traced chaos scenario and emit its JSON run report",
    )
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--procs", type=int, default=3)
    rep.add_argument("--ops", type=int, default=40)
    rep.add_argument("--drop", type=float, default=0.15,
                     help="lossy-network drop probability (default 0.15)")
    rep.add_argument("--out", help="report JSON path (default: stdout)")
    rep.add_argument("--trace", help="also write a Perfetto/Chrome trace here")
    rep.add_argument("--metrics",
                     help="also write the Prometheus text exposition here")
    rep.add_argument("--validate", action="store_true",
                     help="validate the report against the schema")
    args = parser.parse_args(argv)

    cluster = chaos_scenario(
        seed=args.seed, procs=args.procs, ops=args.ops,
        drop_probability=args.drop,
    )
    doc = run_report(cluster)
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    if args.trace:
        write_chrome_trace(args.trace, cluster.tracer)
        print(f"perfetto trace written to {args.trace}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(cluster.metrics.to_prometheus_text())
        print(f"metrics written to {args.metrics}")
    if args.validate:
        errors = validate_report(doc)
        if errors:
            for error in errors:
                print(f"schema violation: {error}", file=sys.stderr)
            return 1
        print("report validates against the schema")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
