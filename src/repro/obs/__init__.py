"""repro.obs — observability for the simulated replication stack.

Three layers, each usable alone:

* :mod:`repro.obs.metrics` — a Prometheus-flavoured metrics registry
  (counters, gauges, histograms with labeled series; text + JSON
  exposition).  The runtime's ad-hoc counters (``Network.sent_count``,
  ``UniversalReplica.replayed_updates``, …) are now deprecated properties
  reading these instruments.
* :mod:`repro.obs.tracer` — a virtual-time tracer (no-op by default)
  emitting structured records for the message lifecycle, operations,
  crashes/recoveries and anti-entropy; exportable as a Chrome trace-event
  file that loads in Perfetto.
* :mod:`repro.obs.report` — folds a finished cluster (trace + registry +
  tracer) into one machine-readable JSON run report; also the
  ``python -m repro.obs`` CLI.

Only the leaf modules are imported here: ``repro.sim.cluster`` imports
this package at module load, so pulling :mod:`repro.obs.report` (which
imports the cluster) back in would create a cycle.  Import the report
layer explicitly: ``from repro.obs.report import run_report``.
"""

from repro.obs.log import StructLogger, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.tracer import (
    CLUSTER_TRACK,
    NULL_TRACER,
    NullTracer,
    SimTracer,
    TraceRecord,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.wall import (
    TraceContext,
    WallTracer,
    merge_chrome_traces,
    trace_ids,
    wall_chrome_trace,
    wall_now,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "CLUSTER_TRACK",
    "NULL_TRACER",
    "NullTracer",
    "SimTracer",
    "TraceRecord",
    "to_chrome_trace",
    "write_chrome_trace",
    "StructLogger",
    "get_logger",
    "TraceContext",
    "WallTracer",
    "merge_chrome_traces",
    "trace_ids",
    "wall_chrome_trace",
    "wall_now",
]
